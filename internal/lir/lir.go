// Package lir defines the low-level IR of the jitbull optimizing tier: a
// linear sequence of register-machine operations produced from optimized
// MIR (step 5 of the paper's Figure 1). The native executor
// (internal/native) runs this code directly over unboxed float64 registers
// and the shared heap arena — it is the "machine code" of the simulated
// engine.
package lir

import (
	"fmt"
	"strings"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/obs"
)

// Kind is a LIR operation kind.
type Kind uint8

// LIR operation kinds. Registers are indexes into the frame's float64
// register file; Dst/A/B/C are registers unless noted.
const (
	KNop     Kind = iota
	KConst        // Dst = Imm
	KMove         // Dst = A
	KMoveTag      // Dst = A, and the type tag moves along (boxed values)
	KAdd          // Dst = A + B
	KSub
	KMul
	KDiv
	KMod
	KPow
	KBitAnd
	KBitOr
	KBitXor
	KShl
	KShr
	KUshr
	KNeg  // Dst = -A
	KNot  // Dst = !truthy(A)
	KCmp  // Dst = A <op> B; Aux = mir.CompareKind
	KMath // Dst = builtin(A[, B]); Aux = bytecode.Builtin

	KJump        // jump to op index Target
	KBranchFalse // if !truthy(A) jump to Target

	KUnbox     // Dst = A with tag check; Aux: 0 = numeric, 1 = object. Bails on mismatch.
	KGuardType // same checks as KUnbox, for already-loaded boxed values

	KElemsHandle // Dst = elements address of array handle in A (verified object)
	KElemsRaw    // Dst = A interpreted as a raw address (type-confused path)
	KInitLen     // Dst = length cell at elements address A
	KBoundsCheck // bail unless 0 <= A < B and A integral
	KLoadElem    // Dst = heap[A + int(B) + Aux]
	KStoreElem   // heap[A + int(B) + Aux] = C
	KSetLen      // setlength(handle A, B); bails on invalid length
	KPush        // Dst = new length after pushing B onto handle A
	KPop         // Dst = pop from handle A; bails when empty
	KNewArr      // Dst = new array handle of length A; bails on invalid length
	KAddrOf      // Dst = elements address of handle A
	KCodeBase    // Dst = arena code base address

	KLoadGlobal     // Dst = globals[Aux] (value + tag)
	KStoreGlobalNum // globals[Aux] = Num(A)
	KStoreGlobalObj // globals[Aux] = ArrayRef(A)

	KCall // Dst = call fn Aux with args ArgLists[A]; B = expected kind (0 num, 1 object)

	// KCallSpec is KCall with a speculative type guard on the return value:
	// it accepts exactly a Number (no boolean/undefined coercion) and
	// triggers deoptimization — returning StatusDeopt with the interpreter
	// frame rebuilt from the DeoptExits side table — on anything else.
	// Target is an index into Code.DeoptExits, NOT a jump target. Aux/A/B/C
	// are as KCall (B is always 0: only number-typed calls are speculated).
	KCallSpec

	// KOSRPoint marks a loop-header on-stack-replacement entry (side table
	// Code.OSREntries, keyed by Aux = loop ordinal). At runtime it is a nop
	// and charges NO step, so Result.Steps is bit-identical to code compiled
	// without OSR support.
	KOSRPoint

	KRetNum   // return Num(A) (NaN result means the JS value NaN)
	KRetObj   // return ArrayRef(A)
	KRetUndef // return undefined

	// KindCount is one past the last Kind. Exhaustiveness guards (the
	// unfused executor probe, the fused handler table, the fuser's
	// pass-through table) iterate 0..KindCount-1.
	KindCount
)

var kindNames = map[Kind]string{
	KNop: "nop", KConst: "const", KMove: "move", KMoveTag: "movetag",
	KAdd: "add", KSub: "sub", KMul: "mul", KDiv: "div", KMod: "mod", KPow: "pow",
	KBitAnd: "bitand", KBitOr: "bitor", KBitXor: "bitxor",
	KShl: "shl", KShr: "shr", KUshr: "ushr",
	KNeg: "neg", KNot: "not", KCmp: "cmp", KMath: "math",
	KJump: "jump", KBranchFalse: "branchfalse",
	KUnbox: "unbox", KGuardType: "guardtype",
	KElemsHandle: "elemshandle", KElemsRaw: "elemsraw", KInitLen: "initlen",
	KBoundsCheck: "boundscheck", KLoadElem: "loadelem", KStoreElem: "storeelem",
	KSetLen: "setlen", KPush: "push", KPop: "pop", KNewArr: "newarr",
	KAddrOf: "addrof", KCodeBase: "codebase",
	KLoadGlobal: "loadglobal", KStoreGlobalNum: "storeglobalnum", KStoreGlobalObj: "storeglobalobj",
	KCall: "call", KCallSpec: "callspec", KOSRPoint: "osrpoint",
	KRetNum: "retnum", KRetObj: "retobj", KRetUndef: "retundef",
}

// String returns the mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one LIR operation.
type Op struct {
	Kind    Kind
	Dst     int32
	A, B, C int32
	Target  int32 // jump/branch target (op index)
	Imm     float64
	Aux     int32
}

// BlockMeta is the basic-block shape of a Code's linear op stream,
// computed by the register allocator (which already walks every branch for
// live-interval extension) and consumed by the superinstruction fuser:
// fusion patterns must not span a block leader, and the loop-tail patterns
// only apply to back edges.
type BlockMeta struct {
	// Leaders are the op indexes that start a basic block (index 0, every
	// jump/branch target, every op after a terminator), sorted ascending.
	Leaders []int32
	// LoopHeads are the leaders that are targets of back edges, sorted
	// ascending.
	LoopHeads []int32
}

// Frame-slot kinds for OSR/deopt frame maps. The kind is decided statically
// from the MIR type of the slot's definition; the runtime transfer trusts it
// (registers are raw float64s with no reliable tag at a frame boundary).
const (
	SlotNum  uint8 = iota // unboxed number
	SlotBool              // boolean materialized as 0/1
	SlotObj               // array handle
)

// slotKind maps a MIR value type to a frame-slot kind. ok is false for
// types that cannot cross an interpreter/native frame boundary.
func slotKind(t mir.Type) (uint8, bool) {
	switch t {
	case mir.TypeDouble:
		return SlotNum, true
	case mir.TypeBoolean:
		return SlotBool, true
	case mir.TypeObject:
		return SlotObj, true
	default:
		return 0, false
	}
}

// FrameSlot maps one interpreter local to a native register in an OSR or
// deopt frame map. Reg is a virtual register until regalloc.Allocate
// rewrites the side tables along with the op stream.
type FrameSlot struct {
	Slot int32 // interpreter local slot index
	Reg  int32 // native register holding the slot's value
	Kind uint8 // SlotNum/SlotBool/SlotObj
}

// ConstSlot is one loop-invariant constant the OSR prologue must
// rematerialize: GVN/LICM hoist constants out of loops, leaving their
// registers live across the header without any interpreter local backing
// them. Regalloc records (register, immediate) here when the register has
// exactly one definition in the whole stream and it is a KConst; anything
// else live outside the frame map makes the entry ineligible.
type ConstSlot struct {
	Reg int32
	Imm float64
}

// Rematerialization kinds for RematOp. The bounds-check pass caches an
// array's elements address (KElemsHandle) and length (KInitLen) in the
// preheader; both registers stay live across the loop header with no
// interpreter local backing them, so the OSR prologue recomputes them.
const (
	RematElems uint8 = iota // Reg ← arena elements address of the array handle in Src
	RematLen                // Reg ← length header at the elements address in Src
)

// RematOp is one derived loop-invariant value the OSR prologue recomputes
// before dispatch. Regalloc records one when an uncovered live register's
// unique reaching definition at the header is a KElemsHandle over a
// frame-map object slot (RematElems) or a KInitLen over such an elements
// register (RematLen) — re-deriving from the just-materialized array
// handle computes exactly what straight-line execution from the preheader
// cached, since the hoist is only performed for loop-invariant arrays.
// The list is in dependency order: a RematLen's Src is defined by an
// earlier RematElems.
type RematOp struct {
	Kind uint8
	Reg  int32 // register to write
	Src  int32 // source register: array handle (RematElems) or elems address (RematLen)
}

// OSREntry describes one loop-header on-stack-replacement entry point.
type OSREntry struct {
	Ordinal  int32       // loop ordinal (matches bytecode.OSRSite.Ordinal)
	PC       int32       // op index of the KOSRPoint marker
	Slots    []FrameSlot // frame map: interpreter locals → registers
	Consts   []ConstSlot // hoisted constants to rematerialize at entry
	Remats   []RematOp   // hoisted derived values (elems handles, lengths) to recompute
	Eligible bool        // set by regalloc: everything live here is covered by Slots+Consts+Remats
}

// DeoptExit describes the interpreter frame to rebuild when a KCallSpec
// guard fails. The guarded call's result lands in local ResultSlot (boxed
// exactly, no coercion); every other local comes from Slots.
type DeoptExit struct {
	Ordinal    int32 // speculation ordinal (matches bytecode.SpecSite.Ordinal)
	ResultSlot int32
	Slots      []FrameSlot
}

// Code is the compiled form of one function.
type Code struct {
	Name      string
	FuncIndex int
	NumParams int
	NumRegs   int
	Ops       []Op
	ArgLists  [][]int32 // call argument register lists

	// OSREntries and DeoptExits are the OSR/deopt side tables, in emission
	// order. Register references inside them are rewritten by
	// regalloc.Allocate together with the op stream.
	OSREntries []OSREntry
	DeoptExits []DeoptExit

	// Blocks is the basic-block metadata attached by regalloc.Allocate and
	// consumed by Fuse. Nil until allocation has run; Fuse recomputes it
	// on demand when absent.
	Blocks *BlockMeta
	// Fused is the superinstruction form of Ops, attached by the fuse
	// compile stage. The native executor dispatches through it when
	// non-nil; semantics (results, Result.Steps, bail/crash behavior) are
	// bit-identical to executing Ops directly. Immutable after publish, so
	// it rides through the shared compilation cache with the Code pointer.
	Fused *FusedCode
}

// String disassembles the code for diagnostics.
func (c *Code) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "LIR %s (fn #%d, %d regs)\n", c.Name, c.FuncIndex, c.NumRegs)
	for i, op := range c.Ops {
		fmt.Fprintf(&sb, "%4d  %-14s dst=r%d a=r%d b=r%d c=r%d tgt=%d imm=%v aux=%d\n",
			i, op.Kind, op.Dst, op.A, op.B, op.C, op.Target, op.Imm, op.Aux)
	}
	return sb.String()
}

// Lower translates an optimized MIR graph into LIR. Critical edges must be
// split (the standard pipeline guarantees it): phi moves are emitted at the
// end of single-successor predecessor blocks.
func Lower(g *mir.Graph) (*Code, error) { return LowerWith(g, nil) }

// LowerWith is Lower under a compile supervisor context (step budget and
// fault injection); fctx may be nil.
func LowerWith(g *mir.Graph, fctx *faults.CompileCtx) (*Code, error) {
	sp := fctx.Span(obs.CatCompile, "lir")
	if fctx != nil {
		if err := fctx.Step(faults.PointLower, g.Name, int64(g.InstrCount())); err != nil {
			sp.EndErr(err)
			return nil, err
		}
	}
	l := &lowerer{
		g:       g,
		code:    &Code{Name: g.Name, FuncIndex: g.FuncIndex, NumParams: g.NumParams},
		reg:     map[*mir.Instr]int32{},
		callOps: map[*mir.Instr]int{},
	}
	code, err := l.lower()
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.End(obs.I("ops", int64(len(code.Ops))), obs.I("regs", int64(code.NumRegs)))
	return code, nil
}

type lowerer struct {
	g       *mir.Graph
	code    *Code
	reg     map[*mir.Instr]int32
	nextReg int32

	blockStart map[*mir.Block]int32
	// fixups: op indexes whose Target must be patched to a block start.
	fixups []fixup
	// callOps: op index of each lowered KCallSpec, so the OpSnapshot that
	// references the call can patch its Target to the DeoptExits index.
	callOps map[*mir.Instr]int
}

type fixup struct {
	opIdx int
	block *mir.Block
}

func (l *lowerer) regOf(in *mir.Instr) int32 {
	if r, ok := l.reg[in]; ok {
		return r
	}
	r := l.nextReg
	l.nextReg++
	l.reg[in] = r
	return r
}

func (l *lowerer) freshReg() int32 {
	r := l.nextReg
	l.nextReg++
	return r
}

func (l *lowerer) emit(op Op) int {
	l.code.Ops = append(l.code.Ops, op)
	return len(l.code.Ops) - 1
}

func (l *lowerer) lower() (*Code, error) {
	order := l.g.ReversePostorder()
	l.blockStart = make(map[*mir.Block]int32, len(order))

	// Parameters occupy the first registers so the executor can copy
	// arguments straight into the frame. (There is exactly one OpParameter
	// per index, in the entry block.)
	paramRegs := make([]int32, l.g.NumParams)
	for i := range paramRegs {
		paramRegs[i] = l.freshReg()
	}
	for _, in := range l.g.Entry().Instrs {
		if in.Op == mir.OpParameter {
			if in.Aux < 0 || in.Aux >= len(paramRegs) {
				return nil, fmt.Errorf("parameter index %d out of range", in.Aux)
			}
			l.reg[in] = paramRegs[in.Aux]
		}
	}

	for bi, b := range order {
		l.blockStart[b] = int32(len(l.code.Ops))
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			if err := l.lowerInstr(b, in, bi, order); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range l.fixups {
		start, ok := l.blockStart[f.block]
		if !ok {
			return nil, fmt.Errorf("jump to unlowered block%d", f.block.ID)
		}
		l.code.Ops[f.opIdx].Target = start
	}
	// Downgrade orphaned speculative calls: a KCallSpec whose OpSnapshot never
	// produced a deopt exit (unreconstructible frame) still carries the -1
	// sentinel in Target and must run as a plain coercing call.
	for i := range l.code.Ops {
		if l.code.Ops[i].Kind == KCallSpec && l.code.Ops[i].Target < 0 {
			l.code.Ops[i].Kind = KCall
			l.code.Ops[i].Target = 0
		}
	}
	l.code.NumRegs = int(l.nextReg)
	return l.code, nil
}

// jumpTo emits a jump to block t unless t is the fall-through block.
func (l *lowerer) jumpTo(t *mir.Block, bi int, order []*mir.Block) {
	if bi+1 < len(order) && order[bi+1] == t {
		return // fall through
	}
	idx := l.emit(Op{Kind: KJump})
	l.fixups = append(l.fixups, fixup{opIdx: idx, block: t})
}

// emitPhiMoves materializes the phi inputs of succ along the edge from
// pred. It uses the simple two-phase scheme (all sources to fresh temps,
// then temps to destinations), which trivially handles parallel-copy
// cycles.
func (l *lowerer) emitPhiMoves(pred, succ *mir.Block) {
	phis := succ.Phis()
	if len(phis) == 0 {
		return
	}
	predIdx := -1
	for i, p := range succ.Preds {
		if p == pred {
			predIdx = i
			break
		}
	}
	if predIdx < 0 {
		return
	}
	type mv struct{ src, tmp, dst int32 }
	var moves []mv
	for _, phi := range phis {
		if phi.Op != mir.OpPhi || phi.Dead {
			continue
		}
		src := l.regOf(phi.Operands[predIdx])
		dst := l.regOf(phi)
		if src == dst {
			continue
		}
		moves = append(moves, mv{src: src, dst: dst})
	}
	if len(moves) == 1 {
		l.emit(Op{Kind: KMove, Dst: moves[0].dst, A: moves[0].src})
		return
	}
	for i := range moves {
		moves[i].tmp = l.freshReg()
		l.emit(Op{Kind: KMove, Dst: moves[i].tmp, A: moves[i].src})
	}
	for _, m := range moves {
		l.emit(Op{Kind: KMove, Dst: m.dst, A: m.tmp})
	}
}

var arithKinds = map[mir.Op]Kind{
	mir.OpAdd: KAdd, mir.OpSub: KSub, mir.OpMul: KMul, mir.OpDiv: KDiv,
	mir.OpMod: KMod, mir.OpPow: KPow, mir.OpBitAnd: KBitAnd,
	mir.OpBitOr: KBitOr, mir.OpBitXor: KBitXor, mir.OpShl: KShl,
	mir.OpShr: KShr, mir.OpUshr: KUshr,
}

func (l *lowerer) lowerInstr(b *mir.Block, in *mir.Instr, bi int, order []*mir.Block) error {
	r := func(i int) int32 { return l.regOf(in.Operands[i]) }
	switch in.Op {
	case mir.OpParameter, mir.OpPhi, mir.OpKeepAlive, mir.OpNop:
		// Parameters are pre-assigned; phis are materialized by edge moves;
		// keepalive is a GC artifact with no runtime effect here.
		return nil
	case mir.OpConstant, mir.OpMagic:
		l.emit(Op{Kind: KConst, Dst: l.regOf(in), Imm: in.Num})
	case mir.OpUnbox:
		aux := int32(0)
		if in.Type == mir.TypeObject {
			aux = 1
		}
		l.emit(Op{Kind: KUnbox, Dst: l.regOf(in), A: r(0), Aux: aux})
	case mir.OpGuardType:
		aux := int32(0)
		if in.Type == mir.TypeObject {
			aux = 1
		}
		l.emit(Op{Kind: KGuardType, Dst: l.regOf(in), A: r(0), Aux: aux})
	case mir.OpAdd, mir.OpSub, mir.OpMul, mir.OpDiv, mir.OpMod, mir.OpPow,
		mir.OpBitAnd, mir.OpBitOr, mir.OpBitXor, mir.OpShl, mir.OpShr, mir.OpUshr:
		l.emit(Op{Kind: arithKinds[in.Op], Dst: l.regOf(in), A: r(0), B: r(1)})
	case mir.OpNeg:
		l.emit(Op{Kind: KNeg, Dst: l.regOf(in), A: r(0)})
	case mir.OpNot:
		l.emit(Op{Kind: KNot, Dst: l.regOf(in), A: r(0)})
	case mir.OpCompare:
		l.emit(Op{Kind: KCmp, Dst: l.regOf(in), A: r(0), B: r(1), Aux: int32(in.Aux)})
	case mir.OpMathFunc:
		op := Op{Kind: KMath, Dst: l.regOf(in), Aux: int32(in.Aux)}
		if len(in.Operands) > 0 {
			op.A = r(0)
		}
		if len(in.Operands) > 1 {
			op.B = r(1)
		}
		l.emit(op)
	case mir.OpElements:
		kind := KElemsHandle
		if in.Operands[0].Type != mir.TypeObject {
			// Type-confused path: the operand was never verified to be an
			// object (e.g. the CVE-2019-9791 bug removed the unbox), so
			// the value is consumed as a raw address.
			kind = KElemsRaw
		}
		l.emit(Op{Kind: kind, Dst: l.regOf(in), A: r(0)})
	case mir.OpInitializedLength:
		l.emit(Op{Kind: KInitLen, Dst: l.regOf(in), A: r(0)})
	case mir.OpBoundsCheck:
		l.emit(Op{Kind: KBoundsCheck, A: r(0), B: r(1)})
	case mir.OpLoadElement:
		l.emit(Op{Kind: KLoadElem, Dst: l.regOf(in), A: r(0), B: r(1), Aux: int32(in.Aux)})
	case mir.OpStoreElement:
		l.emit(Op{Kind: KStoreElem, A: r(0), B: r(1), C: r(2), Aux: int32(in.Aux)})
	case mir.OpSetLength:
		l.emit(Op{Kind: KSetLen, A: r(0), B: r(1)})
	case mir.OpArrayPush:
		l.emit(Op{Kind: KPush, Dst: l.regOf(in), A: r(0), B: r(1)})
	case mir.OpArrayPop:
		l.emit(Op{Kind: KPop, Dst: l.regOf(in), A: r(0)})
	case mir.OpNewArray:
		l.emit(Op{Kind: KNewArr, Dst: l.regOf(in), A: r(0)})
	case mir.OpAddrOf:
		l.emit(Op{Kind: KAddrOf, Dst: l.regOf(in), A: r(0)})
	case mir.OpCodeBase:
		l.emit(Op{Kind: KCodeBase, Dst: l.regOf(in)})
	case mir.OpLoadGlobal:
		l.emit(Op{Kind: KLoadGlobal, Dst: l.regOf(in), Aux: int32(in.Aux)})
	case mir.OpStoreGlobal:
		kind := KStoreGlobalNum
		if in.Operands[0].Type == mir.TypeObject {
			kind = KStoreGlobalObj
		}
		l.emit(Op{Kind: kind, A: r(0), Aux: int32(in.Aux)})
	case mir.OpCall, mir.OpCallSpec:
		args := make([]int32, len(in.Operands))
		objMask := int32(0)
		for i := range in.Operands {
			args[i] = r(i)
			if in.Operands[i].Type == mir.TypeObject {
				if i >= 31 {
					return fmt.Errorf("call with more than 31 args")
				}
				objMask |= 1 << i
			}
		}
		l.code.ArgLists = append(l.code.ArgLists, args)
		expect := int32(0)
		if in.Type == mir.TypeObject {
			expect = 1
		}
		kind := KCall
		target := int32(0)
		if in.Op == mir.OpCallSpec {
			// Target is the DeoptExits index, patched when the matching
			// OpSnapshot lowers; -1 marks an orphan for the downgrade sweep.
			kind, target = KCallSpec, -1
		}
		idx := l.emit(Op{
			Kind: kind, Dst: l.regOf(in),
			A:      int32(len(l.code.ArgLists) - 1),
			B:      expect,
			C:      objMask,
			Aux:    int32(in.Aux),
			Target: target,
		})
		if in.Op == mir.OpCallSpec {
			l.callOps[in] = idx
		}
	case mir.OpOSREntry:
		// Record the OSR entry (skipped when any live-in local has a type
		// that cannot cross the frame boundary) and always emit the marker —
		// the op stream must be identical whether or not the entry is usable,
		// and the marker charges no step either way.
		pc := int32(len(l.code.Ops))
		entry := OSREntry{Ordinal: int32(in.Aux), PC: pc}
		ok := true
		for i, def := range in.Operands {
			k, valid := slotKind(def.Type)
			if !valid {
				ok = false
				break
			}
			entry.Slots = append(entry.Slots, FrameSlot{Slot: int32(i), Reg: l.regOf(def), Kind: k})
		}
		if ok {
			l.code.OSREntries = append(l.code.OSREntries, entry)
		}
		l.emit(Op{Kind: KOSRPoint, Aux: int32(in.Aux)})
	case mir.OpSnapshot:
		// No op is emitted: the snapshot only feeds the deopt side table of
		// the speculated call it references. A snapshot over a plain OpCall
		// (speculation pass declined or disabled) lowers to nothing.
		if len(in.Operands) == 0 {
			return nil
		}
		call := in.Operands[0]
		idx, speculated := l.callOps[call]
		if !speculated {
			return nil
		}
		exit := DeoptExit{Ordinal: int32(in.Num) - 1, ResultSlot: -1}
		ok := true
		for i, def := range in.Operands[1:] {
			if def == call {
				if exit.ResultSlot >= 0 {
					ok = false // ambiguous result slot; leave the call orphaned
					break
				}
				exit.ResultSlot = int32(i)
				continue
			}
			k, valid := slotKind(def.Type)
			if !valid {
				ok = false
				break
			}
			exit.Slots = append(exit.Slots, FrameSlot{Slot: int32(i), Reg: l.regOf(def), Kind: k})
		}
		if !ok || exit.ResultSlot < 0 {
			return nil // downgrade sweep reverts the orphan KCallSpec
		}
		l.code.Ops[idx].Target = int32(len(l.code.DeoptExits))
		l.code.DeoptExits = append(l.code.DeoptExits, exit)
	case mir.OpGoto:
		l.emitPhiMoves(b, b.Succs[0])
		l.jumpTo(b.Succs[0], bi, order)
	case mir.OpTest:
		// Post-split, Test successors hold no phis.
		cond := l.regOf(in.Operands[0])
		idx := l.emit(Op{Kind: KBranchFalse, A: cond})
		l.fixups = append(l.fixups, fixup{opIdx: idx, block: b.Succs[1]})
		l.jumpTo(b.Succs[0], bi, order)
	case mir.OpReturn:
		kind := KRetNum
		if in.Operands[0].Type == mir.TypeObject {
			kind = KRetObj
		}
		l.emit(Op{Kind: kind, A: r(0)})
	case mir.OpReturnUndef:
		l.emit(Op{Kind: KRetUndef})
	default:
		return fmt.Errorf("cannot lower %s", in.Op)
	}
	return nil
}

// Superinstruction fusion: a peephole pass over the linear op stream that
// collapses hot multi-op patterns — compare+branch, const+arith immediate
// forms, the canonical `i = i + 1; cmp; branch-back` loop tail, and
// boundscheck+load/store — into single fused ops the native tier dispatches
// through a per-kind handler table (internal/native/threaded.go).
//
// The contract is bit-identical replay: every fused handler performs the
// constituent ops' register reads, writes, heap effects and step charges in
// the original order, so results, Result.Steps, bail points and crash
// points are indistinguishable from executing Ops one by one. Fusion never
// spans a basic-block leader (a jump target must begin a fused op), which
// keeps every branch target representable in the fused stream.
//
// The step budget is amortized: instead of one check per op, the fused
// executor checks only at function entry and at taken jumps/branches,
// using the precomputed worst-case straight-line cost (Cost) to the next
// check point. When a check finds the budget *might* be exceeded before
// the next one, execution is delegated to the unfused switch executor at
// the equivalent source pc — the reference semantics — so budget errors
// fire on exactly the same op with exactly the same step count.
package lir

import (
	"sort"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/obs"
)

// FKind is a fused operation kind: either the pass-through form of one
// lir.Kind or a superinstruction covering several.
type FKind uint8

// FInvalid is the zero FKind; it never appears in a well-formed fused
// stream (the executor's handler for it reports a corrupt-code error).
const FInvalid FKind = 0

// PassThrough returns the fused pass-through kind of k. Pass-through kinds
// occupy 1..KindCount so the mapping is total by construction; the
// exhaustiveness guard verifies every one has a handler.
func PassThrough(k Kind) FKind { return FKind(k) + 1 }

// Superinstructions. Field packing is documented per kind in terms of the
// constituent source ops; NSteps is the number of source ops covered.
const (
	// FAddImm / FSubImm / FMulImm: KConst{Dst:C, Imm} + K{Add,Sub,Mul}{Dst, A, B}.
	FAddImm FKind = FKind(KindCount) + 1 + iota
	FSubImm
	FMulImm
	// FCmpImm: KConst{Dst:C, Imm} + KCmp{Dst, A, B, Aux}.
	FCmpImm
	// FCmpBranch: KCmp{Dst, A, B, Aux} + KBranchFalse{A: Dst, Target}.
	FCmpBranch
	// FCmpImmBranch: KConst{Dst:C, Imm} + KCmp{Dst, A, B, Aux} +
	// KBranchFalse{A: Dst, Target}.
	FCmpImmBranch
	// FIncCmpBranch: KAdd{Dst:D, A, B} + KCmp{Dst, D/E per Aux2, Aux} +
	// KBranchFalse{A: Dst, Target}. Aux2 bit 0 set means the add result is
	// the cmp's right operand (cmp = E <op> D), clear means the left.
	FIncCmpBranch
	// FAddImmCmpBranch: KConst{Dst:C, Imm} + KAdd{Dst:D, A, B} +
	// KCmp{Dst, D/E per Aux2, Aux} + KBranchFalse{A: Dst, Target} — the
	// canonical loop tail `i = i + 1; cmp i, n; branch-back`.
	FAddImmCmpBranch
	// FBoundsLoad: KBoundsCheck{A, B} + KLoadElem{Dst, C, D, Aux}.
	FBoundsLoad
	// FBoundsStore: KBoundsCheck{A, B} + KStoreElem{C, D, E, Aux}.
	FBoundsStore
	// FLenBoundsLoad: KInitLen{Dst:C, A:D} + KBoundsCheck{A, B:C} +
	// KLoadElem{Dst, A:D, B:A, Aux}.
	FLenBoundsLoad
	// FLenBoundsStore: KInitLen{Dst:C, A:D} + KBoundsCheck{A, B:C} +
	// KStoreElem{A:D, B:A, C:E, Aux}.
	FLenBoundsStore
	// FMove2: KMove{Dst, A} + KMove{Dst:C, A:D} (parallel-copy pairs from
	// phi materialization).
	FMove2
	// FMoveN: KMove x k (3 <= k <= 8), the phi-resolution shuffle lowering
	// emits before every block exit. Aux is the offset of the k (dst, src)
	// pairs in FusedCode.MovePairs; Aux2 = k. Replayed in source order, so
	// chained shuffles (move a<-b; move b<-c) resolve exactly as unfused.
	FMoveN
	// FMoveNJump: KMove x k (2 <= k <= 8) + KJump{Target} — the shuffle
	// plus the loop back edge it almost always precedes. One dispatch and
	// one budget check replace k+1 of each.
	FMoveNJump
	// FAdd2: KAdd{Dst, A, B} + KAdd{Dst: C, A: D, B: E} — back-to-back
	// adds (accumulate + increment), the body of every counting loop.
	// Sequential semantics: the second add sees the first's result.
	FAdd2
	// FAddMoveNJump: KAdd + KMove x m + KJump — a single-accumulator loop
	// body with its phi shuffle and back edge, one dispatch. Add in
	// Dst/A/B, moves in MovePairs (Aux offset, Aux2 count), jump Target.
	FAddMoveNJump
	// FAdd2MoveNJump: KAdd + KAdd + KMove x m + KJump — the complete
	// canonical while-loop body (accumulate, increment, shuffle, back
	// edge). Adds in Dst/A/B and C/D/E, moves and target as above.
	FAdd2MoveNJump
	// FArithN: a run of 4..12 pure fall-through ops (const, move, and all
	// float arithmetic/compare kinds) replayed verbatim from the
	// FusedCode.ArithOps side table. Aux is the offset of the run, Aux2 its
	// length. None of the constituents can branch, bail, or crash, so the
	// whole run is one dispatch and zero budget checks.
	FArithN
	// FArithNJump: FArithN + KJump{Target} — a full straight-line loop body
	// plus its back edge collapsed into a single dispatch.
	FArithNJump
	// FCmpBranchJump: KCmp{Dst, A, B, Aux} + KBranchFalse{A: Dst, Target} +
	// KJump{Target: C} — the loop-head `test; branch-exit; enter-body`
	// triple the while-loop lowering emits once per iteration. Exactly one
	// of the two transfers is taken, so exactly one budget check fires,
	// matching the unfused sequence.
	FCmpBranchJump
	// FEnd terminates every fused stream: falling off the end of the
	// source ops returns undefined. Jump targets equal to len(Ops) map
	// here. Charges no steps.
	FEnd

	// FKindCount is one past the last FKind.
	FKindCount
)

var fkindNames = map[FKind]string{
	FAddImm: "add.imm", FSubImm: "sub.imm", FMulImm: "mul.imm",
	FCmpImm: "cmp.imm", FCmpBranch: "cmp.br", FCmpImmBranch: "cmp.imm.br",
	FIncCmpBranch: "inc.cmp.br", FAddImmCmpBranch: "addimm.cmp.br",
	FBoundsLoad: "bounds.load", FBoundsStore: "bounds.store",
	FLenBoundsLoad: "len.bounds.load", FLenBoundsStore: "len.bounds.store",
	FMove2: "move2", FMoveN: "moveN", FMoveNJump: "moveN.jmp",
	FAdd2: "add2", FAddMoveNJump: "add.movN.jmp", FAdd2MoveNJump: "add2.movN.jmp",
	FArithN: "arithN", FArithNJump: "arithN.jmp",
	FCmpBranchJump: "cmp.br.jmp", FEnd: "end",
}

// String returns the mnemonic.
func (k FKind) String() string {
	if k == FInvalid {
		return "invalid"
	}
	if k >= 1 && k <= FKind(KindCount) {
		return Kind(k - 1).String()
	}
	if s, ok := fkindNames[k]; ok {
		return s
	}
	return "FKind(?)"
}

// IsSuper reports whether k is a superinstruction (covers > 1 source op).
func (k FKind) IsSuper() bool { return k > FKind(KindCount) && k < FEnd }

// FOp is one fused operation. Pass-through ops carry the source op's
// fields verbatim; superinstructions pack their constituents as documented
// on the FKind constants. Target is an index into the fused stream.
type FOp struct {
	Kind    FKind
	Dst     int32
	A, B, C int32
	D, E    int32
	Target  int32
	Imm     float64
	Aux     int32
	Aux2    int32
	// NSteps is the number of source LIR ops this fused op covers — the
	// step charge for full (non-bailing) execution.
	NSteps uint8
}

// FusedCode is the superinstruction form of a Code's op stream, executed
// by the native tier's threaded dispatcher. Immutable after Fuse returns.
type FusedCode struct {
	Ops []FOp
	// SrcPC maps each fused op to the source pc of its first constituent
	// (len(src) for FEnd): the resume point when the executor delegates to
	// the unfused reference loop near budget exhaustion.
	SrcPC []int32
	// Cost[i] is the worst-case number of steps charged from fused op i
	// until the next budget check point (a taken jump/branch or function
	// exit), following fall-through. The executor delegates when
	// steps+Cost[target] could exceed the budget, which is what makes the
	// amortized checking exact.
	Cost []int32

	// MovePairs backs FMoveN/FMoveNJump: flattened (dst, src) register
	// pairs, Aux2 pairs starting at offset Aux.
	MovePairs []int32
	// ArithOps backs FArithN/FArithNJump: the constituent source ops,
	// stored verbatim, Aux2 of them starting at offset Aux.
	ArithOps []Op

	SrcOps      int // source ops covered (len of the source stream)
	FusedSrcOps int // source ops absorbed into superinstructions
	Supers      int // superinstructions emitted
}

// passKind maps every Kind to its pass-through FKind. The indirection is
// deliberately a table (not arithmetic at the use site) so the
// exhaustiveness guard can fail when a new Kind is added without a fusion
// decision.
var passKind [KindCount]FKind

func init() {
	for k := Kind(0); k < KindCount; k++ {
		passKind[k] = PassThrough(k)
	}
}

// Fuse builds the superinstruction form of c's ops. It does not attach the
// result to c (FuseWith does, under the compile supervisor).
func Fuse(c *Code) *FusedCode {
	n := len(c.Ops)
	// A pattern is admissible only when no interior op is a branch target:
	// control must never enter the middle of a fused op. Fall-through
	// leaders (the op after a branch) may be interior — the only way to
	// reach one is through the preceding constituent, which the fused op
	// replays. Block metadata (c.Blocks, attached by regalloc) marks both
	// kinds of leader, so the entry set is derived from the ops directly.
	entry := make([]bool, n+1)
	entry[0] = true
	for _, op := range c.Ops {
		if op.Kind == KJump || op.Kind == KBranchFalse {
			if int(op.Target) <= n {
				entry[op.Target] = true
			}
		}
	}

	f := &FusedCode{SrcOps: n}
	// fusedIdx[srcPC] is the fused index of the op starting at srcPC,
	// defined for every group start — in particular for every leader,
	// since no fused op spans one.
	fusedIdx := make([]int32, n+1)
	for i := range fusedIdx {
		fusedIdx[i] = -1
	}

	emit := func(op FOp, srcPC, width int) {
		fusedIdx[srcPC] = int32(len(f.Ops))
		op.NSteps = uint8(width)
		f.Ops = append(f.Ops, op)
		f.SrcPC = append(f.SrcPC, int32(srcPC))
		if width > 1 {
			f.Supers++
			f.FusedSrcOps += width
		}
	}

	for pc := 0; pc < n; {
		if op, width := matchSuper(c, f, pc, entry); width > 1 {
			emit(op, pc, width)
			pc += width
			continue
		}
		src := &c.Ops[pc]
		emit(FOp{
			Kind: passKind[src.Kind], Dst: src.Dst,
			A: src.A, B: src.B, C: src.C,
			Target: src.Target, Imm: src.Imm, Aux: src.Aux,
		}, pc, 1)
		if src.Kind == KOSRPoint {
			// OSR markers charge no step in either executor; Result.Steps
			// must be bit-identical to code compiled without OSR support.
			f.Ops[len(f.Ops)-1].NSteps = 0
		}
		pc++
	}
	emit(FOp{Kind: FEnd}, n, 1)
	// FEnd charges no steps; emit counted it as width 1 for bookkeeping
	// symmetry, undo the step charge.
	f.Ops[len(f.Ops)-1].NSteps = 0

	// Remap branch targets from source pcs to fused indexes. Every target
	// is a block leader, and leaders always start a fused op.
	for i := range f.Ops {
		op := &f.Ops[i]
		if !hasTarget(op.Kind) {
			continue
		}
		t := fusedIdx[op.Target]
		if t < 0 {
			// Unreachable for well-formed code (targets are leaders); fall
			// back to FEnd rather than corrupt control flow.
			t = int32(len(f.Ops) - 1)
		}
		op.Target = t
		if op.Kind == FCmpBranchJump {
			t2 := fusedIdx[op.C]
			if t2 < 0 {
				t2 = int32(len(f.Ops) - 1)
			}
			op.C = t2
		}
	}

	f.Cost = computeCost(f.Ops)
	return f
}

// hasTarget reports whether k transfers control through FOp.Target.
func hasTarget(k FKind) bool {
	switch k {
	case PassThrough(KJump), PassThrough(KBranchFalse),
		FCmpBranch, FCmpImmBranch, FIncCmpBranch, FAddImmCmpBranch,
		FMoveNJump, FCmpBranchJump, FArithNJump,
		FAddMoveNJump, FAdd2MoveNJump:
		return true
	}
	return false
}

// computeCost computes, backward over the fused stream, the worst-case
// step charge from each op to the next budget check point following
// fall-through. Taken branches check at their target; returns and FEnd
// terminate; everything else accumulates into its successor.
func computeCost(ops []FOp) []int32 {
	cost := make([]int32, len(ops))
	for i := len(ops) - 1; i >= 0; i-- {
		c := int32(ops[i].NSteps)
		switch ops[i].Kind {
		case PassThrough(KJump), PassThrough(KRetNum), PassThrough(KRetObj),
			PassThrough(KRetUndef), FEnd, FMoveNJump, FCmpBranchJump,
			FArithNJump, FAddMoveNJump, FAdd2MoveNJump:
			// Control always transfers (and checks at the target), or
			// nothing runs beyond a return.
		default:
			if i+1 < len(ops) {
				c += cost[i+1]
			}
		}
		cost[i] = c
	}
	return cost
}

// matchSuper tries every superinstruction pattern at pc, longest first,
// and returns the fused op plus the number of source ops covered (1 when
// nothing matches). A pattern is admissible only when no interior op is a
// branch target — control may never enter the middle of a fused op.
// Move-shuffle patterns append their register pairs to f.MovePairs.
func matchSuper(c *Code, f *FusedCode, pc int, entry []bool) (FOp, int) {
	ops := c.Ops
	n := len(ops)
	fits := func(width int) bool {
		if pc+width > n {
			return false
		}
		for i := 1; i < width; i++ {
			if entry[pc+i] {
				return false
			}
		}
		return true
	}

	// KMove x k [+ KJump]: the phi-resolution shuffle, with the back edge
	// folded in when it directly follows. Longest run first, capped at 8
	// pairs (longer shuffles chunk).
	if ops[pc].Kind == KMove {
		k := 1
		for k < 8 && fits(k+1) && ops[pc+k].Kind == KMove {
			k++
		}
		if k >= 2 {
			emitPairs := func() int32 {
				off := int32(len(f.MovePairs))
				for i := 0; i < k; i++ {
					f.MovePairs = append(f.MovePairs, ops[pc+i].Dst, ops[pc+i].A)
				}
				return off
			}
			if fits(k+1) && ops[pc+k].Kind == KJump {
				return FOp{
					Kind: FMoveNJump, Aux: emitPairs(), Aux2: int32(k),
					Target: ops[pc+k].Target,
				}, k + 1
			}
			if k >= 3 {
				return FOp{Kind: FMoveN, Aux: emitPairs(), Aux2: int32(k)}, k
			}
			// k == 2 without a jump: FMove2 (below) carries the pairs in
			// its own fields, no side table needed.
		}
	}

	// KCmp + KBranchFalse + KJump: the while-loop head. Both arms transfer,
	// so the pair of checked edges collapses into one dispatch.
	if fits(3) &&
		ops[pc].Kind == KCmp && ops[pc+1].Kind == KBranchFalse && ops[pc+2].Kind == KJump {
		cmp, br, jmp := &ops[pc], &ops[pc+1], &ops[pc+2]
		if br.A == cmp.Dst {
			return FOp{
				Kind: FCmpBranchJump, Dst: cmp.Dst, A: cmp.A, B: cmp.B, Aux: cmp.Aux,
				Target: br.Target, C: jmp.Target,
			}, 3
		}
	}

	// KAdd [+ KAdd] + KMove x m + KJump: the canonical while-loop body —
	// accumulate, increment, phi shuffle, back edge — as one branch-free
	// dispatch. The second add must not open a loop-tail pattern (add,
	// cmp, branchfalse), which chainable() also guards elsewhere.
	if ops[pc].Kind == KAdd && fits(2) {
		nAdds := 1
		if ops[pc+1].Kind == KAdd && !(pc+3 < n && ops[pc+2].Kind == KCmp && ops[pc+3].Kind == KBranchFalse) {
			nAdds = 2
		}
		m := 0
		for m < 8 && fits(nAdds+m+1) && ops[pc+nAdds+m].Kind == KMove {
			m++
		}
		if m >= 1 && fits(nAdds+m+1) && ops[pc+nAdds+m].Kind == KJump {
			off := int32(len(f.MovePairs))
			for i := 0; i < m; i++ {
				mv := &ops[pc+nAdds+i]
				f.MovePairs = append(f.MovePairs, mv.Dst, mv.A)
			}
			a1 := &ops[pc]
			op := FOp{
				Kind: FAddMoveNJump, Dst: a1.Dst, A: a1.A, B: a1.B,
				Aux: off, Aux2: int32(m), Target: ops[pc+nAdds+m].Target,
			}
			if nAdds == 2 {
				a2 := &ops[pc+1]
				op.Kind = FAdd2MoveNJump
				op.C, op.D, op.E = a2.Dst, a2.A, a2.B
			}
			return op, nAdds + m + 1
		}
		if nAdds == 2 {
			a1, a2 := &ops[pc], &ops[pc+1]
			return FOp{
				Kind: FAdd2, Dst: a1.Dst, A: a1.A, B: a1.B,
				C: a2.Dst, D: a2.A, E: a2.B,
			}, 2
		}
	}

	// KConst + KAdd + KCmp + KBranchFalse: the canonical loop tail.
	if fits(4) &&
		ops[pc].Kind == KConst && ops[pc+1].Kind == KAdd &&
		ops[pc+2].Kind == KCmp && ops[pc+3].Kind == KBranchFalse {
		cst, add, cmp, br := &ops[pc], &ops[pc+1], &ops[pc+2], &ops[pc+3]
		if feeds(cst.Dst, add) && br.A == cmp.Dst && int(br.Target) <= pc {
			if e, aux2, ok := cmpOther(cmp, add.Dst); ok {
				return FOp{
					Kind: FAddImmCmpBranch, C: cst.Dst, Imm: cst.Imm,
					D: add.Dst, A: add.A, B: add.B,
					Dst: cmp.Dst, E: e, Aux: cmp.Aux, Aux2: aux2,
					Target: br.Target,
				}, 4
			}
		}
	}

	// KAdd + KCmp + KBranchFalse: loop tail with the stride in a register.
	if fits(3) &&
		ops[pc].Kind == KAdd && ops[pc+1].Kind == KCmp && ops[pc+2].Kind == KBranchFalse {
		add, cmp, br := &ops[pc], &ops[pc+1], &ops[pc+2]
		if br.A == cmp.Dst && int(br.Target) <= pc {
			if e, aux2, ok := cmpOther(cmp, add.Dst); ok {
				return FOp{
					Kind: FIncCmpBranch,
					D:    add.Dst, A: add.A, B: add.B,
					Dst: cmp.Dst, E: e, Aux: cmp.Aux, Aux2: aux2,
					Target: br.Target,
				}, 3
			}
		}
	}

	// KConst + KCmp + KBranchFalse.
	if fits(3) &&
		ops[pc].Kind == KConst && ops[pc+1].Kind == KCmp && ops[pc+2].Kind == KBranchFalse {
		cst, cmp, br := &ops[pc], &ops[pc+1], &ops[pc+2]
		if feeds(cst.Dst, cmp) && br.A == cmp.Dst {
			return FOp{
				Kind: FCmpImmBranch, C: cst.Dst, Imm: cst.Imm,
				Dst: cmp.Dst, A: cmp.A, B: cmp.B, Aux: cmp.Aux,
				Target: br.Target,
			}, 3
		}
	}

	// KInitLen + KBoundsCheck + KLoad/KStoreElem: the array-access triple.
	if fits(3) && ops[pc].Kind == KInitLen && ops[pc+1].Kind == KBoundsCheck {
		il, bc := &ops[pc], &ops[pc+1]
		if bc.B == il.Dst {
			switch third := &ops[pc+2]; third.Kind {
			case KLoadElem:
				if third.A == il.A && third.B == bc.A {
					return FOp{
						Kind: FLenBoundsLoad, C: il.Dst, D: il.A,
						A: bc.A, Dst: third.Dst, Aux: third.Aux,
					}, 3
				}
			case KStoreElem:
				if third.A == il.A && third.B == bc.A {
					return FOp{
						Kind: FLenBoundsStore, C: il.Dst, D: il.A,
						A: bc.A, E: third.C, Aux: third.Aux,
					}, 3
				}
			}
		}
	}

	// A run of pure fall-through ops (const/move/arithmetic), optionally
	// folding the KJump that ends the block: the whole straight-line loop
	// body becomes one dispatch. Runs stop before a KCmp feeding a
	// KBranchFalse so the denser compare-and-branch supers keep priority.
	if chainable(ops, pc) {
		k := 1
		for k < 12 && fits(k+1) && chainable(ops, pc+k) {
			k++
		}
		if k >= 4 {
			emitRun := func() int32 {
				off := int32(len(f.ArithOps))
				f.ArithOps = append(f.ArithOps, ops[pc:pc+k]...)
				return off
			}
			if fits(k+1) && ops[pc+k].Kind == KJump {
				return FOp{
					Kind: FArithNJump, Aux: emitRun(), Aux2: int32(k),
					Target: ops[pc+k].Target,
				}, k + 1
			}
			return FOp{Kind: FArithN, Aux: emitRun(), Aux2: int32(k)}, k
		}
	}

	// Two-op patterns.
	if fits(2) {
		a, b := &ops[pc], &ops[pc+1]
		switch {
		case a.Kind == KCmp && b.Kind == KBranchFalse && b.A == a.Dst:
			return FOp{
				Kind: FCmpBranch, Dst: a.Dst, A: a.A, B: a.B, Aux: a.Aux,
				Target: b.Target,
			}, 2
		case a.Kind == KConst && feeds(a.Dst, b):
			switch b.Kind {
			case KAdd:
				return constArith(FAddImm, a, b), 2
			case KSub:
				return constArith(FSubImm, a, b), 2
			case KMul:
				return constArith(FMulImm, a, b), 2
			case KCmp:
				op := constArith(FCmpImm, a, b)
				op.Aux = b.Aux
				return op, 2
			}
		case a.Kind == KBoundsCheck && b.Kind == KLoadElem:
			return FOp{
				Kind: FBoundsLoad, A: a.A, B: a.B,
				Dst: b.Dst, C: b.A, D: b.B, Aux: b.Aux,
			}, 2
		case a.Kind == KBoundsCheck && b.Kind == KStoreElem:
			return FOp{
				Kind: FBoundsStore, A: a.A, B: a.B,
				C: b.A, D: b.B, E: b.C, Aux: b.Aux,
			}, 2
		case a.Kind == KMove && b.Kind == KMove:
			return FOp{
				Kind: FMove2, Dst: a.Dst, A: a.A, C: b.Dst, D: b.A,
			}, 2
		}
	}

	return FOp{}, 1
}

// chainable reports whether the op at pc can join an FArithN run: pure,
// crash-free, fall-through, and touching only the float register file. Ops
// that open a compare-and-branch super (cmp+branch and the loop-tail
// shapes ending in one) are excluded so those denser patterns, which also
// amortize the budget check, keep priority over the generic chain. KMove
// is excluded too: move runs belong to FMoveN/FMoveNJump, whose flat
// pair-table loop replays a move in about half the time of the generic
// switch.
func chainable(ops []Op, pc int) bool {
	n := len(ops)
	at := func(i int, k Kind) bool { return i < n && ops[i].Kind == k }
	switch ops[pc].Kind {
	case KSub, KMul, KDiv, KMod, KPow,
		KBitAnd, KBitOr, KBitXor, KShl, KShr, KUshr, KNeg, KNot:
		return true
	case KConst:
		if at(pc+1, KCmp) && at(pc+2, KBranchFalse) {
			return false // FCmpImmBranch
		}
		if at(pc+1, KAdd) && at(pc+2, KCmp) && at(pc+3, KBranchFalse) {
			return false // FAddImmCmpBranch
		}
		return true
	case KAdd:
		return !(at(pc+1, KCmp) && at(pc+2, KBranchFalse)) // FIncCmpBranch
	case KCmp:
		return !at(pc+1, KBranchFalse) // FCmpBranch[Jump]
	}
	return false
}

// feeds reports whether register r is a source operand of the binary op.
func feeds(r int32, op *Op) bool { return op.A == r || op.B == r }

// constArith packs a KConst + binary-op pair into an immediate-form fused
// op: the constant write (C, Imm) is replayed before the operation, so
// any aliasing between the constant register and the operands resolves
// exactly as in the unfused sequence.
func constArith(kind FKind, cst, arith *Op) FOp {
	return FOp{Kind: kind, C: cst.Dst, Imm: cst.Imm, Dst: arith.Dst, A: arith.A, B: arith.B}
}

// cmpOther returns the cmp operand that is not the add result d, plus the
// Aux2 side bit (set when d is the cmp's right operand). ok=false when the
// cmp does not read d at all — the pattern is then not a loop tail.
func cmpOther(cmp *Op, d int32) (other int32, aux2 int32, ok bool) {
	switch d {
	case cmp.A:
		return cmp.B, 0, true
	case cmp.B:
		return cmp.A, 1, true
	}
	return 0, 0, false
}

// ComputeBlocks derives the basic-block metadata of c's op stream: leaders
// (index 0, every branch target, every post-terminator op) and loop heads
// (targets of back edges). regalloc.Allocate attaches the same shape to
// Code.Blocks so a standard pipeline never recomputes it.
func ComputeBlocks(c *Code) *BlockMeta {
	leaders := map[int32]bool{0: true}
	loop := map[int32]bool{}
	for pc, op := range c.Ops {
		switch op.Kind {
		case KJump, KBranchFalse:
			leaders[op.Target] = true
			if int(op.Target) <= pc {
				loop[op.Target] = true
			}
			leaders[int32(pc+1)] = true
		case KRetNum, KRetObj, KRetUndef:
			leaders[int32(pc+1)] = true
		}
	}
	m := &BlockMeta{}
	for l := range leaders {
		if int(l) <= len(c.Ops) {
			m.Leaders = append(m.Leaders, l)
		}
	}
	for l := range loop {
		m.LoopHeads = append(m.LoopHeads, l)
	}
	sort.Slice(m.Leaders, func(i, j int) bool { return m.Leaders[i] < m.Leaders[j] })
	sort.Slice(m.LoopHeads, func(i, j int) bool { return m.LoopHeads[i] < m.LoopHeads[j] })
	return m
}

// FuseWith runs the fusion stage under the compile supervisor: a
// native.fuse span, a step charge + fault roll at faults.PointFuse, and
// fusion metrics into reg (all nil-safe). On success c.Fused is attached;
// on a (necessarily injected or budget) failure c is left unfused.
func FuseWith(c *Code, fctx *faults.CompileCtx, reg *obs.Registry) error {
	sp := fctx.Span(obs.CatCompile, "native.fuse")
	if fctx != nil {
		if err := fctx.Step(faults.PointFuse, c.Name, int64(len(c.Ops))); err != nil {
			sp.EndErr(err)
			return err
		}
	}
	f := Fuse(c)
	c.Fused = f
	reg.Counter("native.fused_ops").Add(int64(f.FusedSrcOps))
	reg.Counter("native.fuse_supers").Add(int64(f.Supers))
	if f.SrcOps > 0 {
		// Percentage of source ops absorbed into superinstructions.
		reg.Histogram("native.fusion_ratio", []int64{10, 25, 50, 75, 90}).
			Observe(int64(f.FusedSrcOps * 100 / f.SrcOps))
	}
	sp.End(obs.I("ops_in", int64(f.SrcOps)),
		obs.I("ops_out", int64(len(f.Ops))),
		obs.I("fused", int64(f.FusedSrcOps)))
	return nil
}

package lir

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

func buildMIR(t *testing.T, src, name string, arrays map[string]bool, optimize bool) *mir.Graph {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	astProg := parser.MustParse(src)
	var fd *ast.FuncDecl
	for _, f := range astProg.Funcs() {
		if f.Name == name {
			fd = f
		}
	}
	if fd == nil {
		t.Fatalf("function %q not found", name)
	}
	types := make([]value.Type, len(fd.Params))
	for i, p := range fd.Params {
		if arrays[p] {
			types[i] = value.Array
		} else {
			types[i] = value.Number
		}
	}
	g, err := mirbuild.Build(prog, fd, mirbuild.Options{
		ParamTypes: types,
		GlobalType: func(int) value.Type { return value.Number },
		ReturnType: func(int) value.Type { return value.Number },
	})
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if err := passes.Run(g, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestLowerStraightLine(t *testing.T) {
	g := buildMIR(t, "function f(x, y) { return x * y + 1; }", "f", nil, true)
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	if code.NumParams != 2 {
		t.Fatalf("NumParams = %d", code.NumParams)
	}
	var hasMul, hasAdd, hasRet bool
	for _, op := range code.Ops {
		switch op.Kind {
		case KMul:
			hasMul = true
		case KAdd:
			hasAdd = true
		case KRetNum:
			hasRet = true
		}
	}
	if !hasMul || !hasAdd || !hasRet {
		t.Fatalf("missing ops:\n%s", code)
	}
}

func TestLowerLoopHasBackwardJump(t *testing.T) {
	g := buildMIR(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s += i; }
  return s;
}`, "f", nil, true)
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	backward := false
	for pc, op := range code.Ops {
		if (op.Kind == KJump || op.Kind == KBranchFalse) && int(op.Target) <= pc {
			backward = true
		}
	}
	if !backward {
		t.Fatalf("loop lowered without a backward edge:\n%s", code)
	}
}

func TestLowerPhiMovesOnEdges(t *testing.T) {
	g := buildMIR(t, `
function f(c) {
  var x = 1;
  if (c) { x = 2; } else { x = 3; }
  return x;
}`, "f", nil, false) // unoptimized keeps the phi
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, op := range code.Ops {
		if op.Kind == KMove {
			moves++
		}
	}
	if moves < 2 {
		t.Fatalf("expected phi moves on both edges, got %d:\n%s", moves, code)
	}
}

func TestLowerElementAccess(t *testing.T) {
	g := buildMIR(t, "function f(a, i, v) { a[i] = v; return a[i]; }", "f",
		map[string]bool{"a": true}, true)
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	var hasStore, hasLoadOrForward bool
	for _, op := range code.Ops {
		if op.Kind == KStoreElem {
			hasStore = true
		}
		if op.Kind == KLoadElem || op.Kind == KRetNum {
			hasLoadOrForward = true
		}
	}
	if !hasStore || !hasLoadOrForward {
		t.Fatalf("element ops missing:\n%s", code)
	}
}

func TestLowerCallArgLists(t *testing.T) {
	g := buildMIR(t, `
function g2(p, q) { return p + q; }
function f(x) { return g2(x, x + 1); }`, "f", nil, true)
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range code.Ops {
		if op.Kind == KCall {
			found = true
			if len(code.ArgLists[op.A]) != 2 {
				t.Fatalf("call args = %d, want 2", len(code.ArgLists[op.A]))
			}
		}
	}
	if !found {
		t.Fatal("no call op")
	}
}

func TestDisassemblyMentionsOps(t *testing.T) {
	g := buildMIR(t, "function f(a, i) { return a[i]; }", "f",
		map[string]bool{"a": true}, true)
	code, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	text := code.String()
	for _, want := range []string{"unbox", "boundscheck", "loadelem", "retnum"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestJumpTargetsInRange(t *testing.T) {
	srcs := []struct {
		src    string
		arrays map[string]bool
	}{
		{"function f(n) { var s = 0; for (var i = 0; i < n; i++) { if (i % 2 == 0) { s += i; } else { s -= 1; } } return s; }", nil},
		{"function f(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } return s; }", map[string]bool{"a": true}},
		{"function f(x, y) { return (x && y) + (x < y ? 1 : 2); }", nil},
	}
	for _, tt := range srcs {
		g := buildMIR(t, tt.src, "f", tt.arrays, true)
		code, err := Lower(g)
		if err != nil {
			t.Fatal(err)
		}
		for pc, op := range code.Ops {
			if op.Kind == KJump || op.Kind == KBranchFalse {
				if op.Target < 0 || int(op.Target) >= len(code.Ops) {
					t.Fatalf("op %d: target %d out of range [0,%d)", pc, op.Target, len(code.Ops))
				}
			}
		}
	}
}

package lir

import (
	"testing"

	"github.com/jitbull/jitbull/internal/obs"
)

// tail returns the canonical loop-tail shape: const stride, induction
// increment, compare, backward branch-false.
func tailCode() *Code {
	return &Code{
		Name: "tail", NumRegs: 6,
		Ops: []Op{
			{Kind: KConst, Dst: 1, Imm: 0},           // 0
			{Kind: KAdd, Dst: 2, A: 2, B: 1},         // 1: head
			{Kind: KConst, Dst: 3, Imm: 1},           // 2
			{Kind: KAdd, Dst: 1, A: 1, B: 3},         // 3
			{Kind: KCmp, Dst: 4, A: 1, B: 0, Aux: 4}, // 4
			{Kind: KBranchFalse, A: 4, Target: 1},    // 5
			{Kind: KRetNum, A: 2},                    // 6
		},
	}
}

func TestComputeBlocks(t *testing.T) {
	m := ComputeBlocks(tailCode())
	wantLeaders := []int32{0, 1, 6, 7}
	if len(m.Leaders) != len(wantLeaders) {
		t.Fatalf("leaders = %v, want %v", m.Leaders, wantLeaders)
	}
	for i, l := range wantLeaders {
		if m.Leaders[i] != l {
			t.Fatalf("leaders = %v, want %v", m.Leaders, wantLeaders)
		}
	}
	if len(m.LoopHeads) != 1 || m.LoopHeads[0] != 1 {
		t.Fatalf("loop heads = %v, want [1]", m.LoopHeads)
	}
}

func TestFuseLoopTailShape(t *testing.T) {
	f := Fuse(tailCode())
	// const(0); add(head); addimm.cmp.br(4 ops); ret; FEnd.
	kinds := make([]FKind, len(f.Ops))
	for i, op := range f.Ops {
		kinds[i] = op.Kind
	}
	want := []FKind{PassThrough(KConst), PassThrough(KAdd), FAddImmCmpBranch,
		PassThrough(KRetNum), FEnd}
	if len(kinds) != len(want) {
		t.Fatalf("fused stream %v, want kinds %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("fused stream %v, want kinds %v", kinds, want)
		}
	}
	super := f.Ops[2]
	// The back edge must be remapped from source pc 1 to fused index 1.
	if super.Target != 1 {
		t.Fatalf("back edge target = %d, want fused index 1", super.Target)
	}
	if super.NSteps != 4 {
		t.Fatalf("NSteps = %d, want 4", super.NSteps)
	}
	if f.Supers != 1 || f.FusedSrcOps != 4 || f.SrcOps != 7 {
		t.Fatalf("bookkeeping = supers %d fused %d src %d, want 1/4/7", f.Supers, f.FusedSrcOps, f.SrcOps)
	}
	// SrcPC: every fused op remembers its first constituent's pc.
	wantPC := []int32{0, 1, 2, 6, 7}
	for i, pc := range wantPC {
		if f.SrcPC[i] != pc {
			t.Fatalf("SrcPC = %v, want %v", f.SrcPC, wantPC)
		}
	}
	// Cost: worst-case straight-line steps to the next check point.
	// ret and FEnd terminate (1 and 0); the super checks at its target when
	// taken but falls through into ret (4+1); head add accumulates (1+5);
	// leading const accumulates (1+6).
	wantCost := []int32{7, 6, 5, 1, 0}
	for i, c := range wantCost {
		if f.Cost[i] != c {
			t.Fatalf("Cost = %v, want %v", f.Cost, wantCost)
		}
	}
}

// TestFuseLeaderBlocksPattern: a branch target landing inside a would-be
// pattern must suppress the fusion (control may never enter the middle of
// a fused op).
func TestFuseLeaderBlocksPattern(t *testing.T) {
	c := &Code{
		Name: "split", NumRegs: 6,
		Ops: []Op{
			{Kind: KBranchFalse, A: 0, Target: 2}, // 0: makes 2 a leader
			{Kind: KConst, Dst: 1, Imm: 3},        // 1
			{Kind: KAdd, Dst: 2, A: 1, B: 1},      // 2: leader — no FAddImm
			{Kind: KRetNum, A: 2},                 // 3
		},
	}
	f := Fuse(c)
	if f.Supers != 0 {
		t.Fatalf("pattern fused across a block leader: %v", f.Ops)
	}
	// Without the interior leader the same pair fuses.
	c.Ops[0].Target = 3
	c.Blocks = nil
	f = Fuse(c)
	if f.Supers != 1 || f.Ops[1].Kind != FAddImm {
		t.Fatalf("pair did not fuse once the leader moved: %v", f.Ops)
	}
}

// TestFuseForwardBranchNotLoopTail: the 3/4-op loop-tail patterns demand a
// backward branch; a forward branch-false must fall back to cmp+branch
// fusion only.
func TestFuseForwardBranchNotLoopTail(t *testing.T) {
	c := &Code{
		Name: "fwd", NumRegs: 6,
		Ops: []Op{
			{Kind: KAdd, Dst: 1, A: 1, B: 0},         // 0
			{Kind: KCmp, Dst: 2, A: 1, B: 3, Aux: 1}, // 1
			{Kind: KBranchFalse, A: 2, Target: 4},    // 2: forward
			{Kind: KRetNum, A: 1},                    // 3
			{Kind: KRetUndef},                        // 4
		},
	}
	f := Fuse(c)
	for _, op := range f.Ops {
		if op.Kind == FIncCmpBranch || op.Kind == FAddImmCmpBranch {
			t.Fatalf("forward branch fused as loop tail: %v", f.Ops)
		}
	}
	found := false
	for _, op := range f.Ops {
		if op.Kind == FCmpBranch {
			found = true
		}
	}
	if !found {
		t.Fatalf("cmp+branch pair did not fuse: %v", f.Ops)
	}
}

// TestFuseEndTarget: a jump to len(Ops) (fall-off-the-end exit) must remap
// to the FEnd terminator.
func TestFuseEndTarget(t *testing.T) {
	c := &Code{
		Name: "end", NumRegs: 2,
		Ops: []Op{
			{Kind: KJump, Target: 2},
			{Kind: KRetNum, A: 0},
		},
	}
	f := Fuse(c)
	if f.Ops[0].Target != int32(len(f.Ops)-1) || f.Ops[len(f.Ops)-1].Kind != FEnd {
		t.Fatalf("end jump remap: %v", f.Ops)
	}
	if f.Ops[len(f.Ops)-1].NSteps != 0 {
		t.Fatal("FEnd must charge no steps")
	}
}

func TestFuseWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := tailCode()
	if err := FuseWith(c, nil, reg); err != nil {
		t.Fatal(err)
	}
	if c.Fused == nil {
		t.Fatal("FuseWith did not attach the fused code")
	}
	if got := reg.Counter("native.fused_ops").Value(); got != 4 {
		t.Fatalf("native.fused_ops = %d, want 4", got)
	}
	if got := reg.Counter("native.fuse_supers").Value(); got != 1 {
		t.Fatalf("native.fuse_supers = %d, want 1", got)
	}
}

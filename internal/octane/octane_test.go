package octane

import (
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

func runWith(t *testing.T, b Benchmark, cfg engine.Config) (*engine.Engine, value.Value) {
	t.Helper()
	e, err := engine.New(b.Source(1), cfg)
	if err != nil {
		t.Fatalf("%s: setup: %v", b.Name, err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return e, e.Global("result")
}

func TestBenchmarksRunAndAgreeAcrossTiers(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, interpRes := runWith(t, b, engine.Config{DisableJIT: true})
			eJIT, jitRes := runWith(t, b, engine.Config{IonThreshold: 40, BaselineThreshold: 10})
			if !sameNum(interpRes, jitRes) {
				t.Fatalf("checksum mismatch: interp=%v jit=%v", interpRes, jitRes)
			}
			if eJIT.Stats().NrJIT < b.ExpectJITs {
				t.Errorf("NrJIT = %d, want >= %d (stats %+v)", eJIT.Stats().NrJIT, b.ExpectJITs, eJIT.Stats())
			}
			if !interpRes.IsNumber() {
				t.Errorf("benchmark has no numeric checksum: %v", interpRes)
			}
		})
	}
}

func TestBenchmarksSafeOnFullyVulnerableEngine(t *testing.T) {
	// The corpus must neither crash nor misbehave when every injected bug
	// is active: the benign code avoids all trigger idioms, matching how
	// real-world pages keep working on a vulnerable browser.
	bugs := passes.BugSet{}
	for _, cve := range passes.AllCVEs {
		bugs[cve] = true
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, interpRes := runWith(t, b, engine.Config{DisableJIT: true})
			eVuln, vulnRes := runWith(t, b, engine.Config{IonThreshold: 40, BaselineThreshold: 10, Bugs: bugs})
			if eVuln.Arena().Crashed() != nil || eVuln.Hijacked() != nil {
				t.Fatalf("benign benchmark crashed the vulnerable engine")
			}
			if !sameNum(interpRes, vulnRes) {
				t.Fatalf("checksum drift on vulnerable engine: %v vs %v", interpRes, vulnRes)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Splay"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("NoSuch"); err == nil {
		t.Fatal("want error")
	}
	if len(Suite()) != 13 || len(Microbenches()) != 2 {
		t.Fatalf("corpus sizes: %d suite, %d micro", len(Suite()), len(Microbenches()))
	}
}

func sameNum(a, b value.Value) bool {
	if !a.IsNumber() || !b.IsNumber() {
		return value.StrictEquals(a, b)
	}
	x, y := a.AsNumber(), b.AsNumber()
	return x == y || (math.IsNaN(x) && math.IsNaN(y))
}

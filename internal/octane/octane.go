// Package octane provides the benign benchmark corpus of the evaluation:
// nanojs analogues of the Octane suite programs the paper reports on
// (Richards, DeltaBlue, Crypto, RayTrace, Splay, NavierStokes, PdfJS,
// Box2D, TypeScript, Gbemu, CodeLoad), plus the two micro-benchmarks of
// §VI-A (Microbench1: arithmetic in a for loop; Microbench2: array size
// manipulation).
//
// Each analogue preserves the traits that matter to the evaluation: the
// rough number and shape of hot (JIT-compiled) functions, the array/loop
// idioms that exercise GVN/LICM/range analysis/bounds check elimination,
// and a deterministic checksum in the global `result` so every tier
// configuration can be cross-checked. Absolute scores are not comparable
// to real Octane; relative shapes are what the reproduction targets.
package octane

import (
	"fmt"
	"strconv"
	"strings"
)

// Benchmark is one corpus program. Sources are templates whose outer-loop
// iteration count scales linearly, so timing experiments can amortize
// one-time compilation costs exactly as the real Octane harness does
// (seconds of steady state per program).
type Benchmark struct {
	Name string
	tmpl string
	// BaseIters is the outer-loop count at scale 1 (sized for fast tests).
	BaseIters int
	// ExpectJITs is a loose lower bound on hot functions when run with a
	// low Ion threshold, used by sanity tests.
	ExpectJITs int
}

// Source renders the program with its outer loop scaled by the given
// factor (values below 1 mean 1).
func (b Benchmark) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return strings.Replace(b.tmpl, "%ITERS%", strconv.Itoa(b.BaseIters*scale), 1)
}

// Suite returns the Octane-analogue corpus in the order the paper's
// figures list them.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "Richards", tmpl: richards, BaseIters: 60, ExpectJITs: 5},
		{Name: "DeltaBlue", tmpl: deltablue, BaseIters: 220, ExpectJITs: 5},
		{Name: "Crypto", tmpl: crypto, BaseIters: 150, ExpectJITs: 5},
		{Name: "RayTrace", tmpl: raytrace, BaseIters: 12, ExpectJITs: 3},
		{Name: "Splay", tmpl: splay, BaseIters: 300, ExpectJITs: 4},
		{Name: "NavierStokes", tmpl: navierstokes, BaseIters: 40, ExpectJITs: 5},
		{Name: "PdfJS", tmpl: pdfjs, BaseIters: 70, ExpectJITs: 5},
		{Name: "Box2D", tmpl: box2d, BaseIters: 220, ExpectJITs: 3},
		{Name: "TypeScript", tmpl: typescript, BaseIters: 55, ExpectJITs: 6},
		{Name: "Gbemu", tmpl: gbemu, BaseIters: 40, ExpectJITs: 4},
		{Name: "EarleyBoyer", tmpl: earleyboyer, BaseIters: 70, ExpectJITs: 4},
		{Name: "Zlib", tmpl: zlib, BaseIters: 35, ExpectJITs: 3},
		{Name: "CodeLoad", tmpl: codeload, BaseIters: 260, ExpectJITs: 3},
	}
}

// Microbenches returns the two micro-benchmarks of §VI-A.
func Microbenches() []Benchmark {
	return []Benchmark{
		{Name: "Microbench1", tmpl: microbench1, BaseIters: 600, ExpectJITs: 1},
		{Name: "Microbench2", tmpl: microbench2, BaseIters: 600, ExpectJITs: 1},
	}
}

// All returns Suite plus Microbenches.
func All() []Benchmark {
	return append(Suite(), Microbenches()...)
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("octane: unknown benchmark %q", name)
}

// Microbench1 (§VI-A): "performs an arithmetic operation on variables
// within a for loop".
const microbench1 = `
function kernel(n, seed) {
  var x = seed;
  var y = 0;
  for (var i = 0; i < n; i++) {
    x = (x * 48271 + 12345) % 2147483647;
    y = y + (x % 97) - (x % 31);
  }
  return y;
}
var result = 0;
for (var r = 0; r < %ITERS%; r++) {
  result = result + kernel(220, r + 1);
}
`

// Microbench2 (§VI-A): "does the same but manipulates the size of an
// array".
const microbench2 = `
function churn(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    a.push(i * 3 - 1);
  }
  for (var j = 0; j < n; j++) {
    s = s + a.pop();
  }
  a.length = 4;
  a.length = 16;
  for (var k = 0; k < a.length; k++) {
    s = s + a[k];
  }
  return s;
}
var buf = new Array(16);
var result = 0;
for (var r = 0; r < %ITERS%; r++) {
  result = result + churn(buf, 40);
}
`

// Richards: task scheduler kernel. Queues and task control blocks live in
// flat arrays; the scheduler repeatedly picks the highest-priority ready
// task and runs its handler.
const richards = `
var NTASKS = 6;
var state = new Array(6);
var pri = new Array(6);
var workQ = new Array(6);
var qhead = new Array(6);
var qtail = new Array(6);
var held = new Array(6);
var totalWork = 0;

function resetTasks() {
  for (var i = 0; i < NTASKS; i++) {
    state[i] = 1;
    pri[i] = (i * 7) % 11 + 1;
    qhead[i] = 0;
    qtail[i] = 0;
    held[i] = 0;
  }
  totalWork = 0;
}

function enqueue(task, pkt) {
  var base = task * 16;
  workQ[base + (qtail[task] % 16)] = pkt;
  qtail[task] = qtail[task] + 1;
  state[task] = 1;
}

function dequeue(task) {
  if (qhead[task] >= qtail[task]) { return -1; }
  var base = task * 16;
  var pkt = workQ[base + (qhead[task] % 16)];
  qhead[task] = qhead[task] + 1;
  return pkt;
}

function pickTask() {
  var best = -1;
  var bestPri = -1;
  for (var i = 0; i < NTASKS; i++) {
    if (state[i] == 1 && held[i] == 0 && pri[i] > bestPri) {
      bestPri = pri[i];
      best = i;
    }
  }
  return best;
}

function runHandler(task, pkt) {
  var work = 0;
  for (var i = 0; i < 12; i++) {
    work = work + ((pkt + i) * pri[task]) % 13;
  }
  totalWork = totalWork + work;
  if (pkt % 3 == 0) {
    enqueue((task + 1) % NTASKS, pkt + 1);
  }
  if (pkt % 5 == 0) {
    held[(task + 2) % NTASKS] = 0;
  }
  return work;
}

function schedule(rounds) {
  var executed = 0;
  for (var r = 0; r < rounds; r++) {
    var t = pickTask();
    if (t < 0) {
      for (var i = 0; i < NTASKS; i++) { enqueue(i, r + i); }
      continue;
    }
    var pkt = dequeue(t);
    if (pkt < 0) {
      state[t] = 0;
      continue;
    }
    executed = executed + runHandler(t, pkt);
  }
  return executed;
}

workQ = new Array(96);
var result = 0;
for (var iter = 0; iter < %ITERS%; iter++) {
  resetTasks();
  for (var i = 0; i < NTASKS; i++) { enqueue(i, i * 2 + 1); }
  result = result + schedule(260) % 100000;
}
`

// DeltaBlue: one-way dataflow constraint solver. Constraints relate
// variable slots; a planner walks them in topological rounds and enforces
// the strongest satisfied constraints.
const deltablue = `
var NV = 24;
var NC = 24;
var val = new Array(24);
var stay = new Array(24);
var cSrc = new Array(24);
var cDst = new Array(24);
var cOff = new Array(24);
var cStrength = new Array(24);
var cEnabled = new Array(24);

function initGraph(seed) {
  for (var i = 0; i < NV; i++) {
    val[i] = (seed + i * 3) % 50;
    stay[i] = (i % 4 == 0) ? 1 : 0;
  }
  for (var c = 0; c < NC; c++) {
    cSrc[c] = c % NV;
    cDst[c] = (c + 7) % NV;
    cOff[c] = (c * 5) % 9 - 4;
    cStrength[c] = (c * 13) % 7 + 1;
    cEnabled[c] = 1;
  }
}

function enforce(c) {
  if (cEnabled[c] == 0) { return 0; }
  var s = cSrc[c];
  var d = cDst[c];
  if (stay[d] == 1) { return 0; }
  var nv = val[s] + cOff[c];
  if (val[d] == nv) { return 0; }
  val[d] = nv;
  return 1;
}

function weakest() {
  var w = -1;
  var ws = 99;
  for (var c = 0; c < NC; c++) {
    if (cEnabled[c] == 1 && cStrength[c] < ws) {
      ws = cStrength[c];
      w = c;
    }
  }
  return w;
}

function propagate(limit) {
  var changed = 1;
  var rounds = 0;
  while (changed == 1 && rounds < limit) {
    changed = 0;
    for (var c = 0; c < NC; c++) {
      if (enforce(c) == 1) { changed = 1; }
    }
    rounds++;
  }
  return rounds;
}

function perturb(k) {
  var c = weakest();
  if (c >= 0 && k % 4 == 0) { cEnabled[c] = 0; }
  if (k % 4 == 2 && c >= 0) { cEnabled[c] = 1; }
  val[k % NV] = val[k % NV] + k % 7;
}

function checksum() {
  var h = 0;
  for (var i = 0; i < NV; i++) {
    h = (h * 31 + val[i]) % 1000003;
  }
  return h;
}

var result = 0;
for (var iter = 0; iter < %ITERS%; iter++) {
  initGraph(iter);
  perturb(iter);
  propagate(12);
  perturb(iter + 1);
  propagate(12);
  result = (result + checksum()) % 1000003;
}
`

// Crypto: modular arithmetic kernels (modexp, Montgomery-ish folding,
// digest mixing) over 26-bit integers.
const crypto = `
function mulmod(a, b, m) {
  var hi = Math.floor(a / 4096);
  var lo = a % 4096;
  return ((hi * b) % m * 4096 % m + lo * b) % m;
}

function powmod(base, e, m) {
  var acc = 1;
  var b = base % m;
  var k = e;
  while (k > 0) {
    if (k % 2 == 1) {
      acc = mulmod(acc, b, m);
    }
    b = mulmod(b, b, m);
    k = Math.floor(k / 2);
  }
  return acc;
}

function mix(h, x) {
  h = (h ^ x) & 67108863;
  h = (h * 33 + 1) % 67108864;
  h = (h ^ (h >> 7)) & 67108863;
  return h;
}

function digest(data, n) {
  var h = 5381;
  for (var i = 0; i < n; i++) {
    h = mix(h, data[i]);
  }
  return h;
}

function fill(data, n, seed) {
  var x = seed;
  for (var i = 0; i < n; i++) {
    x = (x * 48271) % 2147483647;
    data[i] = x % 65536;
  }
  return x;
}

function roundtrip(msg, mod) {
  var cipher = powmod(msg, 17, mod);
  var plain = powmod(cipher, 157, mod);
  return plain;
}

var buf = new Array(64);
var result = 0;
for (var iter = 0; iter < %ITERS%; iter++) {
  fill(buf, 64, iter + 3);
  var h = digest(buf, 64);
  var m = 3337;
  result = (result + roundtrip(h % m, m) + h % 977) % 9999991;
}
`

// RayTrace: sphere intersection over flat coordinate arrays, shading with
// dot products, one bounce.
const raytrace = `
var NS = 6;
var sx = new Array(6);
var sy = new Array(6);
var sz = new Array(6);
var sr = new Array(6);
var shade = new Array(6);

function setupScene() {
  for (var i = 0; i < NS; i++) {
    sx[i] = (i * 37) % 17 - 8;
    sy[i] = (i * 53) % 13 - 6;
    sz[i] = 12 + (i * 29) % 9;
    sr[i] = 1.5 + (i % 3);
    shade[i] = 0.2 + 0.1 * i;
  }
}

function hitSphere(ox, oy, oz, dx, dy, dz, s) {
  var cx = sx[s] - ox;
  var cy = sy[s] - oy;
  var cz = sz[s] - oz;
  var proj = cx * dx + cy * dy + cz * dz;
  if (proj < 0) { return -1; }
  var d2 = cx * cx + cy * cy + cz * cz - proj * proj;
  var r2 = sr[s] * sr[s];
  if (d2 > r2) { return -1; }
  return proj - Math.sqrt(r2 - d2);
}

function traceRay(ox, oy, oz, dx, dy, dz) {
  var bestT = 1e9;
  var best = -1;
  for (var s = 0; s < NS; s++) {
    var t = hitSphere(ox, oy, oz, dx, dy, dz, s);
    if (t >= 0 && t < bestT) {
      bestT = t;
      best = s;
    }
  }
  if (best < 0) { return 0; }
  var px = ox + dx * bestT;
  var py = oy + dy * bestT;
  var pz = oz + dz * bestT;
  var nx = (px - sx[best]) / sr[best];
  var ny = (py - sy[best]) / sr[best];
  var nz = (pz - sz[best]) / sr[best];
  var light = nx * 0.57 + ny * 0.57 + nz * 0.57;
  if (light < 0) { light = 0; }
  return shade[best] + light * 0.8;
}

function renderRow(y, w, acc) {
  for (var x = 0; x < w; x++) {
    var dx = (x - w / 2) / w;
    var dy = (y - 12) / 24;
    var dz = 1;
    var norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
    acc = acc + traceRay(0, 0, 0, dx / norm, dy / norm, dz / norm);
  }
  return acc;
}

setupScene();
var result = 0;
for (var frame = 0; frame < %ITERS%; frame++) {
  var acc = 0;
  for (var y = 0; y < 24; y++) {
    acc = renderRow(y, 32, acc);
  }
  result = result + Math.floor(acc);
  sx[frame % NS] = sx[frame % NS] + 0.25;
}
`

// Splay: splay tree over parallel node-pool arrays (keys, left, right),
// with zig-zig/zig-zag rotations and periodic insert/delete churn. Heavy
// duplicate array accesses — the FP-prone idiom of Figure 4.
const splay = `
var CAP = 256;
var key = new Array(256);
var left = new Array(256);
var right = new Array(256);
var freeTop = 0;
var root = -1;

function initPool() {
  for (var i = 0; i < CAP; i++) {
    key[i] = 0;
    left[i] = i + 1;
    right[i] = -1;
  }
  left[CAP - 1] = -1;
  freeTop = 0;
  root = -1;
}

function alloc(k) {
  if (freeTop < 0) { return -1; }
  var n = freeTop;
  freeTop = left[n];
  key[n] = k;
  left[n] = -1;
  right[n] = -1;
  return n;
}

function rotateRight(n) {
  var l = left[n];
  left[n] = right[l];
  right[l] = n;
  return l;
}

function rotateLeft(n) {
  var r = right[n];
  right[n] = left[r];
  left[r] = n;
  return r;
}

function splayTo(n, k) {
  if (n < 0) { return n; }
  var guard = 0;
  while (guard < 64) {
    guard++;
    if (k < key[n]) {
      if (left[n] < 0) { break; }
      if (k < key[left[n]]) {
        n = rotateRight(n);
        if (left[n] < 0) { break; }
      }
      n = rotateRight(n);
    } else if (k > key[n]) {
      if (right[n] < 0) { break; }
      if (k > key[right[n]]) {
        n = rotateLeft(n);
        if (right[n] < 0) { break; }
      }
      n = rotateLeft(n);
    } else {
      break;
    }
  }
  return n;
}

function insert(k) {
  root = splayTo(root, k);
  if (root >= 0 && key[root] == k) { return root; }
  var n = alloc(k);
  if (n < 0) { return root; }
  if (root < 0) {
    root = n;
    return n;
  }
  if (k < key[root]) {
    left[n] = left[root];
    right[n] = root;
    left[root] = -1;
  } else {
    right[n] = right[root];
    left[n] = root;
    right[root] = -1;
  }
  root = n;
  return n;
}

function lookup(k) {
  root = splayTo(root, k);
  if (root >= 0 && key[root] == k) { return 1; }
  return 0;
}

function treeSum(n, depth) {
  if (n < 0 || depth > 40) { return 0; }
  return key[n] + treeSum(left[n], depth + 1) + treeSum(right[n], depth + 1);
}

initPool();
var result = 0;
var x = 7;
for (var iter = 0; iter < %ITERS%; iter++) {
  x = (x * 48271 + 12345) % 2147483647;
  insert(x % 1000);
  x = (x * 48271 + 12345) % 2147483647;
  result = result + lookup(x % 1000);
  if (iter % 50 == 49) {
    result = (result + treeSum(root, 0)) % 1000003;
  }
}
`

// NavierStokes: 2D fluid solver core — Gauss-Seidel relaxation and
// advection over a flat grid, the real benchmark's lin_solve/advect shape.
const navierstokes = `
var N = 14;
var SZ = 256;
var u = new Array(256);
var v = new Array(256);
var dens = new Array(256);
var tmp = new Array(256);

function IX(i, j) { return i + (N + 2) * j; }

function addSource(x, amount) {
  for (var i = 0; i < SZ; i++) {
    x[i] = x[i] + amount * ((i % 7) - 3) * 0.01;
  }
}

function setBnd(x) {
  for (var i = 1; i <= N; i++) {
    x[IX(0, i)] = x[IX(1, i)];
    x[IX(N + 1, i)] = x[IX(N, i)];
    x[IX(i, 0)] = x[IX(i, 1)];
    x[IX(i, N + 1)] = x[IX(i, N)];
  }
}

function linSolve(x, x0, a, c) {
  for (var k = 0; k < 6; k++) {
    for (var j = 1; j <= N; j++) {
      for (var i = 1; i <= N; i++) {
        x[IX(i, j)] = (x0[IX(i, j)] + a * (x[IX(i - 1, j)] + x[IX(i + 1, j)] + x[IX(i, j - 1)] + x[IX(i, j + 1)])) / c;
      }
    }
    setBnd(x);
  }
}

function advect(d, d0, uu, vv, dt) {
  var dt0 = dt * N;
  for (var j = 1; j <= N; j++) {
    for (var i = 1; i <= N; i++) {
      var fx = i - dt0 * uu[IX(i, j)];
      var fy = j - dt0 * vv[IX(i, j)];
      if (fx < 0.5) { fx = 0.5; }
      if (fx > N + 0.5) { fx = N + 0.5; }
      if (fy < 0.5) { fy = 0.5; }
      if (fy > N + 0.5) { fy = N + 0.5; }
      var i0 = Math.floor(fx);
      var j0 = Math.floor(fy);
      var s1 = fx - i0;
      var t1 = fy - j0;
      d[IX(i, j)] = (1 - s1) * ((1 - t1) * d0[IX(i0, j0)] + t1 * d0[IX(i0, j0 + 1)])
                  + s1 * ((1 - t1) * d0[IX(i0 + 1, j0)] + t1 * d0[IX(i0 + 1, j0 + 1)]);
    }
  }
  setBnd(d);
}

function gridSum(x) {
  var s = 0;
  for (var i = 0; i < SZ; i++) { s = s + x[i]; }
  return s;
}

function step(dt) {
  addSource(dens, 1);
  addSource(u, 0.5);
  addSource(v, 0.25);
  linSolve(tmp, dens, 0.4, 2.6);
  advect(dens, tmp, u, v, dt);
  linSolve(u, v, 0.2, 1.8);
}

for (var i = 0; i < SZ; i++) {
  u[i] = 0; v[i] = 0; dens[i] = (i % 11) * 0.1; tmp[i] = 0;
}
var result = 0;
for (var frame = 0; frame < %ITERS%; frame++) {
  step(0.08);
  result = result + Math.floor(gridSum(dens)) % 10007;
}
`

// PdfJS: stream decoding analogue — bit-reader over a byte array, a tiny
// prefix-code decoder, predictor reconstruction, page assembly.
const pdfjs = `
var stream = new Array(512);
var out = new Array(512);
var bitPos = 0;

function fillStream(seed) {
  var x = seed;
  for (var i = 0; i < 512; i++) {
    x = (x * 48271 + 1) % 2147483647;
    stream[i] = x % 256;
  }
  bitPos = 0;
}

function readBit() {
  var byteIdx = bitPos >> 3;
  var bit = (stream[byteIdx % 512] >> (bitPos & 7)) & 1;
  bitPos = bitPos + 1;
  return bit;
}

function readBits(n) {
  var v = 0;
  for (var i = 0; i < n; i++) {
    v = v * 2 + readBit();
  }
  return v;
}

function decodeSymbol() {
  if (readBit() == 0) { return readBits(3); }
  if (readBit() == 0) { return 8 + readBits(4); }
  return 24 + readBits(6);
}

function predictor(row, n) {
  var prev = 0;
  for (var i = 0; i < n; i++) {
    out[row * 32 + i] = (out[row * 32 + i] + prev) % 256;
    prev = out[row * 32 + i];
  }
  return prev;
}

function decodePage(n) {
  var count = 0;
  for (var i = 0; i < n; i++) {
    out[i % 512] = decodeSymbol();
    count = count + 1;
  }
  var h = 0;
  for (var row = 0; row < 16; row++) {
    h = (h + predictor(row, 32)) % 65521;
  }
  return h;
}

function pageChecksum() {
  var h = 1;
  for (var i = 0; i < 512; i++) {
    h = (h + out[i]) % 65521;
  }
  return h;
}

var result = 0;
for (var page = 0; page < %ITERS%; page++) {
  fillStream(page * 7 + 1);
  result = (result + decodePage(300) + pageChecksum()) % 9999999;
}
`

// Box2D: rigid-body physics analogue: integrate bodies, broad-phase pair
// scan, impulse resolution, friction — all over parallel arrays.
const box2d = `
var NB = 20;
var px = new Array(20);
var py = new Array(20);
var vx = new Array(20);
var vy = new Array(20);
var rad = new Array(20);
var invMass = new Array(20);

function initWorld() {
  for (var i = 0; i < NB; i++) {
    px[i] = (i % 5) * 4 + 1;
    py[i] = Math.floor(i / 5) * 4 + 1;
    vx[i] = ((i * 13) % 7 - 3) * 0.4;
    vy[i] = ((i * 17) % 5 - 2) * 0.4;
    rad[i] = 0.8 + (i % 3) * 0.2;
    invMass[i] = 1 / (1 + (i % 4));
  }
}

function integrate(dt) {
  for (var i = 0; i < NB; i++) {
    vy[i] = vy[i] - 9.8 * dt * 0.1;
    px[i] = px[i] + vx[i] * dt;
    py[i] = py[i] + vy[i] * dt;
    if (py[i] < rad[i]) {
      py[i] = rad[i];
      vy[i] = -vy[i] * 0.6;
    }
    if (px[i] < rad[i] || px[i] > 20 - rad[i]) {
      vx[i] = -vx[i] * 0.9;
      if (px[i] < rad[i]) { px[i] = rad[i]; }
      else { px[i] = 20 - rad[i]; }
    }
  }
}

function collide(i, j, dt) {
  var dx = px[j] - px[i];
  var dy = py[j] - py[i];
  var d2 = dx * dx + dy * dy;
  var rsum = rad[i] + rad[j];
  if (d2 >= rsum * rsum || d2 == 0) { return 0; }
  var d = Math.sqrt(d2);
  var nx = dx / d;
  var ny = dy / d;
  var rvx = vx[j] - vx[i];
  var rvy = vy[j] - vy[i];
  var vn = rvx * nx + rvy * ny;
  if (vn > 0) { return 0; }
  var imp = -1.6 * vn / (invMass[i] + invMass[j]);
  vx[i] = vx[i] - imp * invMass[i] * nx;
  vy[i] = vy[i] - imp * invMass[i] * ny;
  vx[j] = vx[j] + imp * invMass[j] * nx;
  vy[j] = vy[j] + imp * invMass[j] * ny;
  return 1;
}

function broadphase(dt) {
  var hits = 0;
  for (var i = 0; i < NB; i++) {
    for (var j = i + 1; j < NB; j++) {
      hits = hits + collide(i, j, dt);
    }
  }
  return hits;
}

function energy() {
  var e = 0;
  for (var i = 0; i < NB; i++) {
    e = e + (vx[i] * vx[i] + vy[i] * vy[i]) / (2 * invMass[i]);
  }
  return e;
}

initWorld();
var result = 0;
for (var step = 0; step < %ITERS%; step++) {
  integrate(0.016);
  result = result + broadphase(0.016);
  if (step % 20 == 0) {
    result = result + Math.floor(energy());
  }
}
`

// TypeScript: compiler front-end analogue: a tokenizer over a char-code
// array, a Pratt-ish expression folder, a symbol interner and an emitter.
// checkpointScan deliberately shares the double-read two-array idiom the
// CVE-2019-17026 PoC uses — the paper observes exactly one Octane program
// (TypeScript) showing similarity with that VDC's DNA at database size 1.
const typescript = `
var src = new Array(600);
var toks = new Array(600);
var tvals = new Array(600);
var symtab = new Array(64);
var ntoks = 0;

function genSource(seed) {
  var x = seed;
  for (var i = 0; i < 600; i++) {
    x = (x * 48271) % 2147483647;
    var c = x % 40;
    if (c < 10) { src[i] = 48 + c; }
    else if (c < 36) { src[i] = 97 + (c - 10); }
    else if (c == 36) { src[i] = 43; }
    else if (c == 37) { src[i] = 42; }
    else if (c == 38) { src[i] = 40; }
    else { src[i] = 41; }
  }
}

function isDigit(c) { return c >= 48 && c <= 57 ? 1 : 0; }
function isAlpha(c) { return c >= 97 && c <= 122 ? 1 : 0; }

function tokenize(n) {
  ntoks = 0;
  var i = 0;
  while (i < n) {
    var c = src[i];
    if (isDigit(c) == 1) {
      var num = 0;
      while (i < n && isDigit(src[i]) == 1) {
        num = num * 10 + (src[i] - 48);
        i++;
      }
      toks[ntoks] = 1;
      tvals[ntoks] = num;
      ntoks++;
    } else if (isAlpha(c) == 1) {
      var h = 0;
      while (i < n && isAlpha(src[i]) == 1) {
        h = (h * 31 + src[i]) % 1024;
        i++;
      }
      toks[ntoks] = 2;
      tvals[ntoks] = h;
      ntoks++;
    } else {
      toks[ntoks] = 3;
      tvals[ntoks] = c;
      ntoks++;
      i++;
    }
  }
  return ntoks;
}

function intern(h) {
  var slot = h % 64;
  var probes = 0;
  while (probes < 64) {
    if (symtab[slot] == 0) {
      symtab[slot] = h + 1;
      return slot;
    }
    if (symtab[slot] == h + 1) { return slot; }
    slot = (slot + 1) % 64;
    probes++;
  }
  return 0;
}

function foldExprs(n) {
  var acc = 0;
  var depth = 0;
  for (var i = 0; i < n; i++) {
    if (toks[i] == 1) { acc = acc + tvals[i] * (depth + 1); }
    else if (toks[i] == 2) { acc = acc + intern(tvals[i]); }
    else if (tvals[i] == 40) { depth++; }
    else if (tvals[i] == 41 && depth > 0) { depth--; }
  }
  return acc;
}

function checkpointScan(cur, snap, idx) {
  var probe = snap[idx * 2] + snap[idx + 3];
  cur[idx] = probe * 2;
  cur[idx + 1] = probe * 0 + idx;
  var verify = cur[idx] + cur[idx + 1];
  return probe + verify;
}

function emit(n) {
  var bytes = 0;
  for (var i = 0; i < n; i++) {
    bytes = bytes + (toks[i] * 4 + 1);
  }
  return bytes;
}

var snapshots = new Array(64);
var cursor = new Array(16);
for (var i = 0; i < 64; i++) { snapshots[i] = i * 3; }
for (var i = 0; i < 64; i++) { symtab[i % 64] = 0; }
var result = 0;
for (var pass = 0; pass < %ITERS%; pass++) {
  genSource(pass + 11);
  var n = tokenize(600);
  result = (result + foldExprs(n) + emit(n)) % 99999989;
  result = result + checkpointScan(cursor, snapshots, pass % 6) % 97;
}
`

// Gbemu: CPU-emulator analogue: fetch/decode/execute dispatch over a
// memory array with 8-bit registers.
const gbemu = `
var mem = new Array(1024);
var regA = 0;
var regB = 0;
var regC = 0;
var pc = 0;
var cycles = 0;

function loadRom(seed) {
  var x = seed;
  for (var i = 0; i < 1024; i++) {
    x = (x * 48271 + 7) % 2147483647;
    mem[i] = x % 256;
  }
  pc = 0;
  regA = 1;
  regB = 2;
  regC = 3;
  cycles = 0;
}

function fetch() {
  var op = mem[pc % 1024];
  pc = pc + 1;
  return op;
}

function aluAdd(x, y) { return (x + y) % 256; }
function aluXor(x, y) { return (x ^ y) & 255; }

function execOne() {
  var op = fetch();
  var kind = op % 8;
  if (kind == 0) { regA = aluAdd(regA, regB); cycles = cycles + 1; }
  else if (kind == 1) { regB = aluAdd(regB, regC); cycles = cycles + 1; }
  else if (kind == 2) { regC = aluXor(regC, regA); cycles = cycles + 1; }
  else if (kind == 3) { regA = mem[(regB * 4 + regC) % 1024]; cycles = cycles + 2; }
  else if (kind == 4) { mem[(regA * 4 + regB) % 1024] = regC; cycles = cycles + 2; }
  else if (kind == 5) { pc = (pc + regA) % 1024; cycles = cycles + 3; }
  else if (kind == 6) { regA = aluXor(regA, op); cycles = cycles + 1; }
  else { regC = aluAdd(regC, op); cycles = cycles + 1; }
  return cycles;
}

function runFrame(budget) {
  var start = cycles;
  while (cycles - start < budget) {
    execOne();
  }
  return regA * 65536 + regB * 256 + regC;
}

var result = 0;
for (var frame = 0; frame < %ITERS%; frame++) {
  loadRom(frame + 5);
  result = (result + runFrame(500)) % 16777213;
}
`

// CodeLoad: many small functions each called a handful of times —
// compilation churn rather than steady-state loops.
const codeload = `
function h01(x) { return x * 3 + 1; }
function h02(x) { return x * 5 - 2; }
function h03(x) { return (x << 1) ^ 9; }
function h04(x) { return x % 17 + 4; }
function h05(x) { return x * x % 101; }
function h06(x) { return (x >> 2) + 7; }
function h07(x) { return (x | 5) - (x & 3); }
function h08(x) { return x * 11 % 31; }
function h09(x) { return Math.floor(x / 3) + 2; }
function h10(x) { return Math.abs(x - 50); }
function dispatch(k, x) {
  if (k == 0) { return h01(x); }
  if (k == 1) { return h02(x); }
  if (k == 2) { return h03(x); }
  if (k == 3) { return h04(x); }
  if (k == 4) { return h05(x); }
  if (k == 5) { return h06(x); }
  if (k == 6) { return h07(x); }
  if (k == 7) { return h08(x); }
  if (k == 8) { return h09(x); }
  return h10(x);
}
function moduleInit(seed, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = s + dispatch((seed + i) % 10, seed * 7 + i);
  }
  return s;
}
var result = 0;
for (var m = 0; m < %ITERS%; m++) {
  result = (result + moduleInit(m, 24)) % 1000033;
}
`

// EarleyBoyer: chart-parser analogue — an Earley-style recognizer over a
// small grammar encoded in parallel arrays, plus a Boyer-style term
// rewriting loop over an array-encoded term pool.
const earleyboyer = `
var ruleLhs = new Array(12);
var ruleRhsA = new Array(12);
var ruleRhsB = new Array(12);
var chart = new Array(512);
var chartLen = 0;
var terms = new Array(256);

function initGrammar() {
  for (var r = 0; r < 12; r++) {
    ruleLhs[r] = r % 5;
    ruleRhsA[r] = (r * 3) % 5;
    ruleRhsB[r] = (r * 7 + 1) % 5;
  }
}

function addItem(state, origin, dot) {
  var key = state * 4096 + origin * 64 + dot;
  for (var i = 0; i < chartLen; i++) {
    if (chart[i] == key) { return 0; }
  }
  if (chartLen < 512) {
    chart[chartLen] = key;
    chartLen = chartLen + 1;
    return 1;
  }
  return 0;
}

function recognize(seed, n) {
  chartLen = 0;
  var added = addItem(0, 0, 0);
  var tok = seed;
  for (var pos = 0; pos < n; pos++) {
    tok = (tok * 48271 + 11) % 2147483647;
    var sym = tok % 5;
    var before = chartLen;
    for (var i = 0; i < before; i++) {
      var it = chart[i];
      var state = Math.floor(it / 4096);
      for (var r = 0; r < 12; r++) {
        if (ruleLhs[r] == state && ruleRhsA[r] == sym) {
          added = added + addItem(ruleRhsB[r], pos % 64, 1);
        }
      }
    }
  }
  return chartLen + added;
}

function rewriteTerm(i) {
  var v = terms[i];
  if (v % 3 == 0) { return Math.floor(v / 3); }
  if (v % 3 == 1) { return v * 2 + 1; }
  return v - 1;
}

function boyerPass(n) {
  var changed = 0;
  for (var i = 0; i < n; i++) {
    var nv = rewriteTerm(i);
    if (nv != terms[i]) {
      terms[i] = nv % 4096;
      changed = changed + 1;
    }
  }
  return changed;
}

initGrammar();
for (var i = 0; i < 256; i++) { terms[i] = (i * 37 + 11) % 4096; }
var result = 0;
for (var iter = 0; iter < %ITERS%; iter++) {
  result = (result + recognize(iter + 1, 24)) % 999983;
  result = (result + boyerPass(256)) % 999983;
}
`

// Zlib: LZ77-style compression analogue — hash-chained longest-match
// search over a byte array, then a bit-packing emit loop.
const zlib = `
var input = new Array(1024);
var head = new Array(256);
var output = new Array(2048);
var outLen = 0;

function fillInput(seed) {
  var x = seed;
  for (var i = 0; i < 1024; i++) {
    x = (x * 48271 + 3) % 2147483647;
    input[i] = (x % 23) + 97;
  }
}

function hash2(i) {
  return (input[i] * 31 + input[(i + 1) % 1024]) % 256;
}

function matchLen(a, b, limit) {
  var l = 0;
  while (l < limit && input[(a + l) % 1024] == input[(b + l) % 1024]) {
    l = l + 1;
  }
  return l;
}

function emit(code) {
  if (outLen < 2048) {
    output[outLen] = code % 65536;
    outLen = outLen + 1;
  }
  return outLen;
}

function deflateBlock(n) {
  outLen = 0;
  for (var i = 0; i < 256; i++) { head[i] = -1; }
  var i = 0;
  while (i < n) {
    var h = hash2(i);
    var cand = head[h];
    head[h] = i;
    var best = 0;
    if (cand >= 0 && cand < i) {
      best = matchLen(cand, i, 16);
    }
    if (best >= 3) {
      emit(32768 + (i - cand) * 32 + best);
      i = i + best;
    } else {
      emit(input[i]);
      i = i + 1;
    }
  }
  var h2 = 1;
  for (var k = 0; k < outLen; k++) {
    h2 = (h2 * 31 + output[k]) % 65521;
  }
  return h2;
}

var result = 0;
for (var block = 0; block < %ITERS%; block++) {
  fillInput(block + 17);
  result = (result + deflateBlock(700)) % 9999991;
}
`

// Package progen generates random, terminating, deterministic nanojs
// programs inside the JIT-able subset, for differential testing: the same
// program must produce the same checksum on the interpreter, on the full
// JIT pipeline, and with any optimization pass disabled.
//
// Generated programs are side-effect-disciplined so that bailout-and-replay
// (the engine's deoptimization model) cannot change results: hot functions
// only write their own locals and perform in-bounds array stores (indexes
// are masked with `% arr.length`), so replaying a call is idempotent.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options bounds the generator.
type Options struct {
	// Funcs is the number of hot functions (default 4).
	Funcs int
	// MaxStmts bounds statements per function body (default 6).
	MaxStmts int
	// Train is how often each function is called (default 60; set it above
	// the engine's Ion threshold).
	Train int

	// HotLoops appends an OSR/deopt exercise section after the base program:
	// phase-flipping helpers (number→undefined and number→boolean returns),
	// hot functions spinning long while loops with direct call-assignments
	// and mid-loop array-length shrinks, and a driver. Every hot-loop random
	// draw happens after the last base draw, so for a given seed the
	// HotLoops program is the HotLoops-off program plus an appended suffix —
	// the base corpus is byte-identical with the option on or off.
	//
	// Hot functions allocate their own arrays (instead of mutating the
	// shared globals) so bailout-and-replay stays idempotent: a replayed
	// call re-creates the array and re-shrinks it at the same iteration.
	// Flipped helper results are consumed only for truthiness (`if (c)`),
	// never as printed or arithmetic booleans.
	HotLoops bool
	// HotIters is the iteration count of each hot while loop (default 600,
	// far above the engine's OSR back-edge threshold so a single call warms
	// the loop up mid-activation).
	HotIters int
	// HotCalls is how often the driver calls each hot function (default 35;
	// keep it above the engine's Ion threshold so call-counting tiers
	// compile the hot functions too, not only back-edge counting).
	HotCalls int
}

func (o Options) withDefaults() Options {
	if o.Funcs <= 0 {
		o.Funcs = 4
	}
	if o.MaxStmts <= 0 {
		o.MaxStmts = 6
	}
	if o.Train <= 0 {
		o.Train = 60
	}
	if o.HotIters <= 0 {
		o.HotIters = 600
	}
	if o.HotCalls <= 0 {
		o.HotCalls = 35
	}
	return o
}

// Generate produces a program for the given seed. Equal seeds yield equal
// programs.
func Generate(seed int64, opts Options) string {
	opts = opts.withDefaults()
	g := &gen{rng: rand.New(rand.NewSource(seed)), opts: opts}
	return g.program()
}

type gen struct {
	rng  *rand.Rand
	opts Options

	// Per-function scope. locals are assignable; loopVars are readable but
	// never assignment targets (so every loop provably terminates).
	locals   []string
	loopVars []string
	arrays   []string // array-typed names in scope (params)
	helpers  []string // shared helper functions (polymorphic call targets)
}

// cmpOps are the comparison operators used in conditions.
var cmpOps = []string{"<", ">", "<=", ">=", "==", "!="}

// readables returns every readable numeric name in scope.
func (g *gen) readables() []string {
	return append(append([]string{}, g.locals...), g.loopVars...)
}

func (g *gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

const (
	numArrays  = 3
	arrayLen   = 16
	loopBoundN = 8
)

func (g *gen) program() string {
	var sb strings.Builder
	// Global arrays, fixed length so masked indexes are always in-bounds.
	for i := 0; i < numArrays; i++ {
		fmt.Fprintf(&sb, "var g%d = new Array(%d);\n", i, arrayLen)
	}
	fmt.Fprintf(&sb, "for (var ii = 0; ii < %d; ii++) {\n", arrayLen)
	for i := 0; i < numArrays; i++ {
		fmt.Fprintf(&sb, "  g%d[ii] = ii * %d + %d;\n", i, g.rng.Intn(7)+1, g.rng.Intn(9))
	}
	sb.WriteString("}\n")

	// Shared numeric helpers. Hot functions call them with both (number,
	// number) and (boolean, number) argument pairs, making the call sites
	// polymorphic: type feedback merges the profiles, and the tiers must
	// still agree on the coerced arithmetic.
	const numHelpers = 2
	for h := 0; h < numHelpers; h++ {
		g.helpers = append(g.helpers, fmt.Sprintf("h%d", h))
		fmt.Fprintf(&sb, "function h%d(u, v) { return (u * %d + v * %d + %d) %% 1000003; }\n",
			h, g.rng.Intn(5)+2, g.rng.Intn(5)+2, g.rng.Intn(50))
	}

	nf := g.opts.Funcs
	for f := 0; f < nf; f++ {
		sb.WriteString(g.function(f))
	}

	// Driver: call every function Train times with varying numeric args.
	sb.WriteString("var result = 0;\n")
	fmt.Fprintf(&sb, "for (var r = 0; r < %d; r++) {\n", g.opts.Train)
	for f := 0; f < nf; f++ {
		fmt.Fprintf(&sb, "  result = (result + f%d(g%d, g%d, r %% 13, r %% 7 + 1)) %% 1000003;\n",
			f, g.rng.Intn(numArrays), g.rng.Intn(numArrays))
	}
	sb.WriteString("}\n")
	if g.opts.HotLoops {
		g.hotSection(&sb)
	}
	return sb.String()
}

// hotSection appends the OSR/deopt exercise corpus: helpers whose return
// type flips mid-loop and hot functions whose single activation runs long
// enough that only a back-edge-counting engine can tier it up mid-loop.
// Appended strictly after every base draw — see Options.HotLoops.
func (g *gen) hotSection(sb *strings.Builder) {
	iters := g.opts.HotIters
	// Flip points land in the second half of the loop: a speculating
	// engine trains on numbers, OSR-enters during the number phase, and
	// hits the guard mid-activation.
	flip0 := iters/2 + g.rng.Intn(iters/4+1)
	flip1 := iters/2 + g.rng.Intn(iters/4+1)
	// hu flips number → undefined (a bare return survives every tier
	// unrenumbered, so the speculation guard always sees the flip).
	fmt.Fprintf(sb, "function hu(p, q) { if (p < %d) { return (q * %d + p) %% 1000003; } return; }\n",
		flip0, g.rng.Intn(5)+2)
	// hb flips number → boolean; callers consume it only for truthiness.
	fmt.Fprintf(sb, "function hb(p, q) { if (p < %d) { return (q + p * %d) %% 1000003; } return p %% 2 == 0; }\n",
		flip1, g.rng.Intn(5)+2)

	for f := 0; f < 2; f++ {
		helper := "hu"
		if f == 1 {
			helper = "hb"
		}
		shrinkAt := iters/2 + g.rng.Intn(iters/4+1)
		shrinkTo := g.rng.Intn(arrayLen/2) + 4 // 4..11, always a real shrink
		initMul := g.rng.Intn(7) + 1
		initAdd := g.rng.Intn(9)
		fmt.Fprintf(sb, "function hot%d(z) {\n", f)
		fmt.Fprintf(sb, "  var a = new Array(%d);\n", arrayLen)
		sb.WriteString("  var ii = 0;\n")
		fmt.Fprintf(sb, "  while (ii < %d) { a[ii] = ii * %d + %d; ii = ii + 1; }\n",
			arrayLen, initMul, initAdd)
		sb.WriteString("  var s = 0;\n  var c = 0;\n  var i0 = 0;\n")
		fmt.Fprintf(sb, "  while (i0 < %d) {\n", iters)
		// Direct call-assignment to a local: the speculation-site shape
		// (mirbuild's specEligible) — upgraded to a guarded call when the
		// profile says number.
		fmt.Fprintf(sb, "    c = %s(i0, z);\n", helper)
		if f == 0 {
			// Truthy c is always a number here (the flip is to undefined,
			// which is falsy), so arithmetic on it inside the branch is safe.
			sb.WriteString("    if (c) { s = (s + c + i0) % 1000003; }\n")
		} else {
			// c may be a boolean after the flip: truthiness only.
			sb.WriteString("    if (c) { s = (s + i0) % 1000003; }\n")
		}
		sb.WriteString("    a[(i0 & 255) % a.length] = (s + i0) % 65536;\n")
		fmt.Fprintf(sb, "    if (i0 == %d) { a.length = %d; }\n", shrinkAt, shrinkTo)
		sb.WriteString("    s = (s + a[(s & 255) % a.length] + a.length) % 1000003;\n")
		sb.WriteString("    i0 = i0 + 1;\n")
		sb.WriteString("  }\n  return s;\n}\n")
	}

	fmt.Fprintf(sb, "for (var hr = 0; hr < %d; hr++) {\n", g.opts.HotCalls)
	sb.WriteString("  result = (result + hot0(hr % 9) + hot1(hr % 7)) % 1000003;\n")
	sb.WriteString("}\n")
}

func (g *gen) function(idx int) string {
	g.locals = []string{"x", "y"}
	g.loopVars = nil
	g.arrays = []string{"a", "b"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "function f%d(a, b, x, y) {\n", idx)
	sb.WriteString("  var acc = 0;\n")
	g.locals = append(g.locals, "acc")
	n := g.rng.Intn(g.opts.MaxStmts) + 2
	for i := 0; i < n; i++ {
		sb.WriteString(g.stmt(1))
	}
	sb.WriteString("  return acc;\n}\n")
	return sb.String()
}

func indent(d int) string { return strings.Repeat("  ", d) }

// stmt emits one random statement at nesting depth d.
func (g *gen) stmt(d int) string {
	if d > 3 {
		return g.assign(d)
	}
	switch g.rng.Intn(10) {
	case 0:
		return g.forLoop(d)
	case 1:
		return g.ifStmt(d)
	case 2:
		return g.arrayStore(d)
	case 3:
		return g.localDecl(d)
	case 4:
		return g.nestedStore(d)
	case 5:
		return g.helperCall(d)
	default:
		return g.assign(d)
	}
}

func (g *gen) localDecl(d int) string {
	name := fmt.Sprintf("t%d", g.rng.Intn(1000))
	for _, l := range g.locals {
		if l == name {
			return g.assign(d)
		}
	}
	s := fmt.Sprintf("%svar %s = %s;\n", indent(d), name, g.expr(0))
	g.locals = append(g.locals, name)
	return s
}

func (g *gen) assign(d int) string {
	target := g.pick(g.locals)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s%s += %s;\n", indent(d), target, g.expr(0))
	case 1:
		return fmt.Sprintf("%s%s = %s;\n", indent(d), target, g.expr(0))
	default:
		return fmt.Sprintf("%sacc = (acc + %s) %% 1000003;\n", indent(d), g.expr(0))
	}
}

func (g *gen) arrayStore(d int) string {
	arr := g.pick(g.arrays)
	return fmt.Sprintf("%s%s[(%s) %% %s.length] = %s %% 65536;\n",
		indent(d), arr, g.absExpr(), arr, g.expr(0))
}

// nestedStore is an element write whose index is computed from an element
// read of another (or the same) array — the load feeds the store address,
// an alias-analysis-hostile shape. Elements may be negative or fractional,
// so the read is forced integral and non-negative before masking.
func (g *gen) nestedStore(d int) string {
	dst := g.pick(g.arrays)
	src := g.pick(g.arrays)
	return fmt.Sprintf("%s%s[(Math.abs(%s[(%s) %% %s.length]) & 255) %% %s.length] = %s %% 65536;\n",
		indent(d), dst, src, g.absExpr(), src, dst, g.expr(0))
}

// helperCall accumulates a shared helper's result; half the sites pass a
// boolean first argument, making the helper's type profile polymorphic.
func (g *gen) helperCall(d int) string {
	h := g.pick(g.helpers)
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%sacc = (acc + %s(%s %s %s, %s)) %% 1000003;\n",
			indent(d), h, g.leaf(), g.pick(cmpOps), g.leaf(), g.leaf())
	}
	return fmt.Sprintf("%sacc = (acc + %s(%s, %s)) %% 1000003;\n",
		indent(d), h, g.leaf(), g.leaf())
}

func (g *gen) forLoop(d int) string {
	iv := fmt.Sprintf("i%d", d)
	bound := g.rng.Intn(loopBoundN) + 2
	save := len(g.loopVars)
	g.loopVars = append(g.loopVars, iv)
	// The loop condition always keeps a `iv < bound`-shaped conjunct, so
	// termination is guaranteed; extra comparison/logical conjuncts can only
	// narrow the iteration space (and may read state the body mutates).
	var cond string
	switch g.rng.Intn(4) {
	case 0:
		cond = fmt.Sprintf("%s <= %d", iv, bound-1)
	case 1:
		cond = fmt.Sprintf("%s < %d && %s", iv, bound, g.boolExpr())
	case 2:
		cond = fmt.Sprintf("%s <= %d && (%s || %s)", iv, bound-1, g.boolExpr(), g.boolExpr())
	default:
		cond = fmt.Sprintf("%s < %d", iv, bound)
	}
	var body strings.Builder
	n := g.rng.Intn(3) + 1
	for i := 0; i < n; i++ {
		body.WriteString(g.stmt(d + 1))
	}
	g.loopVars = g.loopVars[:save]
	return fmt.Sprintf("%sfor (var %s = 0; %s; %s++) {\n%s%s}\n",
		indent(d), iv, cond, iv, body.String(), indent(d))
}

// boolExpr yields a comparison between two numeric expressions.
func (g *gen) boolExpr() string {
	return fmt.Sprintf("%s %s %s", g.expr(1), g.pick(cmpOps), g.expr(1))
}

func (g *gen) ifStmt(d int) string {
	cond := fmt.Sprintf("%s %s %s", g.expr(0), g.pick(cmpOps), g.expr(0))
	var thenB, elseB strings.Builder
	for i := 0; i < g.rng.Intn(2)+1; i++ {
		thenB.WriteString(g.stmt(d + 1))
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%sif (%s) {\n%s%s}\n", indent(d), cond, thenB.String(), indent(d))
	}
	for i := 0; i < g.rng.Intn(2)+1; i++ {
		elseB.WriteString(g.stmt(d + 1))
	}
	return fmt.Sprintf("%sif (%s) {\n%s%s} else {\n%s%s}\n",
		indent(d), cond, thenB.String(), indent(d), elseB.String(), indent(d))
}

// absExpr yields a guaranteed non-negative integral expression (for index
// arithmetic).
func (g *gen) absExpr() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s & 1023", g.pick(g.readables()))
	case 1:
		return fmt.Sprintf("(%s & 255) + %d", g.pick(g.readables()), g.rng.Intn(8))
	default:
		return fmt.Sprint(g.rng.Intn(64))
	}
}

// expr yields a numeric expression of bounded depth.
func (g *gen) expr(depth int) string {
	if depth > 2 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		return g.leaf()
	case 3:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1),
			g.pick([]string{"+", "-", "*"}), g.expr(depth+1))
	case 4:
		// Integer-safe division/modulo with a non-zero constant.
		return fmt.Sprintf("(%s %% %d)", g.expr(depth+1), g.rng.Intn(97)+3)
	case 5:
		return fmt.Sprintf("(%s %s %d)", g.expr(depth+1),
			g.pick([]string{"&", "|", "^", ">>", "<<"}), g.rng.Intn(8))
	case 6:
		arr := g.pick(g.arrays)
		return fmt.Sprintf("%s[(%s) %% %s.length]", arr, g.absExpr(), arr)
	case 7:
		return fmt.Sprintf("Math.%s(%s)",
			g.pick([]string{"abs", "floor", "sqrt"}), g.expr(depth+1))
	case 8:
		return fmt.Sprintf("(%s < %s ? %s : %s)",
			g.leaf(), g.leaf(), g.leaf(), g.leaf())
	default:
		return fmt.Sprintf("%s.length", g.pick(g.arrays))
	}
}

func (g *gen) leaf() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprint(g.rng.Intn(100))
	default:
		return g.pick(g.readables())
	}
}

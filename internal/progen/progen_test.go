package progen

import (
	"math"
	"regexp"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// runCfg executes src and returns the `result` checksum.
func runCfg(t *testing.T, src string, cfg engine.Config) value.Value {
	t.Helper()
	e, err := engine.New(src, cfg)
	if err != nil {
		t.Fatalf("setup: %v\n%s", err, src)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return e.Global("result")
}

func same(a, b value.Value) bool {
	if !a.IsNumber() || !b.IsNumber() {
		return value.StrictEquals(a, b)
	}
	x, y := a.AsNumber(), b.AsNumber()
	return x == y || (math.IsNaN(x) && math.IsNaN(y))
}

// TestGenerateDistribution checks the generator actually emits the
// constructs it advertises, at a usable rate across seeds: compound loop
// conditions (logical operators, <= bounds), element-read-indexed stores,
// and polymorphic helper call sites.
func TestGenerateDistribution(t *testing.T) {
	features := map[string]func(src string) bool{
		"loop-cond-and": func(src string) bool {
			return strings.Contains(src, "&& ")
		},
		"loop-cond-le": func(src string) bool {
			return regexp.MustCompile(`for \(var i\d+ = 0; i\d+ <= `).MatchString(src)
		},
		"nested-store": func(src string) bool {
			return regexp.MustCompile(`\[\(Math\.abs\([ab]\[`).MatchString(src)
		},
		"helper-call": func(src string) bool {
			return regexp.MustCompile(`h[01]\(`).MatchString(src)
		},
		"polymorphic-helper-arg": func(src string) bool {
			return regexp.MustCompile(`h[01]\([^,)]* (<|>|<=|>=|==|!=) `).MatchString(src)
		},
	}
	const seeds = 50
	counts := map[string]int{}
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, Options{})
		for name, present := range features {
			if present(src) {
				counts[name]++
			}
		}
	}
	for name := range features {
		// Every feature must show up in at least a fifth of the programs;
		// a rarer one contributes nothing to differential coverage.
		if counts[name] < seeds/5 {
			t.Errorf("feature %s present in only %d/%d programs", name, counts[name], seeds)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if Generate(42, Options{}) != Generate(42, Options{}) {
		t.Fatal("same seed must generate the same program")
	}
	if Generate(1, Options{}) == Generate(2, Options{}) {
		t.Fatal("different seeds should generate different programs")
	}
}

// TestDifferentialInterpVsJIT fuzzes the whole compilation pipeline: for
// many random programs, the interpreter and the optimizing JIT must agree.
func TestDifferentialInterpVsJIT(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := Generate(seed, Options{Train: 50})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		got := runCfg(t, src, engine.Config{IonThreshold: 15, BaselineThreshold: 5})
		if !same(want, got) {
			t.Fatalf("seed %d: interp=%v jit=%v\n%s", seed, want, got, src)
		}
	}
}

// TestDifferentialEachPassDisabled re-runs random programs with every
// disableable optimization pass switched off, one at a time — the
// correctness property the go/no-go policy depends on: disabling any pass
// must never change results.
func TestDifferentialEachPassDisabled(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var disableable []string
	for _, name := range passes.PassNames() {
		if passes.Disableable(name) {
			disableable = append(disableable, name)
		}
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		src := Generate(seed, Options{Train: 40})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		for _, pass := range disableable {
			e, err := engine.New(src, engine.Config{IonThreshold: 15})
			if err != nil {
				t.Fatal(err)
			}
			e.SetPolicy(forcedPolicy{passes: []string{pass}})
			if _, err := e.Run(); err != nil {
				t.Fatalf("seed %d, %s disabled: %v\n%s", seed, pass, err, src)
			}
			if got := e.Global("result"); !same(want, got) {
				t.Fatalf("seed %d, %s disabled: interp=%v got=%v\n%s", seed, pass, want, got, src)
			}
		}
	}
}

// TestDifferentialAllOptionalPassesDisabled runs with every optional pass
// off at once (the most de-optimized JIT configuration).
func TestDifferentialAllOptionalPassesDisabled(t *testing.T) {
	var disableable []string
	for _, name := range passes.PassNames() {
		if passes.Disableable(name) {
			disableable = append(disableable, name)
		}
	}
	for seed := int64(300); seed < 312; seed++ {
		src := Generate(seed, Options{Train: 40})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		e, err := engine.New(src, engine.Config{IonThreshold: 15})
		if err != nil {
			t.Fatal(err)
		}
		e.SetPolicy(forcedPolicy{passes: disableable})
		if _, err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := e.Global("result"); !same(want, got) {
			t.Fatalf("seed %d: interp=%v got=%v\n%s", seed, want, got, src)
		}
	}
}

// forcedPolicy is an engine.Policy that disables a fixed pass list for
// every compilation (a test harness, not a detector).
type forcedPolicy struct {
	passes []string
}

func (forcedPolicy) Active() bool { return true }

func (p forcedPolicy) BeginCompile(string) (passes.Observer, func() engine.CompileDecision) {
	return nil, func() engine.CompileDecision {
		return engine.CompileDecision{DisabledPasses: p.passes}
	}
}

package progen

import (
	"math"
	"regexp"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// runCfg executes src and returns the `result` checksum.
func runCfg(t *testing.T, src string, cfg engine.Config) value.Value {
	t.Helper()
	e, err := engine.New(src, cfg)
	if err != nil {
		t.Fatalf("setup: %v\n%s", err, src)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return e.Global("result")
}

func same(a, b value.Value) bool {
	if !a.IsNumber() || !b.IsNumber() {
		return value.StrictEquals(a, b)
	}
	x, y := a.AsNumber(), b.AsNumber()
	return x == y || (math.IsNaN(x) && math.IsNaN(y))
}

// TestGenerateDistribution checks the generator actually emits the
// constructs it advertises, at a usable rate across seeds: compound loop
// conditions (logical operators, <= bounds), element-read-indexed stores,
// and polymorphic helper call sites.
func TestGenerateDistribution(t *testing.T) {
	features := map[string]func(src string) bool{
		"loop-cond-and": func(src string) bool {
			return strings.Contains(src, "&& ")
		},
		"loop-cond-le": func(src string) bool {
			return regexp.MustCompile(`for \(var i\d+ = 0; i\d+ <= `).MatchString(src)
		},
		"nested-store": func(src string) bool {
			return regexp.MustCompile(`\[\(Math\.abs\([ab]\[`).MatchString(src)
		},
		"helper-call": func(src string) bool {
			return regexp.MustCompile(`h[01]\(`).MatchString(src)
		},
		"polymorphic-helper-arg": func(src string) bool {
			return regexp.MustCompile(`h[01]\([^,)]* (<|>|<=|>=|==|!=) `).MatchString(src)
		},
	}
	const seeds = 50
	counts := map[string]int{}
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, Options{})
		for name, present := range features {
			if present(src) {
				counts[name]++
			}
		}
	}
	for name := range features {
		// Every feature must show up in at least a fifth of the programs;
		// a rarer one contributes nothing to differential coverage.
		if counts[name] < seeds/5 {
			t.Errorf("feature %s present in only %d/%d programs", name, counts[name], seeds)
		}
	}
}

// TestHotLoopsAppendOnly pins the HotLoops contract: for any seed, the
// base program must be byte-identical with the option on or off — hot-loop
// material is strictly appended. Corpus tests that mix the two option sets
// rely on this to share seeds.
func TestHotLoopsAppendOnly(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		base := Generate(seed, Options{})
		hot := Generate(seed, Options{HotLoops: true})
		if !strings.HasPrefix(hot, base) {
			t.Fatalf("seed %d: HotLoops program does not extend the base program", seed)
		}
		if len(hot) == len(base) {
			t.Fatalf("seed %d: HotLoops appended nothing", seed)
		}
	}
}

// TestHotLoopsDistribution checks every HotLoops program carries the
// OSR/deopt exercise shapes: an undefined-flip helper (bare return), a
// boolean-flip helper consumed only for truthiness, long while loops with
// direct call-assignments, and a mid-loop array-length shrink.
func TestHotLoopsDistribution(t *testing.T) {
	features := map[string]*regexp.Regexp{
		"undefined-flip":    regexp.MustCompile(`function hu\(p, q\) \{ if \(p < \d+\) \{ return [^;]+; \} return; \}`),
		"boolean-flip":      regexp.MustCompile(`function hb\(p, q\) \{ if \(p < \d+\) \{ return [^;]+; \} return p % 2 == 0; \}`),
		"call-assign":       regexp.MustCompile(`c = h[ub]\(i0, z\);`),
		"truthiness-only":   regexp.MustCompile(`if \(c\) \{ s = \(s \+ i0\) % 1000003; \}`),
		"length-shrink":     regexp.MustCompile(`if \(i0 == \d+\) \{ a\.length = \d+; \}`),
		"hot-while":         regexp.MustCompile(`while \(i0 < 600\) \{`),
		"local-array-alloc": regexp.MustCompile(`var a = new Array\(16\);`),
	}
	for seed := int64(0); seed < 30; seed++ {
		src := Generate(seed, Options{HotLoops: true})
		for name, re := range features {
			if !re.MatchString(src) {
				t.Fatalf("seed %d: HotLoops program lacks %s\n%s", seed, name, src)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if Generate(42, Options{}) != Generate(42, Options{}) {
		t.Fatal("same seed must generate the same program")
	}
	if Generate(1, Options{}) == Generate(2, Options{}) {
		t.Fatal("different seeds should generate different programs")
	}
}

// TestDifferentialInterpVsJIT fuzzes the whole compilation pipeline: for
// many random programs, the interpreter and the optimizing JIT must agree.
func TestDifferentialInterpVsJIT(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := Generate(seed, Options{Train: 50})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		got := runCfg(t, src, engine.Config{IonThreshold: 15, BaselineThreshold: 5})
		if !same(want, got) {
			t.Fatalf("seed %d: interp=%v jit=%v\n%s", seed, want, got, src)
		}
	}
}

// TestDifferentialHotLoops runs the hot-loop corpus under the OSR/deopt
// engine against the interpreter, and pins the transition-hit frequency:
// mid-loop tier-up (OSR entries) and guard failures (deopt exits) must
// actually fire across the corpus, or the generated programs exercise
// nothing. This is the distribution test the OSR difftest cells rely on.
func TestDifferentialHotLoops(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	osrRuns, deoptRuns := 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := Generate(seed, Options{HotLoops: true})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		e, err := engine.New(src, engine.Config{
			IonThreshold: 15, BaselineThreshold: 5, OSR: true, Speculate: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if got := e.Global("result"); !same(want, got) {
			t.Fatalf("seed %d: interp=%v osr=%v\n%s", seed, want, got, src)
		}
		st := e.Stats()
		if st.OSREntries > 0 {
			osrRuns++
		}
		if st.DeoptExits > 0 {
			deoptRuns++
		}
	}
	// Every hot-loop program runs two ~600-iteration loops from a single
	// warm call, so mid-loop entry should be the norm, and the undefined
	// flip guarantees at least one guard failure per speculated program.
	if osrRuns < seeds*3/4 {
		t.Errorf("OSR entries fired in only %d/%d hot-loop runs", osrRuns, seeds)
	}
	if deoptRuns < seeds/2 {
		t.Errorf("deopt exits fired in only %d/%d hot-loop runs", deoptRuns, seeds)
	}
}

// TestDifferentialEachPassDisabled re-runs random programs with every
// disableable optimization pass switched off, one at a time — the
// correctness property the go/no-go policy depends on: disabling any pass
// must never change results.
func TestDifferentialEachPassDisabled(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var disableable []string
	for _, name := range passes.PassNames() {
		if passes.Disableable(name) {
			disableable = append(disableable, name)
		}
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		src := Generate(seed, Options{Train: 40})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		for _, pass := range disableable {
			e, err := engine.New(src, engine.Config{IonThreshold: 15})
			if err != nil {
				t.Fatal(err)
			}
			e.SetPolicy(forcedPolicy{passes: []string{pass}})
			if _, err := e.Run(); err != nil {
				t.Fatalf("seed %d, %s disabled: %v\n%s", seed, pass, err, src)
			}
			if got := e.Global("result"); !same(want, got) {
				t.Fatalf("seed %d, %s disabled: interp=%v got=%v\n%s", seed, pass, want, got, src)
			}
		}
	}
}

// TestDifferentialAllOptionalPassesDisabled runs with every optional pass
// off at once (the most de-optimized JIT configuration).
func TestDifferentialAllOptionalPassesDisabled(t *testing.T) {
	var disableable []string
	for _, name := range passes.PassNames() {
		if passes.Disableable(name) {
			disableable = append(disableable, name)
		}
	}
	for seed := int64(300); seed < 312; seed++ {
		src := Generate(seed, Options{Train: 40})
		want := runCfg(t, src, engine.Config{DisableJIT: true})
		e, err := engine.New(src, engine.Config{IonThreshold: 15})
		if err != nil {
			t.Fatal(err)
		}
		e.SetPolicy(forcedPolicy{passes: disableable})
		if _, err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := e.Global("result"); !same(want, got) {
			t.Fatalf("seed %d: interp=%v got=%v\n%s", seed, want, got, src)
		}
	}
}

// forcedPolicy is an engine.Policy that disables a fixed pass list for
// every compilation (a test harness, not a detector).
type forcedPolicy struct {
	passes []string
}

func (forcedPolicy) Active() bool { return true }

func (p forcedPolicy) BeginCompile(string) (passes.Observer, func() engine.CompileDecision) {
	return nil, func() engine.CompileDecision {
		return engine.CompileDecision{DisabledPasses: p.passes}
	}
}

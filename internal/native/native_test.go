package native

import (
	"errors"
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// stubHooks is a minimal Hooks implementation for direct Exec tests.
type stubHooks struct {
	arena   *heap.Arena
	globals []value.Value
	callFn  func(idx int, args []value.Value) (value.Value, error)
}

func (s *stubHooks) Arena() *heap.Arena                { return s.arena }
func (s *stubHooks) GlobalGet(slot int) value.Value    { return s.globals[slot] }
func (s *stubHooks) GlobalSet(slot int, v value.Value) { s.globals[slot] = v }
func (s *stubHooks) Random() float64                   { return 0.5 }
func (s *stubHooks) CallFunction(idx int, args []value.Value) (value.Value, error) {
	if s.callFn != nil {
		return s.callFn(idx, args)
	}
	return value.Num(42), nil
}

func newStub() *stubHooks {
	return &stubHooks{arena: heap.New(1 << 10), globals: make([]value.Value, 8)}
}

func exec(t *testing.T, code *lir.Code, args []value.Value, h Hooks) Result {
	t.Helper()
	res, status, err := Exec(code, args, h, 0, nil)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if status != StatusOK {
		t.Fatalf("unexpected bail")
	}
	return res
}

func TestArithmetic(t *testing.T) {
	code := &lir.Code{
		Name: "arith", NumParams: 2, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KMul, Dst: 4, A: 2, B: 3},
			{Kind: lir.KConst, Dst: 5, Imm: 1},
			{Kind: lir.KAdd, Dst: 4, A: 4, B: 5},
			{Kind: lir.KRetNum, A: 4},
		},
	}
	res := exec(t, code, []value.Value{value.Num(6), value.Num(7)}, newStub())
	if res.Kind != ResNum || res.Val != 43 {
		t.Fatalf("res = %+v, want 43", res)
	}
	if res.Steps != 6 {
		t.Fatalf("steps = %d, want 6", res.Steps)
	}
}

func TestUnboxBailsOnWrongTag(t *testing.T) {
	code := &lir.Code{
		Name: "guard", NumParams: 1, NumRegs: 2,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1}, // expect object
			{Kind: lir.KRetNum, A: 1},
		},
	}
	_, status, err := Exec(code, []value.Value{value.Num(3)}, newStub(), 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("want bail, got status=%v err=%v", status, err)
	}
}

func TestBoundsCheckBailsAndPasses(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(4)
	code := &lir.Code{
		Name: "bc", NumParams: 2, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KElemsHandle, Dst: 3, A: 2},
			{Kind: lir.KInitLen, Dst: 4, A: 3},
			{Kind: lir.KUnbox, Dst: 5, A: 1},
			{Kind: lir.KBoundsCheck, A: 5, B: 4},
			{Kind: lir.KLoadElem, Dst: 5, A: 3, B: 5},
			{Kind: lir.KRetNum, A: 5},
		},
	}
	h.arena.Set(arr, 2, 77)
	res := exec(t, code, []value.Value{value.ArrayRef(arr), value.Num(2)}, h)
	if res.Val != 77 {
		t.Fatalf("load = %v", res.Val)
	}
	_, status, _ := Exec(code, []value.Value{value.ArrayRef(arr), value.Num(9)}, h, 0, nil)
	if status != StatusBail {
		t.Fatal("OOB index must bail")
	}
	_, status, _ = Exec(code, []value.Value{value.ArrayRef(arr), value.Num(1.5)}, h, 0, nil)
	if status != StatusBail {
		t.Fatal("non-integer index must bail")
	}
}

func TestRawStoreWithoutCheckCorrupts(t *testing.T) {
	// The exploit path: no KBoundsCheck before the raw store.
	h := newStub()
	a, _ := h.arena.Alloc(4)
	b, _ := h.arena.Alloc(4)
	code := &lir.Code{
		Name: "raw", NumParams: 2, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KElemsHandle, Dst: 3, A: 2},
			{Kind: lir.KUnbox, Dst: 4, A: 1},
			{Kind: lir.KConst, Dst: 5, Imm: 999},
			{Kind: lir.KStoreElem, A: 3, B: 4, C: 5},
			{Kind: lir.KRetUndef},
		},
	}
	exec(t, code, []value.Value{value.ArrayRef(a), value.Num(4)}, h)
	if n, _ := h.arena.Length(b); n != 999 {
		t.Fatalf("neighbour length = %d, want corrupted 999", n)
	}
}

func TestRawAccessUnmappedCrashes(t *testing.T) {
	h := newStub()
	a, _ := h.arena.Alloc(4)
	code := &lir.Code{
		Name: "crash", NumParams: 2, NumRegs: 5,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KElemsHandle, Dst: 3, A: 2},
			{Kind: lir.KUnbox, Dst: 4, A: 1},
			{Kind: lir.KLoadElem, Dst: 4, A: 3, B: 4},
			{Kind: lir.KRetNum, A: 4},
		},
	}
	_, _, err := Exec(code, []value.Value{value.ArrayRef(a), value.Num(900)}, h, 0, nil)
	var crash *heap.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want CrashError, got %v", err)
	}
}

func TestElemsRawTypeConfusion(t *testing.T) {
	h := newStub()
	a, _ := h.arena.Alloc(4)
	code := &lir.Code{
		Name: "confused", NumParams: 1, NumRegs: 3,
		Ops: []lir.Op{
			// No unbox: the raw param is consumed as an object reference.
			{Kind: lir.KElemsRaw, Dst: 1, A: 0},
			{Kind: lir.KInitLen, Dst: 2, A: 1},
			{Kind: lir.KRetNum, A: 2},
		},
	}
	// A genuine array reference still works (bits are the reference).
	res := exec(t, code, []value.Value{value.ArrayRef(a)}, h)
	if res.Val != 4 {
		t.Fatalf("confused-but-valid length = %v", res.Val)
	}
	// An attacker number is a wild pointer.
	_, _, err := Exec(code, []value.Value{value.Num(123456789.5)}, h, 0, nil)
	var crash *heap.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want CrashError, got %v", err)
	}
}

func TestBranchAndLoop(t *testing.T) {
	// sum 0..4 via a backward branch.
	code := &lir.Code{
		Name: "loop", NumParams: 0, NumRegs: 4,
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 0, Imm: 0}, // i
			{Kind: lir.KConst, Dst: 1, Imm: 0}, // s
			{Kind: lir.KConst, Dst: 2, Imm: 5},
			// 3: loop
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 0},
			{Kind: lir.KConst, Dst: 3, Imm: 1},
			{Kind: lir.KAdd, Dst: 0, A: 0, B: 3},
			{Kind: lir.KCmp, Dst: 3, A: 0, B: 2, Aux: 1}, // i < 5
			{Kind: lir.KBranchFalse, A: 3, Target: 9},
			{Kind: lir.KJump, Target: 3},
			{Kind: lir.KRetNum, A: 1},
		},
	}
	res := exec(t, code, nil, newStub())
	if res.Val != 10 {
		t.Fatalf("sum = %v, want 10", res.Val)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	code := &lir.Code{
		Name: "spin", NumRegs: 1,
		Ops: []lir.Op{
			{Kind: lir.KJump, Target: 0},
		},
	}
	_, _, err := Exec(code, nil, newStub(), 1000, nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	h := newStub()
	var gotArgs []value.Value
	h.callFn = func(idx int, args []value.Value) (value.Value, error) {
		gotArgs = append([]value.Value(nil), args...)
		return value.Num(args[0].AsNumber() + args[1].AsNumber()), nil
	}
	code := &lir.Code{
		Name: "call", NumParams: 2, NumRegs: 5,
		ArgLists: [][]int32{{2, 3}},
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KCall, Dst: 4, A: 0, B: 0, Aux: 7},
			{Kind: lir.KRetNum, A: 4},
		},
	}
	var pool Pool
	res, status, err := Exec(code, []value.Value{value.Num(2), value.Num(3)}, h, 0, &pool)
	if err != nil || status != StatusOK || res.Val != 5 {
		t.Fatalf("call: res=%v status=%v err=%v", res, status, err)
	}
	if len(gotArgs) != 2 || gotArgs[0].AsNumber() != 2 {
		t.Fatalf("args = %v", gotArgs)
	}
}

func TestCallResultKindMismatchBails(t *testing.T) {
	h := newStub()
	h.callFn = func(int, []value.Value) (value.Value, error) {
		return value.Str("oops"), nil
	}
	code := &lir.Code{
		Name: "badcall", NumRegs: 1,
		ArgLists: [][]int32{{}},
		Ops: []lir.Op{
			{Kind: lir.KCall, Dst: 0, A: 0, B: 0, Aux: 1},
			{Kind: lir.KRetNum, A: 0},
		},
	}
	_, status, err := Exec(code, nil, h, 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("want bail on string result, got status=%v err=%v", status, err)
	}
}

func TestGlobalsAndMath(t *testing.T) {
	h := newStub()
	h.globals[2] = value.Num(9)
	code := &lir.Code{
		Name: "globals", NumRegs: 3,
		Ops: []lir.Op{
			{Kind: lir.KLoadGlobal, Dst: 0, Aux: 2},
			{Kind: lir.KGuardType, Dst: 1, A: 0},
			{Kind: lir.KMath, Dst: 2, A: 1, Aux: int32(mathSqrtID())},
			{Kind: lir.KStoreGlobalNum, A: 2, Aux: 3},
			{Kind: lir.KRetNum, A: 2},
		},
	}
	res := exec(t, code, nil, h)
	if res.Val != 3 {
		t.Fatalf("sqrt(9) = %v", res.Val)
	}
	if h.globals[3].AsNumber() != 3 {
		t.Fatalf("global store = %v", h.globals[3])
	}
}

func TestPopEmptyBails(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(0)
	code := &lir.Code{
		Name: "pop", NumParams: 1, NumRegs: 3,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1},
			{Kind: lir.KPop, Dst: 2, A: 1},
			{Kind: lir.KRetNum, A: 2},
		},
	}
	_, status, err := Exec(code, []value.Value{value.ArrayRef(arr)}, h, 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("pop of empty array must bail: status=%v err=%v", status, err)
	}
}

func TestResultValueBoxing(t *testing.T) {
	if v := (Result{Kind: ResNum, Val: 3}).Value(); !v.IsNumber() || v.AsNumber() != 3 {
		t.Error("num boxing")
	}
	if v := (Result{Kind: ResObject, Val: 7}).Value(); !v.IsArray() || v.Handle() != 7 {
		t.Error("object boxing")
	}
	if v := (Result{Kind: ResUndef}).Value(); !v.IsUndefined() {
		t.Error("undef boxing")
	}
	if !math.IsNaN((Result{Kind: ResNum, Val: math.NaN()}).Value().AsNumber()) {
		t.Error("NaN result")
	}
}

func TestPoolReuse(t *testing.T) {
	var p Pool
	f1, t1 := p.getRegs(8)
	p.putRegs(f1, t1)
	f2, _ := p.getRegs(4)
	if cap(f2) < 8 {
		t.Fatal("pool did not reuse the larger frame")
	}
}

func mathSqrtID() int { return int(bytecode.BMathSqrt) }

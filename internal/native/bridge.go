// The sub-LIR tier bridge: the exported surface a lower tier (the
// machine-code backend in internal/mc) uses to stay bit-identical with
// this package's executors. The contract is delegation: whenever native
// code reaches a rare path — budget within reach, guard about to fail,
// unmapped access, an op it does not compile — it exits with the current
// LIR pc and step count and Resume finishes the activation in the unfused
// reference loop over the same register file. Because the reference loop
// IS the semantics, every delegated path is correct by construction.
package native

import (
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// Resume continues an activation in the unfused reference loop at pc with
// steps already charged, over a register file the caller has been
// mutating. It is exactly the delegation the fused tier performs at its
// block-level budget checks; Result.Checks is NOT accumulated here — the
// caller merges its own check count, as execFused does.
func Resume(code *lir.Code, regs []float64, tags []Tag, h Hooks, maxOps int64, pool *Pool, pc int, steps int64) (Result, Status, error) {
	return execSwitch(code, regs, tags, h, maxOps, pool, pc, steps)
}

// BoxParams exposes parameter boxing so a lower tier's entry sequence
// populates the register file identically.
func BoxParams(code *lir.Code, args []value.Value, regs []float64, tags []Tag) {
	boxParams(code, args, regs, tags)
}

// BuildDeopt exposes deopt-frame reconstruction for a lower tier's
// KCallSpec guard exits.
func BuildDeopt(code *lir.Code, exitIdx int32, regs []float64, result value.Value) *DeoptState {
	return buildDeopt(code, exitIdx, regs, result)
}

// MathFunc exposes the KMath builtin dispatch (including the hook-backed
// deterministic RNG).
func MathFunc(b bytecode.Builtin, a, c float64, h Hooks) float64 {
	return mathFunc(b, a, c, h)
}

// GetRegs leases a register file of n slots from the pool (contents are
// NOT zeroed, same as every internal lease).
func (p *Pool) GetRegs(n int) ([]float64, []Tag) { return p.getRegs(n) }

// PutRegs returns a leased register file.
func (p *Pool) PutRegs(f []float64, t []Tag) { p.putRegs(f, t) }

// AllocArgs reserves n slots in the pool's LIFO call-argument arena,
// returning the release mark and the slice to fill. With a nil pool the
// mark is -1 and the slice is freshly allocated (ReleaseArgs ignores -1),
// mirroring the executors' own KCall paths.
func (p *Pool) AllocArgs(n int) (int, []value.Value) {
	if p == nil {
		return -1, make([]value.Value, n)
	}
	base := len(p.args)
	for i := 0; i < n; i++ {
		p.args = append(p.args, value.Value{})
	}
	return base, p.args[base : base+n]
}

// ReleaseArgs pops an AllocArgs reservation.
func (p *Pool) ReleaseArgs(mark int) {
	if p != nil && mark >= 0 {
		p.args = p.args[:mark]
	}
}

// MaterializeOSR populates a register file for an OSR entry exactly as
// ExecOSR does: zero the (recycled, unzeroed) frame, strictly materialize
// the frame-map slots (a number slot accepts exactly a Number, a boolean
// slot exactly a Boolean, an object slot exactly an Array), rematerialize
// hoisted constants, and re-derive preheader-cached elems/length values in
// dependency order. ok=false refuses the transfer; nothing has run and the
// register file contents are unspecified. On success pc is the loop-header
// op index to enter at.
func MaterializeOSR(code *lir.Code, entryIdx int, locals []value.Value, arena *heap.Arena, regs []float64, tags []Tag) (int32, bool) {
	if entryIdx < 0 || entryIdx >= len(code.OSREntries) {
		return 0, false
	}
	e := &code.OSREntries[entryIdx]
	if !e.Eligible {
		return 0, false
	}
	for i := range regs {
		regs[i], tags[i] = 0, TagOther
	}
	for _, s := range e.Slots {
		var v value.Value
		if int(s.Slot) < len(locals) {
			v = locals[s.Slot]
		}
		switch s.Kind {
		case lir.SlotNum:
			if v.Type() != value.Number {
				return 0, false
			}
			regs[s.Reg], tags[s.Reg] = v.AsNumber(), TagNumber
		case lir.SlotBool:
			if v.Type() != value.Boolean {
				return 0, false
			}
			regs[s.Reg], tags[s.Reg] = v.AsNumber(), TagBoolean
		case lir.SlotObj:
			if !v.IsArray() {
				return 0, false
			}
			regs[s.Reg], tags[s.Reg] = float64(v.Handle()), TagObject
		default:
			return 0, false
		}
	}
	for _, cs := range e.Consts {
		regs[cs.Reg], tags[cs.Reg] = cs.Imm, TagNumber
	}
	for _, ro := range e.Remats {
		switch ro.Kind {
		case lir.RematElems:
			elems, ok := arena.Elems(int32(regs[ro.Src]))
			if !ok {
				return 0, false
			}
			regs[ro.Reg] = float64(elems)
		case lir.RematLen:
			v, crash := arena.LengthAt(int(regs[ro.Src]))
			if crash != nil {
				return 0, false
			}
			regs[ro.Reg] = v
		default:
			return 0, false
		}
	}
	return e.PC, true
}

package native

import (
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// osrLoopCode is the canonical OSR target: `while (i < n) { acc += i*7;
// i += 1 }` with the stride constant hoisted above the header (the GVN
// shape), so its register is live across the loop without any interpreter
// local backing it — the entry's Consts table must rematerialize it.
func osrLoopCode() *lir.Code {
	// r0 = n (param), r1 = i, r2 = acc, r3 = cmp, r4 = temp, r5 = stride
	return &lir.Code{
		Name: "osrloop", NumParams: 1, NumRegs: 8,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},             // 0
			{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
			{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: acc = 0
			{Kind: lir.KConst, Dst: 5, Imm: 7},           // 3: hoisted stride
			{Kind: lir.KOSRPoint, Aux: 0},                // 4: header marker
			{Kind: lir.KCmp, Dst: 3, A: 1, B: 0, Aux: 1}, // 5: i < n
			{Kind: lir.KBranchFalse, A: 3, Target: 12},   // 6: exit
			{Kind: lir.KMul, Dst: 4, A: 1, B: 5},         // 7: i*7
			{Kind: lir.KAdd, Dst: 2, A: 2, B: 4},         // 8: acc += i*7
			{Kind: lir.KConst, Dst: 4, Imm: 1},           // 9
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 4},         // 10: i = i + 1
			{Kind: lir.KJump, Target: 4},                 // 11: back edge
			{Kind: lir.KRetNum, A: 2},                    // 12
		},
		OSREntries: []lir.OSREntry{{
			Ordinal: 0, PC: 4,
			Slots: []lir.FrameSlot{
				{Slot: 0, Reg: 0, Kind: lir.SlotNum},
				{Slot: 1, Reg: 1, Kind: lir.SlotNum},
				{Slot: 2, Reg: 2, Kind: lir.SlotNum},
			},
			Consts:   []lir.ConstSlot{{Reg: 5, Imm: 7}},
			Eligible: true,
		}},
	}
}

// osrSum is the loop's remainder from state (n, i, acc): acc + 7*Σ i..n-1.
func osrSum(n, i, acc float64) float64 {
	for ; i < n; i++ {
		acc += i * 7
	}
	return acc
}

// execOSRBoth performs the same mid-loop transfer through the fused and the
// unfused executor and asserts bit-identical outcomes — result, Steps,
// status, error, entered flag, and the reconstructed deopt frame.
func execOSRBoth(t *testing.T, code *lir.Code, entry int, locals []value.Value, maxOps int64) (Result, Status, error, bool) {
	t.Helper()
	return execOSRBothWith(t, code, entry, locals, maxOps, nil)
}

// execOSRBothWith is execOSRBoth with a pre-transfer heap setup (array
// programs need the handle the interpreter frame carries to exist in the
// stub arena), applied identically to both executors' environments.
func execOSRBothWith(t *testing.T, code *lir.Code, entry int, locals []value.Value, maxOps int64, setup func(h *stubHooks)) (Result, Status, error, bool) {
	t.Helper()
	if code.Fused == nil {
		code.Fused = lir.Fuse(code)
	}
	hu, hf := newStub(), newStub()
	if setup != nil {
		setup(hu)
		setup(hf)
	}
	ru, su, eu, ou := ExecOSR(code, entry, locals, hu, maxOps, nil, true)
	rf, sf, ef, of := ExecOSR(code, entry, locals, hf, maxOps, nil, false)
	if ou != of {
		t.Fatalf("entered flag diverged (maxOps=%d): unfused %v fused %v", maxOps, ou, of)
	}
	if !resEq(ru, rf) || su != sf || !errEq(eu, ef) {
		t.Fatalf("OSR fused/unfused diverged (maxOps=%d):\nunfused (%+v, %v, %v)\nfused   (%+v, %v, %v)",
			maxOps, ru, su, eu, rf, sf, ef)
	}
	if !reflect.DeepEqual(ru.Deopt, rf.Deopt) {
		t.Fatalf("OSR deopt state diverged (maxOps=%d): unfused %+v fused %+v", maxOps, ru.Deopt, rf.Deopt)
	}
	return rf, sf, ef, of
}

// TestExecOSREntersMidLoop: a transfer from interpreter state (i=4, acc=100)
// must produce exactly the loop's remainder, identically fused and unfused,
// and the normal call-boundary entry must be unaffected by the side tables.
func TestExecOSREntersMidLoop(t *testing.T) {
	code := osrLoopCode()
	locals := []value.Value{value.Num(10), value.Num(4), value.Num(100)}
	res, status, err, entered := execOSRBoth(t, code, 0, locals, 0)
	if !entered || err != nil || status != StatusOK {
		t.Fatalf("entered=%v status=%v err=%v", entered, status, err)
	}
	if want := osrSum(10, 4, 100); res.Val != want {
		t.Fatalf("OSR result = %v, want %v", res.Val, want)
	}
	// Call-boundary entry through the same code object.
	full, status, err := runBoth(t, code, []value.Value{value.Num(10)}, 0, nil)
	if err != nil || status != StatusOK {
		t.Fatalf("normal entry: %v %v", status, err)
	}
	if want := osrSum(10, 0, 0); full.Val != want {
		t.Fatalf("normal entry result = %v, want %v", full.Val, want)
	}
}

// TestExecOSRBudgetSweep is the budget-exactness proof across the OSR entry
// boundary: for every budget from 1 to beyond the remainder's step count,
// the fused transfer must return the same result/status/error *and the same
// Result.Steps* as the unfused one — including the BudgetError cut-off.
func TestExecOSRBudgetSweep(t *testing.T) {
	code := osrLoopCode()
	code.Fused = lir.Fuse(code)
	locals := []value.Value{value.Num(9), value.Num(3), value.Num(50)}
	full, status, err, entered := ExecOSR(code, 0, locals, newStub(), 0, nil, true)
	if !entered || err != nil || status != StatusOK {
		t.Fatalf("entered=%v status=%v err=%v", entered, status, err)
	}
	for max := int64(1); max <= full.Steps+2; max++ {
		execOSRBoth(t, code, 0, locals, max)
	}
}

// TestDelegationOntoOSREntry pins the entry-check delegation contract the
// threaded.go comment states: when the straight-line cost at the OSR
// entry's fused index already exceeds the budget, execFusedFrom delegates
// onto the KOSRPoint marker itself. That is only safe because the frame was
// materialized exactly once (on the shared register file, before dispatch)
// and the marker is a zero-step nop in both executors — so the sweep must
// observe bit-identical results, Steps, and BudgetError timing, with no
// sign of a re-materialized frame.
func TestDelegationOntoOSREntry(t *testing.T) {
	code := osrLoopCode()
	code.Fused = lir.Fuse(code)
	e := &code.OSREntries[0]
	fi := fusedIdxForPC(code.Fused, e.PC)
	if fi < 0 {
		t.Fatalf("OSR marker at pc %d is not a fused-op leader", e.PC)
	}
	// The delegation target of the entry check IS the marker's source pc.
	if code.Fused.SrcPC[fi] != e.PC {
		t.Fatalf("fused op %d maps to source pc %d, want the marker at %d", fi, code.Fused.SrcPC[fi], e.PC)
	}
	entryCost := int64(code.Fused.Cost[fi])
	if entryCost <= 1 {
		t.Fatalf("entry cost %d cannot force the entry check to delegate", entryCost)
	}
	locals := []value.Value{value.Num(11), value.Num(2), value.Num(1)}
	full, _, err, entered := ExecOSR(code, 0, locals, newStub(), 0, nil, true)
	if !entered || err != nil {
		t.Fatalf("entered=%v err=%v", entered, err)
	}
	delegated := 0
	for max := int64(1); max <= full.Steps+2; max++ {
		if max < entryCost {
			// This budget takes the entry-check path: the fused executor
			// delegates onto the marker before dispatching a single op.
			delegated++
		}
		execOSRBoth(t, code, 0, locals, max)
	}
	if delegated == 0 {
		t.Fatal("no budget in the sweep exercised entry-check delegation onto the marker")
	}
}

// TestExecOSRConstRematerialization proves the Consts table is load-bearing:
// stripping it (while leaving the entry eligible) silently zeroes the
// hoisted stride, so the transfer computes the wrong remainder. The frame
// map alone cannot carry loop-invariant constants.
func TestExecOSRConstRematerialization(t *testing.T) {
	code := osrLoopCode()
	locals := []value.Value{value.Num(8), value.Num(2), value.Num(30)}
	res, _, err, entered := execOSRBoth(t, code, 0, locals, 0)
	if !entered || err != nil {
		t.Fatalf("entered=%v err=%v", entered, err)
	}
	if want := osrSum(8, 2, 30); res.Val != want {
		t.Fatalf("with Consts: %v, want %v", res.Val, want)
	}
	stripped := osrLoopCode()
	stripped.OSREntries[0].Consts = nil
	sres, _, serr, sentered := execOSRBoth(t, stripped, 0, locals, 0)
	if !sentered || serr != nil {
		t.Fatalf("entered=%v err=%v", sentered, serr)
	}
	// Stride register zeroed by the fresh frame: every iteration adds 0.
	if sres.Val != 30 {
		t.Fatalf("without Consts: %v, want the untouched acc 30", sres.Val)
	}
}

// TestExecOSRRefusals: every refusal path must return entered=false with a
// zero result and no side effects — out-of-range entry, ineligible entry,
// and each strict-materialization mismatch (the frame map's static kinds
// are trusted over runtime tags, so a mismatch refuses rather than
// renumbers).
func TestExecOSRRefusals(t *testing.T) {
	code := osrLoopCode()
	code.Fused = lir.Fuse(code)
	good := []value.Value{value.Num(10), value.Num(4), value.Num(100)}
	cases := []struct {
		name   string
		entry  int
		locals []value.Value
		mutate func(c *lir.Code)
	}{
		{name: "entry-negative", entry: -1, locals: good},
		{name: "entry-out-of-range", entry: 99, locals: good},
		{name: "ineligible", entry: 0, locals: good,
			mutate: func(c *lir.Code) { c.OSREntries[0].Eligible = false }},
		{name: "bool-in-num-slot", entry: 0,
			locals: []value.Value{value.Num(10), value.Bool(true), value.Num(100)}},
		{name: "undefined-local", entry: 0,
			locals: []value.Value{value.Num(10), value.Undef(), value.Num(100)}},
		{name: "missing-local", entry: 0,
			locals: []value.Value{value.Num(10)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := code
			if tc.mutate != nil {
				c = osrLoopCode()
				c.Fused = lir.Fuse(c)
				tc.mutate(c)
			}
			for _, unfused := range []bool{true, false} {
				res, status, err, entered := ExecOSR(c, tc.entry, tc.locals, newStub(), 0, nil, unfused)
				if entered {
					t.Fatalf("unfused=%v: transfer was accepted", unfused)
				}
				if status != StatusOK || err != nil || res != (Result{}) {
					t.Fatalf("unfused=%v: refused entry leaked state: (%+v, %v, %v)", unfused, res, status, err)
				}
			}
		})
	}
}

// specCallCode is the deopt target: a straight line through a KCallSpec
// whose return-type guard rebuilds interpreter locals 0..2 from the frame
// map on failure.
func specCallCode() *lir.Code {
	return &lir.Code{
		Name: "spec", NumParams: 1, NumRegs: 6,
		ArgLists: [][]int32{{0}},
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},                             // 0
			{Kind: lir.KConst, Dst: 1, Imm: 5},                           // 1
			{Kind: lir.KCallSpec, Dst: 2, A: 0, B: 0, Aux: 7, Target: 0}, // 2
			{Kind: lir.KAdd, Dst: 3, A: 2, B: 1},                         // 3
			{Kind: lir.KRetNum, A: 3},                                    // 4
		},
		DeoptExits: []lir.DeoptExit{{
			Ordinal: 0, ResultSlot: 2,
			Slots: []lir.FrameSlot{
				{Slot: 0, Reg: 0, Kind: lir.SlotNum},
				{Slot: 1, Reg: 1, Kind: lir.SlotNum},
			},
		}},
	}
}

// runBothDeopt is runBoth plus deopt-frame equality: the reconstructed
// interpreter locals must match value-for-value between executors.
func runBothDeopt(t *testing.T, code *lir.Code, args []value.Value, maxOps int64, setup func(h *stubHooks)) (Result, Status, error) {
	t.Helper()
	if code.Fused == nil {
		code.Fused = lir.Fuse(code)
	}
	hu, hf := newStub(), newStub()
	if setup != nil {
		setup(hu)
		setup(hf)
	}
	ru, su, eu := ExecUnfused(code, args, hu, maxOps, nil)
	rf, sf, ef := Exec(code, args, hf, maxOps, nil)
	if !resEq(ru, rf) || su != sf || !errEq(eu, ef) {
		t.Fatalf("fused/unfused diverged (maxOps=%d):\nunfused (%+v, %v, %v)\nfused   (%+v, %v, %v)",
			maxOps, ru, su, eu, rf, sf, ef)
	}
	if !reflect.DeepEqual(ru.Deopt, rf.Deopt) {
		t.Fatalf("deopt state diverged (maxOps=%d): unfused %+v fused %+v", maxOps, ru.Deopt, rf.Deopt)
	}
	return rf, sf, ef
}

// TestDeoptExitFusedUnfused covers the guard's three outcomes — pass,
// deopt with an exactly-boxed result, orphan-guard bail — identically in
// both executors.
func TestDeoptExitFusedUnfused(t *testing.T) {
	numCallee := func(h *stubHooks) {
		h.callFn = func(_ int, args []value.Value) (value.Value, error) {
			return value.Num(args[0].AsNumber() * 2), nil
		}
	}
	code := specCallCode()
	res, status, err := runBothDeopt(t, code, []value.Value{value.Num(20)}, 0, numCallee)
	if err != nil || status != StatusOK || res.Val != 45 {
		t.Fatalf("number path: (%+v, %v, %v), want 45", res, status, err)
	}

	// A boolean return fails the strict guard: the deopt frame must carry
	// the raw callee result (no coercion) plus the mapped locals.
	boolCallee := func(h *stubHooks) {
		h.callFn = func(int, []value.Value) (value.Value, error) { return value.Bool(true), nil }
	}
	res, status, err = runBothDeopt(t, code, []value.Value{value.Num(20)}, 0, boolCallee)
	if err != nil || status != StatusDeopt {
		t.Fatalf("boolean path: status=%v err=%v, want deopt", status, err)
	}
	want := &DeoptState{Exit: 0, Locals: []value.Value{value.Num(20), value.Num(5), value.Bool(true)}}
	if !reflect.DeepEqual(res.Deopt, want) {
		t.Fatalf("deopt frame = %+v, want %+v", res.Deopt, want)
	}
	if res.Steps != 3 {
		t.Fatalf("deopt steps = %d, want 3 (unbox+const+callspec)", res.Steps)
	}

	// An undefined return deopts too, passing undefined through raw.
	undefCallee := func(h *stubHooks) {
		h.callFn = func(int, []value.Value) (value.Value, error) { return value.Undef(), nil }
	}
	res, status, err = runBothDeopt(t, code, []value.Value{value.Num(20)}, 0, undefCallee)
	if err != nil || status != StatusDeopt {
		t.Fatalf("undefined path: status=%v err=%v, want deopt", status, err)
	}
	if !res.Deopt.Locals[2].IsUndefined() {
		t.Fatalf("deopt frame result = %v, want undefined passed through raw", res.Deopt.Locals[2])
	}

	// An orphan guard (no deopt exit) degrades to a bail in both executors.
	orphan := specCallCode()
	orphan.Ops[2].Target = -1
	orphan.DeoptExits = nil
	_, status, err = runBothDeopt(t, orphan, []value.Value{value.Num(20)}, 0, boolCallee)
	if err != nil || status != StatusBail {
		t.Fatalf("orphan guard: status=%v err=%v, want bail", status, err)
	}
}

// TestDeoptBudgetSweep sweeps every budget across the deopt boundary: the
// cut-off must land on the same op with the same Steps whether the fused
// executor ran the guard itself or delegated to the reference loop first.
func TestDeoptBudgetSweep(t *testing.T) {
	code := specCallCode()
	code.Fused = lir.Fuse(code)
	boolCallee := func(h *stubHooks) {
		h.callFn = func(int, []value.Value) (value.Value, error) { return value.Bool(false), nil }
	}
	args := []value.Value{value.Num(7)}
	h := newStub()
	boolCallee(h)
	full, status, err := ExecUnfused(code, args, h, 0, nil)
	if err != nil || status != StatusDeopt {
		t.Fatalf("reference run: status=%v err=%v, want deopt", status, err)
	}
	for max := int64(1); max <= full.Steps+4; max++ {
		runBothDeopt(t, code, args, max, boolCallee)
	}
}

// TestOSRPointChargesNoStep pins the marker's zero-step contract in all
// three dispatch mechanisms — the unfused switch, the fused fast path, and
// pure table dispatch — since Steps parity between tiers (and between code
// compiled with and without OSR support) depends on it.
func TestOSRPointChargesNoStep(t *testing.T) {
	code := &lir.Code{
		Name: "marker", NumParams: 0, NumRegs: 2,
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 0, Imm: 9},
			{Kind: lir.KOSRPoint, Aux: 0},
			{Kind: lir.KRetNum, A: 0},
		},
	}
	ru, _, err := ExecUnfused(code, nil, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	code.Fused = lir.Fuse(code)
	rf, _, err := Exec(code, nil, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, _, err := execTableOnly(code, nil, newStub(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Result{"unfused": ru, "fused": rf, "table": rt} {
		if r.Steps != 2 || r.Val != 9 {
			t.Errorf("%s: steps=%d val=%v, want 2 steps (const+ret) and 9", name, r.Steps, r.Val)
		}
	}
}

// osrArrayCode is the array-loop OSR target in the shape regalloc produces:
// the elements address and length are hoisted above the header, so the
// entry's Remats table must re-derive both from the frame map's array slot
// before dispatch. Loop: `while (i < len(a)) { s += a[i]; i += 1 }`.
func osrArrayCode() *lir.Code {
	// r0 = array handle, r1 = i, r2 = s, r3 = elems, r4 = len, r5/r6 = temps
	return &lir.Code{
		Name: "osrarray", NumParams: 1, NumRegs: 8,
		Ops: []lir.Op{
			{Kind: lir.KGuardType, Dst: 0, A: 0, Aux: 1}, // 0
			{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
			{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: s = 0
			{Kind: lir.KElemsHandle, Dst: 3, A: 0},       // 3: hoisted elems
			{Kind: lir.KInitLen, Dst: 4, A: 3},           // 4: hoisted len
			{Kind: lir.KOSRPoint, Aux: 0},                // 5: header
			{Kind: lir.KCmp, Dst: 5, A: 1, B: 4, Aux: 1}, // 6: i < len
			{Kind: lir.KBranchFalse, A: 5, Target: 14},   // 7
			{Kind: lir.KBoundsCheck, A: 1, B: 4},         // 8
			{Kind: lir.KLoadElem, Dst: 6, A: 3, B: 1},    // 9
			{Kind: lir.KAdd, Dst: 2, A: 2, B: 6},         // 10: s += a[i]
			{Kind: lir.KConst, Dst: 6, Imm: 1},           // 11
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 6},         // 12
			{Kind: lir.KJump, Target: 5},                 // 13
			{Kind: lir.KRetNum, A: 2},                    // 14
		},
		OSREntries: []lir.OSREntry{{
			Ordinal: 0, PC: 5,
			Slots: []lir.FrameSlot{
				{Slot: 0, Reg: 0, Kind: lir.SlotObj},
				{Slot: 1, Reg: 1, Kind: lir.SlotNum},
				{Slot: 2, Reg: 2, Kind: lir.SlotNum},
			},
			Remats: []lir.RematOp{
				{Kind: lir.RematElems, Reg: 3, Src: 0},
				{Kind: lir.RematLen, Reg: 4, Src: 3},
			},
			Eligible: true,
		}},
	}
}

// osrArrayEnv returns the handle an 8-element array will get in a fresh
// stub arena (the stub arenas are deterministic, so a probe allocation
// learns it) plus the setup that creates and fills it with 10+i.
func osrArrayEnv() (value.Value, func(h *stubHooks)) {
	probe := heap.New(1 << 10)
	handle, _ := probe.Alloc(8)
	setup := func(h *stubHooks) {
		arr, _ := h.arena.Alloc(8)
		elems, _ := h.arena.Elems(arr)
		for i := 0; i < 8; i++ {
			h.arena.RawStore(elems+i, float64(10+i))
		}
	}
	return value.ArrayRef(handle), setup
}

// TestExecOSRRematerializesArrayAccessors: a mid-loop transfer into the
// array loop must re-derive the hoisted elements address and length from
// the materialized handle and produce exactly the loop's remainder — and
// the Remats table is load-bearing: stripping it leaves the length register
// zeroed, so the loop exits immediately with the untouched accumulator.
func TestExecOSRRematerializesArrayAccessors(t *testing.T) {
	arr, setup := osrArrayEnv()
	// Transfer at i=3, s=100: remainder is Σ (10+i) for i in 3..7.
	locals := []value.Value{arr, value.Num(3), value.Num(100)}
	code := osrArrayCode()
	res, status, err, entered := execOSRBothWith(t, code, 0, locals, 0, setup)
	if !entered || err != nil || status != StatusOK {
		t.Fatalf("entered=%v status=%v err=%v", entered, status, err)
	}
	if want := float64(100 + 13 + 14 + 15 + 16 + 17); res.Val != want {
		t.Fatalf("OSR remainder = %v, want %v", res.Val, want)
	}
	// Budget exactness across the remat prologue and the array body.
	for max := int64(1); max <= res.Steps+2; max++ {
		execOSRBothWith(t, code, 0, locals, max, setup)
	}
	stripped := osrArrayCode()
	stripped.OSREntries[0].Remats = nil
	sres, _, serr, sentered := execOSRBothWith(t, stripped, 0, locals, 0, setup)
	if !sentered || serr != nil {
		t.Fatalf("stripped: entered=%v err=%v", sentered, serr)
	}
	if sres.Val != 100 {
		t.Fatalf("without Remats the zeroed length must end the loop at once: got %v, want 100", sres.Val)
	}
}

// TestExecOSRRematRefusals: the remat prologue must refuse the transfer —
// entered=false, zero result, nothing run — when the array handle is
// dangling in the target arena (nothing was allocated) or when the frame
// map's object slot holds a non-array local; and an unknown remat kind is
// a refusal, not a panic.
func TestExecOSRRematRefusals(t *testing.T) {
	arr, setup := osrArrayEnv()
	good := []value.Value{arr, value.Num(3), value.Num(100)}
	cases := []struct {
		name   string
		locals []value.Value
		setup  func(h *stubHooks)
		mutate func(c *lir.Code)
	}{
		{name: "dangling-handle", locals: good, setup: nil},
		{name: "number-in-obj-slot", setup: setup,
			locals: []value.Value{value.Num(7), value.Num(3), value.Num(100)}},
		{name: "unknown-remat-kind", locals: good, setup: setup,
			mutate: func(c *lir.Code) { c.OSREntries[0].Remats[0].Kind = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := osrArrayCode()
			code.Fused = lir.Fuse(code)
			if tc.mutate != nil {
				tc.mutate(code)
			}
			for _, unfused := range []bool{true, false} {
				h := newStub()
				if tc.setup != nil {
					tc.setup(h)
				}
				res, status, err, entered := ExecOSR(code, 0, tc.locals, h, 0, nil, unfused)
				if entered {
					t.Fatalf("unfused=%v: transfer was accepted", unfused)
				}
				if status != StatusOK || err != nil || res != (Result{}) {
					t.Fatalf("unfused=%v: refused entry leaked state: (%+v, %v, %v)", unfused, res, status, err)
				}
			}
		})
	}
}

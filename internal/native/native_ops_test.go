package native

import (
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// run1 executes a tiny op sequence returning register `ret`.
func run1(t *testing.T, h Hooks, numParams int, args []value.Value, ops ...lir.Op) Result {
	t.Helper()
	max := int32(numParams)
	for _, op := range ops {
		for _, r := range []int32{op.Dst, op.A, op.B, op.C} {
			if r+1 > max {
				max = r + 1
			}
		}
	}
	code := &lir.Code{Name: "t", NumParams: numParams, NumRegs: int(max), Ops: ops}
	res, status, err := Exec(code, args, h, 0, nil)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if status != StatusOK {
		t.Fatalf("unexpected bail")
	}
	return res
}

func TestOpArithmeticKinds(t *testing.T) {
	h := newStub()
	cases := []struct {
		kind lir.Kind
		a, b float64
		want float64
	}{
		{lir.KSub, 7, 3, 4},
		{lir.KDiv, 9, 2, 4.5},
		{lir.KMod, -7, 3, -1},
		{lir.KPow, 2, 10, 1024},
		{lir.KBitAnd, 12, 10, 8},
		{lir.KBitOr, 12, 10, 14},
		{lir.KBitXor, 12, 10, 6},
		{lir.KShl, 1, 10, 1024},
		{lir.KShr, -8, 1, -4},
		{lir.KUshr, -1, 28, 15},
	}
	for _, c := range cases {
		res := run1(t, h, 0, nil,
			lir.Op{Kind: lir.KConst, Dst: 0, Imm: c.a},
			lir.Op{Kind: lir.KConst, Dst: 1, Imm: c.b},
			lir.Op{Kind: c.kind, Dst: 2, A: 0, B: 1},
			lir.Op{Kind: lir.KRetNum, A: 2},
		)
		if res.Val != c.want {
			t.Errorf("%v(%v, %v) = %v, want %v", c.kind, c.a, c.b, res.Val, c.want)
		}
	}
}

func TestOpUnaryKinds(t *testing.T) {
	h := newStub()
	if res := run1(t, h, 0, nil,
		lir.Op{Kind: lir.KConst, Dst: 0, Imm: 5},
		lir.Op{Kind: lir.KNeg, Dst: 1, A: 0},
		lir.Op{Kind: lir.KRetNum, A: 1},
	); res.Val != -5 {
		t.Errorf("neg = %v", res.Val)
	}
	if res := run1(t, h, 0, nil,
		lir.Op{Kind: lir.KConst, Dst: 0, Imm: math.NaN()},
		lir.Op{Kind: lir.KNot, Dst: 1, A: 0},
		lir.Op{Kind: lir.KRetNum, A: 1},
	); res.Val != 1 {
		t.Errorf("!NaN = %v, want 1 (NaN is falsy)", res.Val)
	}
}

func TestOpCmpKinds(t *testing.T) {
	h := newStub()
	// aux: 1 <, 2 <=, 3 >, 4 >=, 5 ==, 6 !=
	cases := []struct {
		aux  int32
		a, b float64
		want float64
	}{
		{1, 1, 2, 1}, {1, 2, 2, 0},
		{2, 2, 2, 1}, {2, 3, 2, 0},
		{3, 3, 2, 1}, {3, 2, 2, 0},
		{4, 2, 2, 1}, {4, 1, 2, 0},
		{5, 2, 2, 1}, {5, 1, 2, 0},
		{6, 1, 2, 1}, {6, 2, 2, 0},
	}
	for _, c := range cases {
		res := run1(t, h, 0, nil,
			lir.Op{Kind: lir.KConst, Dst: 0, Imm: c.a},
			lir.Op{Kind: lir.KConst, Dst: 1, Imm: c.b},
			lir.Op{Kind: lir.KCmp, Dst: 2, A: 0, B: 1, Aux: c.aux},
			lir.Op{Kind: lir.KRetNum, A: 2},
		)
		if res.Val != c.want {
			t.Errorf("cmp aux=%d (%v,%v) = %v, want %v", c.aux, c.a, c.b, res.Val, c.want)
		}
	}
}

func TestOpArrayLifecycle(t *testing.T) {
	h := newStub()
	// new Array(3); push 7; setlen 5; addrof; return length via pop count.
	res := run1(t, h, 0, nil,
		lir.Op{Kind: lir.KConst, Dst: 0, Imm: 3},
		lir.Op{Kind: lir.KNewArr, Dst: 1, A: 0},
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 7},
		lir.Op{Kind: lir.KPush, Dst: 3, A: 1, B: 2}, // -> new length 4
		lir.Op{Kind: lir.KConst, Dst: 4, Imm: 6},
		lir.Op{Kind: lir.KSetLen, A: 1, B: 4},
		lir.Op{Kind: lir.KPop, Dst: 5, A: 1}, // pops the zero-fill at index 5
		lir.Op{Kind: lir.KAddrOf, Dst: 6, A: 1},
		lir.Op{Kind: lir.KCodeBase, Dst: 7},
		// result: pushlen*1000 + pop + (codebase > addrof)
		lir.Op{Kind: lir.KConst, Dst: 8, Imm: 1000},
		lir.Op{Kind: lir.KMul, Dst: 8, A: 3, B: 8},
		lir.Op{Kind: lir.KAdd, Dst: 8, A: 8, B: 5},
		lir.Op{Kind: lir.KCmp, Dst: 9, A: 7, B: 6, Aux: 3},
		lir.Op{Kind: lir.KAdd, Dst: 8, A: 8, B: 9},
		lir.Op{Kind: lir.KRetNum, A: 8},
	)
	if res.Val != 4*1000+0+1 {
		t.Fatalf("lifecycle checksum = %v, want 4001", res.Val)
	}
}

func TestOpSetLenInvalidBails(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(4)
	code := &lir.Code{
		Name: "badlen", NumParams: 2, NumRegs: 3,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1},
			{Kind: lir.KUnbox, Dst: 2, A: 1},
			{Kind: lir.KSetLen, A: 1, B: 2},
			{Kind: lir.KRetUndef},
		},
	}
	for _, bad := range []float64{-1, 2.5, math.NaN(), 1e18} {
		_, status, err := Exec(code, []value.Value{value.ArrayRef(arr), value.Num(bad)}, h, 0, nil)
		if err != nil || status != StatusBail {
			t.Fatalf("setlen(%v): want bail, got status=%v err=%v", bad, status, err)
		}
	}
}

func TestOpNewArrInvalidBails(t *testing.T) {
	h := newStub()
	code := &lir.Code{
		Name: "badnew", NumParams: 1, NumRegs: 3,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 1, A: 0},
			{Kind: lir.KNewArr, Dst: 2, A: 1},
			{Kind: lir.KRetNum, A: 2},
		},
	}
	for _, bad := range []float64{-3, 0.5, math.NaN()} {
		_, status, err := Exec(code, []value.Value{value.Num(bad)}, h, 0, nil)
		if err != nil || status != StatusBail {
			t.Fatalf("new Array(%v): want bail, got status=%v err=%v", bad, status, err)
		}
	}
}

func TestOpStoreGlobalObj(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(2)
	run1(t, h, 1, []value.Value{value.ArrayRef(arr)},
		lir.Op{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1},
		lir.Op{Kind: lir.KStoreGlobalObj, A: 1, Aux: 5},
		lir.Op{Kind: lir.KRetUndef},
	)
	if !h.globals[5].IsArray() || h.globals[5].Handle() != arr {
		t.Fatalf("global = %v", h.globals[5])
	}
}

func TestOpRetObjAndUndef(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(2)
	res := run1(t, h, 1, []value.Value{value.ArrayRef(arr)},
		lir.Op{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1},
		lir.Op{Kind: lir.KRetObj, A: 1},
	)
	if res.Kind != ResObject || int32(res.Val) != arr {
		t.Fatalf("retobj = %+v", res)
	}
	res = run1(t, h, 0, nil, lir.Op{Kind: lir.KRetUndef})
	if res.Kind != ResUndef {
		t.Fatalf("retundef = %+v", res)
	}
	// Falling off the end returns undefined too.
	res = run1(t, h, 0, nil, lir.Op{Kind: lir.KNop})
	if res.Kind != ResUndef {
		t.Fatalf("implicit return = %+v", res)
	}
}

func TestOpGuardTypeOtherTagBails(t *testing.T) {
	h := newStub()
	h.globals[0] = value.Str("boo")
	code := &lir.Code{
		Name: "g", NumRegs: 2,
		Ops: []lir.Op{
			{Kind: lir.KLoadGlobal, Dst: 0, Aux: 0},
			{Kind: lir.KGuardType, Dst: 1, A: 0},
			{Kind: lir.KRetNum, A: 1},
		},
	}
	_, status, err := Exec(code, nil, h, 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("string global must bail the numeric guard: %v %v", status, err)
	}
}

// Package native executes LIR code — the "machine code" tier of the
// simulated engine. It runs over unboxed float64 registers and the shared
// heap arena. Guards (unbox, bounds checks, ...) bail out to the caller,
// which re-executes the call in the interpreter; raw memory operations
// whose guards were (possibly wrongly) eliminated go straight to the
// arena, where an unmapped access is a simulated segfault.
package native

import (
	"fmt"
	"math"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/value"
)

// Tag is the runtime type tag carried alongside boxed registers
// (parameters, global loads, call results).
type Tag uint8

// Register tags.
const (
	TagOther Tag = iota
	TagNumber
	TagBoolean
	TagObject
	TagUndefined
)

// Status reports how a native execution ended.
type Status int

// Execution outcomes. StatusBail means a guard failed: the caller must
// re-execute the call in the interpreter. StatusDeopt means a speculative
// type guard (KCallSpec) failed mid-execution: Result.Deopt carries the
// reconstructed interpreter frame and the caller resumes interpreting at
// the matching bytecode pc — unlike a bail, the work done so far is kept.
const (
	StatusOK Status = iota
	StatusBail
	StatusDeopt
)

// ResultKind tags the returned value.
type ResultKind int

// Result kinds.
const (
	ResUndef ResultKind = iota
	ResNum
	ResObject
)

// Result is the value returned by a native execution. Steps reports the
// number of LIR ops executed, for the caller's budget accounting — it is
// bit-identical between the fused and unfused executors. Checks counts the
// amortized budget checks the fused executor performed (0 for unfused
// runs): the observability hook behind native.block_budget_checks.
type Result struct {
	Kind   ResultKind
	Val    float64
	Steps  int64
	Checks int64
	// Deopt is the reconstructed interpreter frame when Status is
	// StatusDeopt, nil otherwise.
	Deopt *DeoptState
}

// DeoptState is the interpreter frame rebuilt at a failed speculation
// guard. Locals are boxed from the frame map's static slot kinds — runtime
// tags are never trusted at a frame boundary — except the guarded call's
// own result, which is passed through exactly as the callee returned it
// (the interpreter applies its own coercion at the resume point, so the
// deopt is semantically invisible).
type DeoptState struct {
	Exit   int32 // index into lir.Code.DeoptExits
	Locals []value.Value
}

// Value boxes the result.
func (r Result) Value() value.Value {
	switch r.Kind {
	case ResNum:
		return value.Num(r.Val)
	case ResObject:
		return value.ArrayRef(int32(r.Val))
	default:
		return value.Undef()
	}
}

// Hooks is the runtime interface native code calls back into; the engine
// implements it.
type Hooks interface {
	// Arena is the shared heap.
	Arena() *heap.Arena
	// GlobalGet/GlobalSet access global variable slots.
	GlobalGet(slot int) value.Value
	GlobalSet(slot int, v value.Value)
	// CallFunction dispatches a nanojs call (through engine tiering).
	CallFunction(fnIdx int, args []value.Value) (value.Value, error)
	// Random is the deterministic script RNG.
	Random() float64
}

// BudgetError is returned when native execution exceeds its op budget.
type BudgetError struct{ Fn string }

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("native op budget exhausted in %s", e.Fn)
}

// Pool recycles native frames (register files) and call-argument space
// across executions. Calls nest strictly, so the argument area is a LIFO
// arena. A nil Pool falls back to per-call allocation.
type Pool struct {
	floats [][]float64
	tags   [][]Tag
	args   []value.Value
	fsts   []*fstate // recycled fused-executor frames (a stack: calls nest)
}

func (p *Pool) getFstate() *fstate {
	if p != nil && len(p.fsts) > 0 {
		st := p.fsts[len(p.fsts)-1]
		p.fsts = p.fsts[:len(p.fsts)-1]
		return st
	}
	return &fstate{}
}

func (p *Pool) putFstate(st *fstate) {
	if p != nil && len(p.fsts) < 64 {
		*st = fstate{}
		p.fsts = append(p.fsts, st)
	}
}

func (p *Pool) getRegs(n int) ([]float64, []Tag) {
	if p != nil {
		for len(p.floats) > 0 {
			f := p.floats[len(p.floats)-1]
			t := p.tags[len(p.tags)-1]
			p.floats = p.floats[:len(p.floats)-1]
			p.tags = p.tags[:len(p.tags)-1]
			if cap(f) >= n && cap(t) >= n {
				return f[:n], t[:n]
			}
		}
	}
	return make([]float64, n), make([]Tag, n)
}

func (p *Pool) putRegs(f []float64, t []Tag) {
	if p != nil && len(p.floats) < 64 {
		p.floats = append(p.floats, f[:0])
		p.tags = append(p.tags, t[:0])
	}
}

// ExecWith is Exec with a fault-injection point at the dispatch boundary
// and optional tracing: the injector (may be nil) is evaluated before the
// first op executes, so an injected dispatch failure is always
// side-effect-free and the caller can degrade it to an interpreter
// re-execution. A KindPanic fault panics from this frame — containment is
// the caller's supervisor's job. tr (may be nil) receives one
// "native.bail" instant per guard bailout, so deoptimization storms are
// visible inline in a compile trace.
func ExecWith(code *lir.Code, args []value.Value, h Hooks, maxOps int64, pool *Pool, inj *faults.Injector, tr *obs.Tracer) (Result, Status, error) {
	if err := inj.Check(faults.PointNative, code.Name); err != nil {
		return Result{}, StatusBail, err
	}
	res, status, err := Exec(code, args, h, maxOps, pool)
	if status == StatusBail && err == nil {
		tr.Instant(obs.CatEngine, "native.bail",
			obs.S("fn", code.Name), obs.I("steps", res.Steps))
	}
	return res, status, err
}

// Exec runs code with the given arguments. maxOps bounds the number of LIR
// ops executed (0 means a large default). pool may be nil. When the code
// carries a fused form (lir.Code.Fused) execution dispatches through the
// direct-threaded handler table; results, Steps accounting, bail and crash
// behavior are bit-identical either way.
func Exec(code *lir.Code, args []value.Value, h Hooks, maxOps int64, pool *Pool) (Result, Status, error) {
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs, tags := pool.getRegs(code.NumRegs)
	defer pool.putRegs(regs, tags)
	boxParams(code, args, regs, tags)
	if code.Fused != nil {
		return execFused(code, regs, tags, h, maxOps, pool)
	}
	return execSwitch(code, regs, tags, h, maxOps, pool, 0, 0)
}

// ExecUnfused runs code through the monolithic switch loop even when a
// fused form is attached — the reference executor the fused tier is
// benchmarked and differentially tested against.
func ExecUnfused(code *lir.Code, args []value.Value, h Hooks, maxOps int64, pool *Pool) (Result, Status, error) {
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs, tags := pool.getRegs(code.NumRegs)
	defer pool.putRegs(regs, tags)
	boxParams(code, args, regs, tags)
	return execSwitch(code, regs, tags, h, maxOps, pool, 0, 0)
}

// boxParams copies the boxed arguments into the frame's registers.
func boxParams(code *lir.Code, args []value.Value, regs []float64, tags []Tag) {
	for i := 0; i < code.NumParams; i++ {
		var v value.Value
		if i < len(args) {
			v = args[i]
		}
		switch v.Type() {
		case value.Number:
			regs[i], tags[i] = v.AsNumber(), TagNumber
		case value.Boolean:
			regs[i], tags[i] = v.AsNumber(), TagBoolean
		case value.Array:
			regs[i], tags[i] = float64(v.Handle()), TagObject
		case value.Undefined:
			regs[i], tags[i] = math.NaN(), TagUndefined
		default:
			regs[i], tags[i] = math.NaN(), TagOther
		}
	}
}

// execSwitch is the unfused reference loop: one budget check and one
// switch dispatch per op, starting at pc0 with steps0 already charged.
// The fused executor delegates here (over the same register file) when a
// block-level budget check finds the limit within reach, which is what
// keeps BudgetError timing and Steps accounting bit-identical.
func execSwitch(code *lir.Code, regs []float64, tags []Tag, h Hooks, maxOps int64, pool *Pool, pc0 int, steps0 int64) (res Result, status Status, err error) {
	arena := h.Arena()
	truthy := func(v float64) bool { return v != 0 && v == v }
	steps := steps0
	defer func() { res.Steps = steps }()

	for pc := pc0; pc < len(code.Ops); pc++ {
		steps++
		if steps > maxOps {
			return Result{}, StatusOK, &BudgetError{Fn: code.Name}
		}
		op := &code.Ops[pc]
		switch op.Kind {
		case lir.KNop:
		case lir.KOSRPoint:
			// Loop-header OSR marker: a nop that charges no step, so Steps
			// is bit-identical to code compiled without OSR support. (The
			// loop-top increment already ran; undo it. A budget trip at the
			// marker is indistinguishable from tripping at the next real op.)
			steps--
		case lir.KConst:
			regs[op.Dst] = op.Imm
		case lir.KMove, lir.KMoveTag:
			regs[op.Dst] = regs[op.A]
			if op.Kind == lir.KMoveTag {
				tags[op.Dst] = tags[op.A]
			}
		case lir.KAdd:
			regs[op.Dst] = regs[op.A] + regs[op.B]
		case lir.KSub:
			regs[op.Dst] = regs[op.A] - regs[op.B]
		case lir.KMul:
			regs[op.Dst] = regs[op.A] * regs[op.B]
		case lir.KDiv:
			regs[op.Dst] = regs[op.A] / regs[op.B]
		case lir.KMod:
			regs[op.Dst] = value.Mod(regs[op.A], regs[op.B])
		case lir.KPow:
			regs[op.Dst] = math.Pow(regs[op.A], regs[op.B])
		case lir.KBitAnd:
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) & value.ToInt32(regs[op.B]))
		case lir.KBitOr:
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) | value.ToInt32(regs[op.B]))
		case lir.KBitXor:
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) ^ value.ToInt32(regs[op.B]))
		case lir.KShl:
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) << (value.ToUint32(regs[op.B]) & 31))
		case lir.KShr:
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) >> (value.ToUint32(regs[op.B]) & 31))
		case lir.KUshr:
			regs[op.Dst] = float64(value.ToUint32(regs[op.A]) >> (value.ToUint32(regs[op.B]) & 31))
		case lir.KNeg:
			regs[op.Dst] = -regs[op.A]
		case lir.KNot:
			if truthy(regs[op.A]) {
				regs[op.Dst] = 0
			} else {
				regs[op.Dst] = 1
			}
		case lir.KCmp:
			a, b := regs[op.A], regs[op.B]
			var res bool
			switch int(op.Aux) {
			case 1: // CmpLt
				res = a < b
			case 2:
				res = a <= b
			case 3:
				res = a > b
			case 4:
				res = a >= b
			case 5:
				res = a == b
			case 6:
				res = a != b
			}
			if res {
				regs[op.Dst] = 1
			} else {
				regs[op.Dst] = 0
			}
		case lir.KMath:
			regs[op.Dst] = mathFunc(bytecode.Builtin(op.Aux), regs[op.A], regs[op.B], h)
		case lir.KJump:
			pc = int(op.Target) - 1
		case lir.KBranchFalse:
			if !truthy(regs[op.A]) {
				pc = int(op.Target) - 1
			}
		case lir.KUnbox, lir.KGuardType:
			tag := tags[op.A]
			if op.Aux == 1 {
				if tag != TagObject {
					return Result{}, StatusBail, nil
				}
			} else {
				if tag != TagNumber && tag != TagBoolean {
					return Result{}, StatusBail, nil
				}
			}
			regs[op.Dst] = regs[op.A]
			tags[op.Dst] = tag
		case lir.KElemsHandle:
			elems, ok := arena.Elems(int32(regs[op.A]))
			if !ok {
				return Result{}, StatusBail, nil
			}
			regs[op.Dst] = float64(elems)
		case lir.KElemsRaw:
			// Type-confused path (unbox guard eliminated): the raw bits are
			// consumed as an object reference. For a genuine array the bits
			// *are* the reference, so well-typed callers are unaffected;
			// for an attacker-supplied number this is a wild pointer
			// dereference — a segfault.
			h := int64(math.Trunc(regs[op.A]))
			elems, ok := arena.Elems(int32(h))
			if !ok || regs[op.A] != math.Trunc(regs[op.A]) {
				_, crash := arena.RawLoad(int(h))
				if crash != nil {
					return Result{}, StatusOK, crash
				}
				// The forged reference happens to alias mapped memory:
				// consume it as an elements address (still corruptible).
				regs[op.Dst] = math.Trunc(regs[op.A])
				break
			}
			regs[op.Dst] = float64(elems)
		case lir.KInitLen:
			v, crash := arena.LengthAt(int(regs[op.A]))
			if crash != nil {
				return Result{}, StatusOK, crash
			}
			regs[op.Dst] = v
		case lir.KBoundsCheck:
			idx, length := regs[op.A], regs[op.B]
			if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
				return Result{}, StatusBail, nil
			}
		case lir.KLoadElem:
			addr := int(regs[op.A]) + int(regs[op.B]) + int(op.Aux)
			v, crash := arena.RawLoad(addr)
			if crash != nil {
				return Result{}, StatusOK, crash
			}
			regs[op.Dst] = v
		case lir.KStoreElem:
			addr := int(regs[op.A]) + int(regs[op.B]) + int(op.Aux)
			if crash := arena.RawStore(addr, regs[op.C]); crash != nil {
				return Result{}, StatusOK, crash
			}
		case lir.KSetLen:
			n := regs[op.B]
			if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
				return Result{}, StatusBail, nil
			}
			if err := arena.SetLength(int32(regs[op.A]), int(n)); err != nil {
				return Result{}, StatusOK, err
			}
		case lir.KPush:
			n, err := arena.Push(int32(regs[op.A]), regs[op.B])
			if err != nil {
				return Result{}, StatusOK, err
			}
			regs[op.Dst] = float64(n)
		case lir.KPop:
			v, ok := arena.Pop(int32(regs[op.A]))
			if !ok {
				return Result{}, StatusBail, nil
			}
			regs[op.Dst] = v
		case lir.KNewArr:
			n := regs[op.A]
			if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
				return Result{}, StatusBail, nil
			}
			hnd, err := arena.Alloc(int(n))
			if err != nil {
				return Result{}, StatusOK, err
			}
			regs[op.Dst] = float64(hnd)
		case lir.KAddrOf:
			elems, ok := arena.Elems(int32(regs[op.A]))
			if !ok {
				return Result{}, StatusBail, nil
			}
			regs[op.Dst] = float64(elems)
		case lir.KCodeBase:
			regs[op.Dst] = float64(arena.CodeBase())
		case lir.KLoadGlobal:
			v := h.GlobalGet(int(op.Aux))
			switch v.Type() {
			case value.Number:
				regs[op.Dst], tags[op.Dst] = v.AsNumber(), TagNumber
			case value.Boolean:
				regs[op.Dst], tags[op.Dst] = v.AsNumber(), TagBoolean
			case value.Array:
				regs[op.Dst], tags[op.Dst] = float64(v.Handle()), TagObject
			default:
				regs[op.Dst], tags[op.Dst] = math.NaN(), TagOther
			}
		case lir.KStoreGlobalNum:
			h.GlobalSet(int(op.Aux), value.Num(regs[op.A]))
		case lir.KStoreGlobalObj:
			h.GlobalSet(int(op.Aux), value.ArrayRef(int32(regs[op.A])))
		case lir.KCall:
			argRegs := code.ArgLists[op.A]
			var callArgs []value.Value
			base := -1
			if pool != nil {
				base = len(pool.args)
				for range argRegs {
					pool.args = append(pool.args, value.Value{})
				}
				callArgs = pool.args[base : base+len(argRegs)]
			} else {
				callArgs = make([]value.Value, len(argRegs))
			}
			for i, ar := range argRegs {
				if op.C&(1<<i) != 0 {
					callArgs[i] = value.ArrayRef(int32(regs[ar]))
				} else {
					callArgs[i] = value.Num(regs[ar])
				}
			}
			res, err := h.CallFunction(int(op.Aux), callArgs)
			if base >= 0 {
				pool.args = pool.args[:base]
			}
			if err != nil {
				return Result{}, StatusOK, err
			}
			if op.B == 1 { // expect object
				if !res.IsArray() {
					return Result{}, StatusBail, nil
				}
				regs[op.Dst], tags[op.Dst] = float64(res.Handle()), TagObject
			} else {
				switch res.Type() {
				case value.Number, value.Boolean:
					regs[op.Dst], tags[op.Dst] = res.ToNumber(), TagNumber
				case value.Undefined:
					regs[op.Dst], tags[op.Dst] = math.NaN(), TagNumber
				default:
					return Result{}, StatusBail, nil
				}
			}
		case lir.KCallSpec:
			// KCall with a strict return-type guard: exactly a Number is
			// accepted (where KCall silently coerces booleans/undefined).
			// Anything else deoptimizes: the interpreter frame is rebuilt
			// from the deopt exit's frame map and the raw callee result.
			argRegs := code.ArgLists[op.A]
			var callArgs []value.Value
			base := -1
			if pool != nil {
				base = len(pool.args)
				for range argRegs {
					pool.args = append(pool.args, value.Value{})
				}
				callArgs = pool.args[base : base+len(argRegs)]
			} else {
				callArgs = make([]value.Value, len(argRegs))
			}
			for i, ar := range argRegs {
				if op.C&(1<<i) != 0 {
					callArgs[i] = value.ArrayRef(int32(regs[ar]))
				} else {
					callArgs[i] = value.Num(regs[ar])
				}
			}
			cres, err := h.CallFunction(int(op.Aux), callArgs)
			if base >= 0 {
				pool.args = pool.args[:base]
			}
			if err != nil {
				return Result{}, StatusOK, err
			}
			if cres.Type() == value.Number {
				regs[op.Dst], tags[op.Dst] = cres.AsNumber(), TagNumber
				break
			}
			if op.Target < 0 || int(op.Target) >= len(code.DeoptExits) {
				return Result{}, StatusBail, nil // orphan guard; treat as bail
			}
			return Result{Deopt: buildDeopt(code, op.Target, regs, cres)}, StatusDeopt, nil
		case lir.KRetNum:
			return Result{Kind: ResNum, Val: regs[op.A]}, StatusOK, nil
		case lir.KRetObj:
			return Result{Kind: ResObject, Val: regs[op.A]}, StatusOK, nil
		case lir.KRetUndef:
			return Result{Kind: ResUndef}, StatusOK, nil
		default:
			return Result{}, StatusOK, fmt.Errorf("native: unknown op %s", op.Kind)
		}
	}
	return Result{Kind: ResUndef}, StatusOK, nil
}

// buildDeopt boxes the interpreter locals for deopt exit exitIdx from the
// current register state, placing the guarded call's raw result in its
// destination slot.
func buildDeopt(code *lir.Code, exitIdx int32, regs []float64, result value.Value) *DeoptState {
	exit := &code.DeoptExits[exitIdx]
	n := int(exit.ResultSlot) + 1
	for _, s := range exit.Slots {
		if int(s.Slot)+1 > n {
			n = int(s.Slot) + 1
		}
	}
	locals := make([]value.Value, n)
	for _, s := range exit.Slots {
		switch s.Kind {
		case lir.SlotBool:
			locals[s.Slot] = value.Bool(regs[s.Reg] != 0)
		case lir.SlotObj:
			locals[s.Slot] = value.ArrayRef(int32(regs[s.Reg]))
		default:
			locals[s.Slot] = value.Num(regs[s.Reg])
		}
	}
	locals[exit.ResultSlot] = result
	return &DeoptState{Exit: exitIdx, Locals: locals}
}

// ExecOSR transfers execution into code mid-loop: the interpreter's locals
// are materialized into a fresh register frame per the OSR entry's frame
// map and execution starts at the loop-header marker. entered=false means
// the transfer was refused (ineligible entry, or a local's runtime type
// does not match the frame map's static kind) — the caller keeps
// interpreting; nothing has run.
//
// Materialization is strict: a number slot accepts exactly a Number (a
// boolean or undefined local would be silently renumbered by the frame's
// untagged registers, diverging from the interpreter after a later deopt),
// a boolean slot exactly a Boolean, an object slot exactly an Array.
func ExecOSR(code *lir.Code, entryIdx int, locals []value.Value, h Hooks, maxOps int64, pool *Pool, unfused bool) (Result, Status, error, bool) {
	if entryIdx < 0 || entryIdx >= len(code.OSREntries) {
		return Result{}, StatusOK, nil, false
	}
	e := &code.OSREntries[entryIdx]
	if !e.Eligible {
		return Result{}, StatusOK, nil, false
	}
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs, tags := pool.getRegs(code.NumRegs)
	defer pool.putRegs(regs, tags)
	// Zeroing, strict slot materialization, hoisted-constant and
	// preheader-value rematerialization are shared with the machine-code
	// tier's OSR entry (see bridge.go) so the two can never diverge.
	if _, ok := MaterializeOSR(code, entryIdx, locals, h.Arena(), regs, tags); !ok {
		return Result{}, StatusOK, nil, false
	}
	if code.Fused != nil && !unfused {
		if fi := fusedIdxForPC(code.Fused, e.PC); fi >= 0 {
			res, st, err := execFusedFrom(code, regs, tags, h, maxOps, pool, int32(fi))
			return res, st, err, true
		}
	}
	res, st, err := execSwitch(code, regs, tags, h, maxOps, pool, int(e.PC), 0)
	return res, st, err, true
}

// fusedIdxForPC finds the fused op whose first constituent is source pc
// (-1 when pc is interior to a superinstruction — cannot happen for OSR
// markers, which are block leaders, but the fallback keeps this total).
func fusedIdxForPC(f *lir.FusedCode, pc int32) int {
	lo, hi := 0, len(f.SrcPC)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case f.SrcPC[mid] < pc:
			lo = mid + 1
		case f.SrcPC[mid] > pc:
			hi = mid - 1
		default:
			return mid
		}
	}
	return -1
}

func mathFunc(b bytecode.Builtin, a, c float64, h Hooks) float64 {
	switch b {
	case bytecode.BMathAbs:
		return math.Abs(a)
	case bytecode.BMathFloor:
		return math.Floor(a)
	case bytecode.BMathCeil:
		return math.Ceil(a)
	case bytecode.BMathRound:
		return math.Floor(a + 0.5)
	case bytecode.BMathSqrt:
		return math.Sqrt(a)
	case bytecode.BMathMin:
		return math.Min(a, c)
	case bytecode.BMathMax:
		return math.Max(a, c)
	case bytecode.BMathPow:
		return math.Pow(a, c)
	case bytecode.BMathSin:
		return math.Sin(a)
	case bytecode.BMathCos:
		return math.Cos(a)
	case bytecode.BMathTan:
		return math.Tan(a)
	case bytecode.BMathAtan:
		return math.Atan(a)
	case bytecode.BMathAtan2:
		return math.Atan2(a, c)
	case bytecode.BMathExp:
		return math.Exp(a)
	case bytecode.BMathLog:
		return math.Log(a)
	case bytecode.BMathRandom:
		return h.Random()
	default:
		return math.NaN()
	}
}

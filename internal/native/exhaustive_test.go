package native

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// TestEveryKindWired is the exhaustiveness guard: adding a lir.Kind
// without wiring the unfused executor, the fused handler table, and the
// fuser's pass-through table must fail here, not silently execute as a
// nop or an unknown-op error in production.
func TestEveryKindWired(t *testing.T) {
	// 1. The fused handler table has a real handler for every pass-through
	// kind and every superinstruction (the table defaults every slot to the
	// invalid handler, so wiredHandlers is the ground truth).
	for fk := lir.FKind(0); fk < lir.FKindCount; fk++ {
		if !wiredHandlers[fk] {
			t.Errorf("fused handler table: no handler wired for %v (FKind %d)", fk, fk)
		}
	}

	// 2. The fuser translates every kind (pass-through at minimum): a
	// one-op stream must never fuse to FInvalid.
	for k := lir.Kind(0); k < lir.KindCount; k++ {
		code := &lir.Code{Name: "probe", NumRegs: 4, Ops: []lir.Op{{Kind: k}}}
		f := lir.Fuse(code)
		if len(f.Ops) == 0 || f.Ops[0].Kind == lir.FInvalid {
			t.Errorf("fuser: kind %v translated to FInvalid", k)
		}
	}

	// 3. Both executors accept every kind: a single-op function per kind
	// must never hit the unknown-op default (bails, crashes and budget
	// exhaustion from the stub environment are all fine).
	for k := lir.Kind(0); k < lir.KindCount; k++ {
		code := &lir.Code{
			Name: "probe", NumRegs: 4,
			Ops:      []lir.Op{{Kind: k}},
			ArgLists: [][]int32{{}}, // KCall's operand list
		}
		for _, fused := range []bool{false, true} {
			h := newStub()
			run := ExecUnfused
			if fused {
				code.Fused = lir.Fuse(code)
				run = Exec
			}
			// maxOps 4 stops the KJump self-loop via the budget.
			_, _, err := run(code, nil, h, 4, nil)
			if err != nil && strings.Contains(err.Error(), "unknown") {
				t.Errorf("kind %v (fused=%v): executor rejected it: %v", k, fused, err)
			}
		}
	}
}

// TestHandlerTagWritesMatch spot-checks that pass-through handlers carry
// type tags exactly like the switch loop for the tag-writing kinds.
func TestHandlerTagWritesMatch(t *testing.T) {
	h := newStub()
	arr, _ := h.arena.Alloc(3)
	h.globals[2] = value.ArrayRef(arr)
	code := &lir.Code{
		Name: "tags", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KLoadGlobal, Dst: 1, Aux: 2},
			{Kind: lir.KMoveTag, Dst: 2, A: 1},
			{Kind: lir.KGuardType, Dst: 3, A: 2, Aux: 1},
			{Kind: lir.KUnbox, Dst: 4, A: 0},
			{Kind: lir.KAdd, Dst: 5, A: 4, B: 4},
			{Kind: lir.KRetNum, A: 5},
		},
	}
	args := []value.Value{value.Num(21)}
	ru, su, eu := ExecUnfused(code, args, h, 0, nil)
	code.Fused = lir.Fuse(code)
	rf, sf, ef := Exec(code, args, h, 0, nil)
	if !resEq(ru, rf) || su != sf || !errEq(eu, ef) {
		t.Fatalf("tag flow diverged: unfused (%+v,%v,%v) fused (%+v,%v,%v)", ru, su, eu, rf, sf, ef)
	}
	if rf.Kind != ResNum || rf.Val != 42 {
		t.Fatalf("result = %+v, want 42", rf)
	}
}

package native

import (
	"errors"
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// resEq compares results modulo Checks (the fused executor's amortized
// check count is observability, not semantics) with NaN-exact values.
func resEq(a, b Result) bool {
	return a.Kind == b.Kind &&
		math.Float64bits(a.Val) == math.Float64bits(b.Val) &&
		a.Steps == b.Steps
}

func errEq(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// runBoth executes code fused and unfused in two identical fresh stub
// environments and asserts bit-identical results, steps, status, error,
// globals and heap effects.
func runBoth(t *testing.T, code *lir.Code, args []value.Value, maxOps int64, setup func(h *stubHooks)) (Result, Status, error) {
	t.Helper()
	if code.Fused == nil {
		code.Fused = lir.Fuse(code)
	}
	hu, hf := newStub(), newStub()
	if setup != nil {
		setup(hu)
		setup(hf)
	}
	ru, su, eu := ExecUnfused(code, args, hu, maxOps, nil)
	rf, sf, ef := Exec(code, args, hf, maxOps, nil)
	if !resEq(ru, rf) || su != sf || !errEq(eu, ef) {
		t.Fatalf("fused/unfused diverged (maxOps=%d):\nunfused (%+v, %v, %v)\nfused   (%+v, %v, %v)",
			maxOps, ru, su, eu, rf, sf, ef)
	}
	for i := range hu.globals {
		gu, gf := hu.globals[i], hf.globals[i]
		if gu.Type() != gf.Type() || (gu.Type() == value.Number && math.Float64bits(gu.AsNumber()) != math.Float64bits(gf.AsNumber())) {
			t.Fatalf("global %d diverged: unfused %v fused %v", i, gu, gf)
		}
	}
	return rf, sf, ef
}

// loopCode is the canonical fusion target: a do-while summing integers
// 0..n-1 whose tail is the exact `const; i = i + 1; cmp; branch-back`
// shape the 4-op superinstruction covers (the conditional branch IS the
// back edge: branch-false on `i >= n` loops while i < n).
func loopCode() *lir.Code {
	// r0 = n (param), r1 = i, r2 = acc, r3 = const, r4 = cmp
	return &lir.Code{
		Name: "loop", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},             // 0
			{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
			{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: acc = 0
			{Kind: lir.KAdd, Dst: 2, A: 2, B: 1},         // 3: head: acc += i
			{Kind: lir.KConst, Dst: 3, Imm: 1},           // 4
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 3},         // 5: i = i + 1
			{Kind: lir.KCmp, Dst: 4, A: 1, B: 0, Aux: 4}, // 6: i >= n
			{Kind: lir.KBranchFalse, A: 4, Target: 3},    // 7: back edge
			{Kind: lir.KRetNum, A: 2},                    // 8
		},
	}
}

func TestFusedLoopEquivalence(t *testing.T) {
	code := loopCode()
	for _, n := range []float64{0, 1, 2, 10, 1000} {
		res, status, err := runBoth(t, code, []value.Value{value.Num(n)}, 0, nil)
		if err != nil || status != StatusOK {
			t.Fatalf("n=%v: %v %v", n, status, err)
		}
		want := n * (n - 1) / 2
		if n == 0 {
			want = 0
		}
		if res.Val != want {
			t.Fatalf("sum(%v) = %v, want %v", n, res.Val, want)
		}
	}
	// The loop tail must actually have fused into the 4-op superinstruction.
	found := false
	for _, op := range code.Fused.Ops {
		if op.Kind == lir.FAddImmCmpBranch {
			found = true
		}
	}
	if !found {
		t.Fatalf("loop tail did not fuse into FAddImmCmpBranch:\n%v", code.Fused.Ops)
	}
}

// TestFusedBudgetSweep is the exactness proof for amortized budget checks:
// for every budget from 1 to beyond the loop's full step count, the fused
// executor must return the same result/status/error *and the same
// Result.Steps* as the per-op-checked reference loop — including the
// BudgetError cut-off point.
func TestFusedBudgetSweep(t *testing.T) {
	code := loopCode()
	code.Fused = lir.Fuse(code)
	args := []value.Value{value.Num(12)}
	full, _, err := ExecUnfused(code, args, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for max := int64(1); max <= full.Steps+2; max++ {
		runBoth(t, code, args, max, nil)
	}
}

func TestFusedArrayPatterns(t *testing.T) {
	// initlen + boundscheck + loadelem / storeelem triples over a real
	// array: copy arr[i] -> arr[i+off] style traffic.
	c := &lir.Code{
		Name: "arr", NumParams: 2, NumRegs: 10,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0, Aux: 1},  // arr handle
			{Kind: lir.KUnbox, Dst: 1, A: 1},          // idx
			{Kind: lir.KElemsHandle, Dst: 2, A: 0},    // elems addr
			{Kind: lir.KInitLen, Dst: 3, A: 2},        // len
			{Kind: lir.KBoundsCheck, A: 1, B: 3},      // 0 <= idx < len
			{Kind: lir.KLoadElem, Dst: 4, A: 2, B: 1}, // v = arr[idx]
			{Kind: lir.KConst, Dst: 5, Imm: 2},        //
			{Kind: lir.KMul, Dst: 6, A: 4, B: 5},      // v*2
			{Kind: lir.KInitLen, Dst: 7, A: 2},        //
			{Kind: lir.KBoundsCheck, A: 1, B: 7},      //
			{Kind: lir.KStoreElem, A: 2, B: 1, C: 6},  // arr[idx] = v*2
			{Kind: lir.KRetNum, A: 6},                 //
		},
	}
	// The stub arenas are deterministic, so the handle the setup allocation
	// yields is learned from a probe arena and baked into the arguments.
	probe := heap.New(1 << 10)
	handle, _ := probe.Alloc(8)
	setup := func(h *stubHooks) {
		arr, _ := h.arena.Alloc(8)
		elems, _ := h.arena.Elems(arr)
		for i := 0; i < 8; i++ {
			h.arena.RawStore(elems+i, float64(10+i))
		}
	}
	// In-bounds, out-of-bounds (bail), fractional index (bail).
	for _, idx := range []float64{3, 7, 8, -1, 2.5} {
		runBoth(t, c, []value.Value{value.ArrayRef(handle), value.Num(idx)}, 0, setup)
	}
	c.Fused = nil
	f := lir.Fuse(c)
	var kinds []lir.FKind
	for _, op := range f.Ops {
		if op.Kind.IsSuper() {
			kinds = append(kinds, op.Kind)
		}
	}
	has := func(k lir.FKind) bool {
		for _, x := range kinds {
			if x == k {
				return true
			}
		}
		return false
	}
	if !has(lir.FLenBoundsLoad) || !has(lir.FLenBoundsStore) {
		t.Fatalf("array triples did not fuse: supers = %v in\n%v", kinds, f.Ops)
	}
}

func TestFusedAliasingEdges(t *testing.T) {
	// Const register aliases the arith destination and sources: the fused
	// handlers replay the const write first, so reads must observe it.
	cases := [][]lir.Op{
		{ // dst == const reg
			{Kind: lir.KConst, Dst: 1, Imm: 7},
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 1},
			{Kind: lir.KRetNum, A: 1},
		},
		{ // cmp reads the const it overwrites
			{Kind: lir.KConst, Dst: 1, Imm: 3},
			{Kind: lir.KCmp, Dst: 1, A: 1, B: 1, Aux: 5},
			{Kind: lir.KRetNum, A: 1},
		},
		{ // move pair with overlapping registers
			{Kind: lir.KConst, Dst: 1, Imm: 5},
			{Kind: lir.KConst, Dst: 2, Imm: 9},
			{Kind: lir.KMove, Dst: 3, A: 1},
			{Kind: lir.KMove, Dst: 1, A: 2},
			{Kind: lir.KAdd, Dst: 4, A: 3, B: 1},
			{Kind: lir.KRetNum, A: 4},
		},
		{ // sub with const on the right
			{Kind: lir.KConst, Dst: 2, Imm: 4},
			{Kind: lir.KSub, Dst: 3, A: 0, B: 2},
			{Kind: lir.KRetNum, A: 3},
		},
	}
	for i, ops := range cases {
		c := &lir.Code{Name: "alias", NumParams: 1, NumRegs: 8, Ops: ops}
		res, _, err := runBoth(t, c, []value.Value{value.Num(100)}, 0, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_ = res
	}
}

// TestFusedBranchTargetsMidStream pins target remapping: a branch into a
// region whose surrounding ops fused must land on the fused op that
// starts at the target, never inside one.
func TestFusedBranchTargetsMidStream(t *testing.T) {
	// Jump target 4 lands between two fusable pairs; the leader must keep
	// ops 4.. from being absorbed into the pair at 2..3.
	c := &lir.Code{
		Name: "split", NumParams: 1, NumRegs: 8,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},     // 0
			{Kind: lir.KJump, Target: 4},         // 1
			{Kind: lir.KConst, Dst: 1, Imm: 99},  // 2 (dead)
			{Kind: lir.KAdd, Dst: 0, A: 0, B: 1}, // 3 (dead)
			{Kind: lir.KConst, Dst: 2, Imm: 1},   // 4: leader
			{Kind: lir.KAdd, Dst: 3, A: 0, B: 2}, // 5
			{Kind: lir.KRetNum, A: 3},            // 6
		},
	}
	res, _, err := runBoth(t, c, []value.Value{value.Num(41)}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val != 42 {
		t.Fatalf("res = %v, want 42", res.Val)
	}
}

// TestFusedCallAndBail: calls dispatch through hooks with LIFO argument
// space, and an expect-object miss bails identically.
func TestFusedCallAndBail(t *testing.T) {
	c := &lir.Code{
		Name: "call", NumParams: 1, NumRegs: 6,
		ArgLists: [][]int32{{0}},
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},
			{Kind: lir.KCall, Dst: 1, A: 0, B: 0, Aux: 7},
			{Kind: lir.KConst, Dst: 2, Imm: 1},
			{Kind: lir.KAdd, Dst: 3, A: 1, B: 2},
			{Kind: lir.KRetNum, A: 3},
		},
	}
	setup := func(h *stubHooks) {
		h.callFn = func(idx int, args []value.Value) (value.Value, error) {
			return value.Num(args[0].AsNumber() * 2), nil
		}
	}
	res, _, err := runBoth(t, c, []value.Value{value.Num(20)}, 0, setup)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val != 41 {
		t.Fatalf("res = %v, want 41", res.Val)
	}
	// Call error propagates identically.
	boom := errors.New("boom")
	runBoth(t, c, []value.Value{value.Num(20)}, 0, func(h *stubHooks) {
		h.callFn = func(int, []value.Value) (value.Value, error) { return value.Value{}, boom }
	})
	// Expect-object miss bails identically.
	c2 := &lir.Code{
		Name: "callobj", NumParams: 1, NumRegs: 6,
		ArgLists: [][]int32{{0}},
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},
			{Kind: lir.KCall, Dst: 1, A: 0, B: 1, Aux: 7},
			{Kind: lir.KRetObj, A: 1},
		},
	}
	_, status, err := runBoth(t, c2, []value.Value{value.Num(1)}, 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("expect-object miss: status=%v err=%v, want bail", status, err)
	}
}

// TestFusedStepsAcrossBails: guard bailouts must report identical partial
// step counts (the engine bills them to the VM budget).
func TestFusedStepsAcrossBails(t *testing.T) {
	c := &lir.Code{
		Name: "bail", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 1, Imm: 5},
			{Kind: lir.KAdd, Dst: 2, A: 1, B: 1},
			{Kind: lir.KUnbox, Dst: 3, A: 0, Aux: 1}, // object guard: Num arg bails
			{Kind: lir.KRetNum, A: 2},
		},
	}
	res, status, err := runBoth(t, c, []value.Value{value.Num(1)}, 0, nil)
	if err != nil || status != StatusBail {
		t.Fatalf("status=%v err=%v, want bail", status, err)
	}
	if res.Steps != 3 {
		t.Fatalf("bail steps = %d, want 3 (const+add+guard)", res.Steps)
	}
}

// whileCode is the forward-branch loop shape: `while (i < n)` compiles to
// a cmp + branch-false-exit at the head (fusing to FCmpBranch) and an
// unconditional back-edge jump, with a `const; add` pair (FAddImm) in the
// body.
func whileCode() *lir.Code {
	// r0 = n (param), r1 = i, r2 = acc, r3 = cmp, r4 = const
	return &lir.Code{
		Name: "while", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},             // 0
			{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
			{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: acc = 0
			{Kind: lir.KCmp, Dst: 3, A: 1, B: 0, Aux: 1}, // 3: head: i < n
			{Kind: lir.KBranchFalse, A: 3, Target: 9},    // 4: exit
			{Kind: lir.KAdd, Dst: 2, A: 2, B: 1},         // 5: acc += i
			{Kind: lir.KConst, Dst: 4, Imm: 1},           // 6
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 4},         // 7: i = i + 1
			{Kind: lir.KJump, Target: 3},                 // 8: back edge
			{Kind: lir.KRetNum, A: 2},                    // 9
		},
	}
}

func TestFusedWhileLoopEquivalence(t *testing.T) {
	code := whileCode()
	for _, n := range []float64{0, 1, 2, 10, 500} {
		res, status, err := runBoth(t, code, []value.Value{value.Num(n)}, 0, nil)
		if err != nil || status != StatusOK {
			t.Fatalf("n=%v: %v %v", n, status, err)
		}
		if want := n * (n - 1) / 2; res.Val != want {
			t.Fatalf("sum(%v) = %v, want %v", n, res.Val, want)
		}
	}
	has := map[lir.FKind]bool{}
	for _, op := range code.Fused.Ops {
		has[op.Kind] = true
	}
	if !has[lir.FCmpBranch] || !has[lir.FAddImm] {
		t.Fatalf("while shape did not fuse FCmpBranch+FAddImm:\n%v", code.Fused.Ops)
	}
	// Budget sweep over the forward-branch shape too.
	args := []value.Value{value.Num(7)}
	full, _, err := ExecUnfused(code, args, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for max := int64(1); max <= full.Steps+2; max++ {
		runBoth(t, code, args, max, nil)
	}
}

// shuffleCode is the shape the production pipeline emits for a while
// loop after SSA destruction: a `cmp; branch-exit; enter-body` head
// triple, an accumulate+increment body, a phi-resolution move shuffle,
// and the back edge. It exercises FCmpBranchJump and FAdd2MoveNJump.
func shuffleCode() *lir.Code {
	// r0 = n, r1 = i, r2 = acc, r3 = cmp, r4/r5 = shuffle temps
	return &lir.Code{
		Name: "shuffle", NumParams: 1, NumRegs: 8,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},             // 0
			{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
			{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: acc = 0
			{Kind: lir.KConst, Dst: 6, Imm: 1},           // 3: stride
			{Kind: lir.KCmp, Dst: 3, A: 1, B: 0, Aux: 1}, // 4: head: i < n
			{Kind: lir.KBranchFalse, A: 3, Target: 12},   // 5: exit
			{Kind: lir.KJump, Target: 7},                 // 6: enter body
			{Kind: lir.KAdd, Dst: 4, A: 2, B: 1},         // 7: acc' = acc + i
			{Kind: lir.KAdd, Dst: 5, A: 1, B: 6},         // 8: i' = i + 1
			{Kind: lir.KMove, Dst: 2, A: 4},              // 9: acc = acc'
			{Kind: lir.KMove, Dst: 1, A: 5},              // 10: i = i'
			{Kind: lir.KJump, Target: 4},                 // 11: back edge
			{Kind: lir.KRetNum, A: 2},                    // 12
		},
	}
}

func TestFusedShuffleLoopEquivalence(t *testing.T) {
	code := shuffleCode()
	for _, n := range []float64{0, 1, 2, 10, 500} {
		res, status, err := runBoth(t, code, []value.Value{value.Num(n)}, 0, nil)
		if err != nil || status != StatusOK {
			t.Fatalf("n=%v: %v %v", n, status, err)
		}
		if want := n * (n - 1) / 2; res.Val != want {
			t.Fatalf("sum(%v) = %v, want %v", n, res.Val, want)
		}
	}
	has := map[lir.FKind]bool{}
	for _, op := range code.Fused.Ops {
		has[op.Kind] = true
	}
	if !has[lir.FCmpBranchJump] || !has[lir.FAdd2MoveNJump] {
		t.Fatalf("pipeline while shape did not fuse head triple + full body:\n%v", code.Fused.Ops)
	}
	// Budget sweep: identical results, steps, status at every cut-off.
	args := []value.Value{value.Num(7)}
	full, _, err := ExecUnfused(code, args, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for max := int64(1); max <= full.Steps+2; max++ {
		runBoth(t, code, args, max, nil)
	}
}

// moveChainCode exercises FMoveN (a bare shuffle, no back edge) and
// FArithN (a straight-line arithmetic run of four or more ops).
func moveChainCode() *lir.Code {
	return &lir.Code{
		Name: "movechain", NumParams: 1, NumRegs: 10,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 0, A: 0},     // 0: x
			{Kind: lir.KConst, Dst: 1, Imm: 3},   // 1
			{Kind: lir.KMul, Dst: 2, A: 0, B: 1}, // 2: 3x — chain start
			{Kind: lir.KSub, Dst: 3, A: 2, B: 0}, // 3: 2x
			{Kind: lir.KMul, Dst: 4, A: 3, B: 3}, // 4: 4x^2
			{Kind: lir.KDiv, Dst: 5, A: 4, B: 1}, // 5: 4x^2/3
			{Kind: lir.KNeg, Dst: 6, A: 5},       // 6: chain of 5
			{Kind: lir.KMove, Dst: 7, A: 6},      // 7: shuffle of 3
			{Kind: lir.KMove, Dst: 8, A: 2},      // 8
			{Kind: lir.KMove, Dst: 9, A: 7},      // 9
			{Kind: lir.KAdd, Dst: 9, A: 9, B: 8}, // 10
			{Kind: lir.KRetNum, A: 9},            // 11
		},
	}
}

func TestFusedMoveAndArithChains(t *testing.T) {
	code := moveChainCode()
	for _, x := range []float64{0, 1, -2.5, 1e9} {
		res, status, err := runBoth(t, code, []value.Value{value.Num(x)}, 0, nil)
		if err != nil || status != StatusOK {
			t.Fatalf("x=%v: %v %v", x, status, err)
		}
		if want := -(4 * x * x / 3) + 3*x; res.Val != want {
			t.Fatalf("f(%v) = %v, want %v", x, res.Val, want)
		}
	}
	has := map[lir.FKind]bool{}
	for _, op := range code.Fused.Ops {
		has[op.Kind] = true
	}
	if !has[lir.FArithN] || !has[lir.FMoveN] {
		t.Fatalf("chain shapes did not fuse FArithN+FMoveN:\n%v", code.Fused.Ops)
	}
	args := []value.Value{value.Num(4)}
	full, _, err := ExecUnfused(code, args, newStub(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for max := int64(1); max <= full.Steps+2; max++ {
		runBoth(t, code, args, max, nil)
	}
}

// execTableOnly mirrors execFused but dispatches every op through the
// handler table, bypassing the fast-path switch. It exists so the manually
// inlined switch cases can be held bit-identical to their table handlers.
func execTableOnly(code *lir.Code, args []value.Value, h Hooks, maxOps int64) (Result, Status, error) {
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs := make([]float64, code.NumRegs)
	tags := make([]Tag, code.NumRegs)
	boxParams(code, args, regs, tags)
	f := code.Fused
	st := &fstate{
		code: code, f: f, regs: regs, tags: tags, h: h,
		arena: h.Arena(), maxOps: maxOps, delegate: -1,
	}
	pc := int32(0)
	st.checks = 1
	if int64(f.Cost[0]) > maxOps {
		st.delegate = 0
		pc = -1
	}
	for pc >= 0 {
		op := &f.Ops[pc]
		pc = handlerTab[op.Kind](st, op, pc)
	}
	if st.delegate >= 0 {
		res, status, err := execSwitch(code, regs, tags, h, maxOps, nil, int(st.delegate), st.steps)
		res.Checks += st.checks
		return res, status, err
	}
	st.res.Steps = st.steps
	st.res.Checks = st.checks
	return st.res, st.status, st.err
}

// TestTableDispatchMatchesFastPath is the drift guard for the manually
// inlined fast-path cases in execFused: pure table dispatch must agree
// with Exec bit-for-bit — results, Steps AND Checks — across both loop
// shapes and every budget cut-off.
func TestTableDispatchMatchesFastPath(t *testing.T) {
	for _, mk := range []func() *lir.Code{loopCode, whileCode, shuffleCode, moveChainCode} {
		code := mk()
		code.Fused = lir.Fuse(code)
		args := []value.Value{value.Num(9)}
		full, _, err := Exec(code, args, newStub(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for max := int64(0); max <= full.Steps+2; max++ {
			rf, sf, ef := Exec(code, args, newStub(), max, nil)
			rt, stt, et := execTableOnly(code, args, newStub(), max)
			if rf != rt || sf != stt || !errEq(ef, et) {
				t.Fatalf("%s maxOps=%d: fast path (%+v,%v,%v) table (%+v,%v,%v)",
					code.Name, max, rf, sf, ef, rt, stt, et)
			}
		}
	}
}

// TestFastPathConstants pins the fast-path case constants to the canonical
// pass-through mapping.
func TestFastPathConstants(t *testing.T) {
	pins := map[lir.FKind]lir.Kind{
		fpConst: lir.KConst, fpMove: lir.KMove, fpAdd: lir.KAdd,
		fpSub: lir.KSub, fpMul: lir.KMul, fpDiv: lir.KDiv,
		fpCmp: lir.KCmp, fpJump: lir.KJump, fpBranchFalse: lir.KBranchFalse,
		fpUnbox: lir.KUnbox, fpGuardType: lir.KGuardType,
		fpElems: lir.KElemsHandle, fpInitLen: lir.KInitLen,
		fpBounds: lir.KBoundsCheck, fpLoadElem: lir.KLoadElem,
		fpStoreElem: lir.KStoreElem, fpRetNum: lir.KRetNum,
		fpRetObj: lir.KRetObj, fpRetUndef: lir.KRetUndef,
		fpNop: lir.KNop, fpMoveTag: lir.KMoveTag,
		fpLoadGlobal: lir.KLoadGlobal, fpStoreGNum: lir.KStoreGlobalNum,
		fpStoreGObj: lir.KStoreGlobalObj, fpCall: lir.KCall,
		fpMod: lir.KMod, fpPow: lir.KPow, fpBitAnd: lir.KBitAnd,
		fpBitOr: lir.KBitOr, fpBitXor: lir.KBitXor, fpShl: lir.KShl,
		fpShr: lir.KShr, fpUshr: lir.KUshr, fpNeg: lir.KNeg,
		fpNot: lir.KNot, fpMath: lir.KMath, fpElemsRaw: lir.KElemsRaw,
		fpSetLen: lir.KSetLen, fpPush: lir.KPush, fpPop: lir.KPop,
		fpNewArr: lir.KNewArr, fpAddrOf: lir.KAddrOf, fpCodeBase: lir.KCodeBase,
	}
	for fk, k := range pins {
		if lir.PassThrough(k) != fk {
			t.Errorf("fast-path constant for %v is %d, want %d", k, fk, lir.PassThrough(k))
		}
	}
}

// TestFusedChecksReported: the fused executor reports its amortized check
// count; the reference loop reports none.
func TestFusedChecksReported(t *testing.T) {
	code := loopCode()
	code.Fused = lir.Fuse(code)
	args := []value.Value{value.Num(50)}
	rf, _, _ := Exec(code, args, newStub(), 0, nil)
	ru, _, _ := ExecUnfused(code, args, newStub(), 0, nil)
	if rf.Checks == 0 {
		t.Fatal("fused run reported no budget checks")
	}
	if ru.Checks != 0 {
		t.Fatalf("unfused run reported %d checks, want 0", ru.Checks)
	}
	// One check at entry plus one per taken back edge: far fewer than one
	// per op.
	if rf.Checks >= rf.Steps/2 {
		t.Fatalf("checks %d not amortized vs %d steps", rf.Checks, rf.Steps)
	}
}

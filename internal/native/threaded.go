// The fused, direct-threaded executor: every lir.FOp is dispatched through
// a per-kind handler table — an indirect call with the pc advance baked
// into the handler's return value — instead of the monolithic switch in
// execSwitch. Superinstruction handlers replay their constituent source
// ops' reads, writes and step charges in original order, so execution is
// bit-identical to the unfused loop, including register aliasing, bail
// points, crash points and Result.Steps.
//
// Go has no computed goto and an indirect call through a func table costs
// more than a jump-table switch, so the dispatch loop carries a fast path:
// a constant-case switch over the hot kinds that calls the same named
// handler functions directly (inlinable), with the handler table as the
// complete general mechanism behind it. The exhaustiveness guard holds the
// table — not the fast path — to completeness, so a new kind is always
// executable before it is fast.
//
// The step budget is amortized to one check per basic block: handlers
// charge steps without comparing against the budget, and only function
// entry and taken jumps/branches check — against the precomputed
// worst-case straight-line cost to the next check point (FusedCode.Cost).
// When the budget might be exceeded before the next check, the executor
// delegates the rest of the run to execSwitch over the same register file
// at the equivalent source pc, so budget exhaustion fires on exactly the
// op (and step count) the unfused executor would fail on.
package native

import (
	"fmt"
	"math"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

// fstate is the mutable state of one fused execution frame.
type fstate struct {
	code   *lir.Code
	f      *lir.FusedCode
	regs   []float64
	tags   []Tag
	h      Hooks
	arena  *heap.Arena
	pool   *Pool
	maxOps int64
	steps  int64
	checks int64

	// Exit state, read after the dispatch loop terminates (pc < 0).
	res      Result
	status   Status
	err      error
	delegate int32 // source pc to resume unfused at; -1 = none
}

// fhandler executes one fused op and returns the next fused pc (-1 exits
// the dispatch loop).
type fhandler func(st *fstate, op *lir.FOp, pc int32) int32

// handlerTab maps every FKind to its handler. Populated in init. The table
// is sized 256 so indexing by the uint8 kind needs no bounds check in the
// dispatch loop; entries at and above FKindCount alias the invalid-op
// handler.
var handlerTab [256]fhandler

// wiredHandlers records which FKinds received a real handler in init —
// the exhaustiveness guard's ground truth (the table itself defaults every
// slot to the invalid handler, so non-nil-ness proves nothing).
var wiredHandlers [lir.FKindCount]bool

// Constant pass-through kinds for the dispatch fast path: case values must
// be constants to compile into a jump table, and lir.PassThrough is a
// function. TestFastPathConstants pins each to lir.PassThrough of its kind.
const (
	fpConst       = lir.FKind(lir.KConst) + 1
	fpMove        = lir.FKind(lir.KMove) + 1
	fpAdd         = lir.FKind(lir.KAdd) + 1
	fpSub         = lir.FKind(lir.KSub) + 1
	fpMul         = lir.FKind(lir.KMul) + 1
	fpDiv         = lir.FKind(lir.KDiv) + 1
	fpCmp         = lir.FKind(lir.KCmp) + 1
	fpJump        = lir.FKind(lir.KJump) + 1
	fpBranchFalse = lir.FKind(lir.KBranchFalse) + 1
	fpUnbox       = lir.FKind(lir.KUnbox) + 1
	fpGuardType   = lir.FKind(lir.KGuardType) + 1
	fpElems       = lir.FKind(lir.KElemsHandle) + 1
	fpInitLen     = lir.FKind(lir.KInitLen) + 1
	fpBounds      = lir.FKind(lir.KBoundsCheck) + 1
	fpLoadElem    = lir.FKind(lir.KLoadElem) + 1
	fpStoreElem   = lir.FKind(lir.KStoreElem) + 1
	fpRetNum      = lir.FKind(lir.KRetNum) + 1
	fpRetObj      = lir.FKind(lir.KRetObj) + 1
	fpRetUndef    = lir.FKind(lir.KRetUndef) + 1
	fpNop         = lir.FKind(lir.KNop) + 1
	fpMoveTag     = lir.FKind(lir.KMoveTag) + 1
	fpLoadGlobal  = lir.FKind(lir.KLoadGlobal) + 1
	fpStoreGNum   = lir.FKind(lir.KStoreGlobalNum) + 1
	fpStoreGObj   = lir.FKind(lir.KStoreGlobalObj) + 1
	fpCall        = lir.FKind(lir.KCall) + 1
	fpMod         = lir.FKind(lir.KMod) + 1
	fpPow         = lir.FKind(lir.KPow) + 1
	fpBitAnd      = lir.FKind(lir.KBitAnd) + 1
	fpBitOr       = lir.FKind(lir.KBitOr) + 1
	fpBitXor      = lir.FKind(lir.KBitXor) + 1
	fpShl         = lir.FKind(lir.KShl) + 1
	fpShr         = lir.FKind(lir.KShr) + 1
	fpUshr        = lir.FKind(lir.KUshr) + 1
	fpNeg         = lir.FKind(lir.KNeg) + 1
	fpNot         = lir.FKind(lir.KNot) + 1
	fpMath        = lir.FKind(lir.KMath) + 1
	fpElemsRaw    = lir.FKind(lir.KElemsRaw) + 1
	fpSetLen      = lir.FKind(lir.KSetLen) + 1
	fpPush        = lir.FKind(lir.KPush) + 1
	fpPop         = lir.FKind(lir.KPop) + 1
	fpNewArr      = lir.FKind(lir.KNewArr) + 1
	fpAddrOf      = lir.FKind(lir.KAddrOf) + 1
	fpCodeBase    = lir.FKind(lir.KCodeBase) + 1
)

func truthyF(v float64) bool { return v != 0 && v == v }

// jumpTo performs the amortized budget check at a taken control transfer:
// when the worst-case straight-line cost from the target could exceed the
// budget, execution is delegated to the unfused reference loop.
func (st *fstate) jumpTo(t int32) int32 {
	st.checks++
	if st.steps+int64(st.f.Cost[t]) > st.maxOps {
		st.delegate = st.f.SrcPC[t]
		return -1
	}
	return t
}

func (st *fstate) bail() int32 {
	st.status = StatusBail
	return -1
}

func (st *fstate) fail(err error) int32 {
	st.err = err
	return -1
}

// execFused runs the fused stream over an already-boxed register file.
//
// The dispatch loop keeps the hot interpreter state — steps, checks, pc —
// in locals so the compiler can register-allocate it, exactly like the
// unfused switch loop does; going through st (which escapes into the
// handler table's indirect calls) would cost a load+store per op and eat
// the entire fusion win on low-fusion code. Hot kinds are therefore
// spelled out inline in a constant-case switch (a jump table); each case
// is a verbatim copy of its named table handler, operating on the locals
// instead of st. TestTableDispatchMatchesFastPath holds the two in
// lockstep. Everything else flushes the locals into st, dispatches
// through the handler table — the complete general mechanism — and
// reloads.
func execFused(code *lir.Code, regs []float64, tags []Tag, h Hooks, maxOps int64, pool *Pool) (Result, Status, error) {
	return execFusedFrom(code, regs, tags, h, maxOps, pool, 0)
}

// execFusedFrom is execFused starting at fused op pc0: 0 for a normal call,
// an OSR entry's fused index for a mid-loop transfer (ExecOSR).
func execFusedFrom(code *lir.Code, regs []float64, tags []Tag, h Hooks, maxOps int64, pool *Pool, pc0 int32) (Result, Status, error) {
	f := code.Fused
	ops := f.Ops
	cost := f.Cost
	arena := h.Arena()
	// The fstate exists only for the handler table; the fast path keeps
	// everything — including the exit state — in locals, so short native
	// activations that never touch a rare kind never pay for the frame.
	var st *fstate
	var res Result
	var status Status
	var errv error
	delegate := int32(-1)
	var steps int64
	checks := int64(1)
	pc := pc0
	// Entry check: the first check point covers the straight-line prefix.
	// When pc0 is an OSR entry this can delegate onto the KOSRPoint marker
	// itself; that is safe by construction — materialization already
	// happened on the shared register file before dispatch, the marker is a
	// zero-step nop in both executors, and the unfused loop resumes at the
	// same source pc with identical state, so the frame is never
	// re-materialized (see TestDelegationOntoOSREntry).
	if int64(cost[pc0]) > maxOps {
		delegate = f.SrcPC[pc0]
		pc = -1
	}
	for pc >= 0 {
		op := &ops[pc]
		switch op.Kind {
		case fpConst:
			steps++
			regs[op.Dst] = op.Imm
			pc++
		case fpMove:
			steps++
			regs[op.Dst] = regs[op.A]
			pc++
		case fpAdd:
			steps++
			regs[op.Dst] = regs[op.A] + regs[op.B]
			pc++
		case fpSub:
			steps++
			regs[op.Dst] = regs[op.A] - regs[op.B]
			pc++
		case fpMul:
			steps++
			regs[op.Dst] = regs[op.A] * regs[op.B]
			pc++
		case fpDiv:
			steps++
			regs[op.Dst] = regs[op.A] / regs[op.B]
			pc++
		case fpCmp:
			steps++
			regs[op.Dst] = cmpEval(op.Aux, regs[op.A], regs[op.B])
			pc++
		case fpJump:
			steps++
			checks++
			t := op.Target
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		case fpBranchFalse:
			steps++
			if !truthyF(regs[op.A]) {
				checks++
				t := op.Target
				if steps+int64(cost[t]) > maxOps {
					delegate = f.SrcPC[t]
					pc = -1
				} else {
					pc = t
				}
			} else {
				pc++
			}
		case fpUnbox, fpGuardType:
			steps++
			tag := tags[op.A]
			if op.Aux == 1 {
				if tag != TagObject {
					status = StatusBail
					pc = -1
					break
				}
			} else {
				if tag != TagNumber && tag != TagBoolean {
					status = StatusBail
					pc = -1
					break
				}
			}
			regs[op.Dst] = regs[op.A]
			tags[op.Dst] = tag
			pc++
		case fpElems:
			steps++
			elems, ok := arena.Elems(int32(regs[op.A]))
			if !ok {
				status = StatusBail
				pc = -1
				break
			}
			regs[op.Dst] = float64(elems)
			pc++
		case fpInitLen:
			steps++
			v, crash := arena.LengthAt(int(regs[op.A]))
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.Dst] = v
			pc++
		case fpBounds:
			steps++
			idx, length := regs[op.A], regs[op.B]
			if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
				status = StatusBail
				pc = -1
				break
			}
			pc++
		case fpLoadElem:
			steps++
			addr := int(regs[op.A]) + int(regs[op.B]) + int(op.Aux)
			v, crash := arena.RawLoad(addr)
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.Dst] = v
			pc++
		case fpStoreElem:
			steps++
			addr := int(regs[op.A]) + int(regs[op.B]) + int(op.Aux)
			if crash := arena.RawStore(addr, regs[op.C]); crash != nil {
				errv = crash
				pc = -1
				break
			}
			pc++
		case fpRetNum:
			steps++
			res = Result{Kind: ResNum, Val: regs[op.A]}
			pc = -1
		case fpRetObj:
			steps++
			res = Result{Kind: ResObject, Val: regs[op.A]}
			pc = -1
		case fpRetUndef:
			steps++
			res = Result{Kind: ResUndef}
			pc = -1
		case fpNop:
			steps++
			pc++
		case fpMod:
			steps++
			regs[op.Dst] = value.Mod(regs[op.A], regs[op.B])
			pc++
		case fpPow:
			steps++
			regs[op.Dst] = math.Pow(regs[op.A], regs[op.B])
			pc++
		case fpBitAnd:
			steps++
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) & value.ToInt32(regs[op.B]))
			pc++
		case fpBitOr:
			steps++
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) | value.ToInt32(regs[op.B]))
			pc++
		case fpBitXor:
			steps++
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) ^ value.ToInt32(regs[op.B]))
			pc++
		case fpShl:
			steps++
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) << (value.ToUint32(regs[op.B]) & 31))
			pc++
		case fpShr:
			steps++
			regs[op.Dst] = float64(value.ToInt32(regs[op.A]) >> (value.ToUint32(regs[op.B]) & 31))
			pc++
		case fpUshr:
			steps++
			regs[op.Dst] = float64(value.ToUint32(regs[op.A]) >> (value.ToUint32(regs[op.B]) & 31))
			pc++
		case fpNeg:
			steps++
			regs[op.Dst] = -regs[op.A]
			pc++
		case fpNot:
			steps++
			if truthyF(regs[op.A]) {
				regs[op.Dst] = 0
			} else {
				regs[op.Dst] = 1
			}
			pc++
		case fpMath:
			steps++
			regs[op.Dst] = mathFunc(bytecode.Builtin(op.Aux), regs[op.A], regs[op.B], h)
			pc++
		case fpElemsRaw:
			steps++
			hd := int64(math.Trunc(regs[op.A]))
			elems, ok := arena.Elems(int32(hd))
			if !ok || regs[op.A] != math.Trunc(regs[op.A]) {
				_, crash := arena.RawLoad(int(hd))
				if crash != nil {
					errv = crash
					pc = -1
					break
				}
				regs[op.Dst] = math.Trunc(regs[op.A])
				pc++
				break
			}
			regs[op.Dst] = float64(elems)
			pc++
		case fpSetLen:
			steps++
			n := regs[op.B]
			if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
				status = StatusBail
				pc = -1
				break
			}
			if err := arena.SetLength(int32(regs[op.A]), int(n)); err != nil {
				errv = err
				pc = -1
				break
			}
			pc++
		case fpPush:
			steps++
			n, err := arena.Push(int32(regs[op.A]), regs[op.B])
			if err != nil {
				errv = err
				pc = -1
				break
			}
			regs[op.Dst] = float64(n)
			pc++
		case fpPop:
			steps++
			v, ok := arena.Pop(int32(regs[op.A]))
			if !ok {
				status = StatusBail
				pc = -1
				break
			}
			regs[op.Dst] = v
			pc++
		case fpNewArr:
			steps++
			n := regs[op.A]
			if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
				status = StatusBail
				pc = -1
				break
			}
			hnd, err := arena.Alloc(int(n))
			if err != nil {
				errv = err
				pc = -1
				break
			}
			regs[op.Dst] = float64(hnd)
			pc++
		case fpAddrOf:
			steps++
			elems, ok := arena.Elems(int32(regs[op.A]))
			if !ok {
				status = StatusBail
				pc = -1
				break
			}
			regs[op.Dst] = float64(elems)
			pc++
		case fpCodeBase:
			steps++
			regs[op.Dst] = float64(arena.CodeBase())
			pc++
		case fpMoveTag:
			steps++
			regs[op.Dst] = regs[op.A]
			tags[op.Dst] = tags[op.A]
			pc++
		case fpLoadGlobal:
			steps++
			v := h.GlobalGet(int(op.Aux))
			switch v.Type() {
			case value.Number:
				regs[op.Dst], tags[op.Dst] = v.AsNumber(), TagNumber
			case value.Boolean:
				regs[op.Dst], tags[op.Dst] = v.AsNumber(), TagBoolean
			case value.Array:
				regs[op.Dst], tags[op.Dst] = float64(v.Handle()), TagObject
			default:
				regs[op.Dst], tags[op.Dst] = math.NaN(), TagOther
			}
			pc++
		case fpStoreGNum:
			steps++
			h.GlobalSet(int(op.Aux), value.Num(regs[op.A]))
			pc++
		case fpStoreGObj:
			steps++
			h.GlobalSet(int(op.Aux), value.ArrayRef(int32(regs[op.A])))
			pc++
		case fpCall:
			steps++
			argRegs := code.ArgLists[op.A]
			var callArgs []value.Value
			base := -1
			if pool != nil {
				base = len(pool.args)
				for range argRegs {
					pool.args = append(pool.args, value.Value{})
				}
				callArgs = pool.args[base : base+len(argRegs)]
			} else {
				callArgs = make([]value.Value, len(argRegs))
			}
			for i, ar := range argRegs {
				if op.C&(1<<i) != 0 {
					callArgs[i] = value.ArrayRef(int32(regs[ar]))
				} else {
					callArgs[i] = value.Num(regs[ar])
				}
			}
			cres, cerr := h.CallFunction(int(op.Aux), callArgs)
			if base >= 0 {
				pool.args = pool.args[:base]
			}
			if cerr != nil {
				errv = cerr
				pc = -1
				break
			}
			if op.B == 1 { // expect object
				if !cres.IsArray() {
					status = StatusBail
					pc = -1
					break
				}
				regs[op.Dst], tags[op.Dst] = float64(cres.Handle()), TagObject
				pc++
				break
			}
			switch cres.Type() {
			case value.Number, value.Boolean:
				regs[op.Dst], tags[op.Dst] = cres.ToNumber(), TagNumber
				pc++
			case value.Undefined:
				regs[op.Dst], tags[op.Dst] = math.NaN(), TagNumber
				pc++
			default:
				status = StatusBail
				pc = -1
			}
		case lir.FAddImm:
			steps += 2
			regs[op.C] = op.Imm
			regs[op.Dst] = regs[op.A] + regs[op.B]
			pc++
		case lir.FSubImm:
			steps += 2
			regs[op.C] = op.Imm
			regs[op.Dst] = regs[op.A] - regs[op.B]
			pc++
		case lir.FMulImm:
			steps += 2
			regs[op.C] = op.Imm
			regs[op.Dst] = regs[op.A] * regs[op.B]
			pc++
		case lir.FCmpImm:
			steps += 2
			regs[op.C] = op.Imm
			regs[op.Dst] = cmpEval(op.Aux, regs[op.A], regs[op.B])
			pc++
		case lir.FCmpBranch:
			steps += 2
			r := cmpEval(op.Aux, regs[op.A], regs[op.B])
			regs[op.Dst] = r
			if r == 0 {
				checks++
				t := op.Target
				if steps+int64(cost[t]) > maxOps {
					delegate = f.SrcPC[t]
					pc = -1
				} else {
					pc = t
				}
			} else {
				pc++
			}
		case lir.FCmpImmBranch:
			steps += 3
			regs[op.C] = op.Imm
			r := cmpEval(op.Aux, regs[op.A], regs[op.B])
			regs[op.Dst] = r
			if r == 0 {
				checks++
				t := op.Target
				if steps+int64(cost[t]) > maxOps {
					delegate = f.SrcPC[t]
					pc = -1
				} else {
					pc = t
				}
			} else {
				pc++
			}
		case lir.FIncCmpBranch:
			steps += 3
			regs[op.D] = regs[op.A] + regs[op.B]
			l, r := regs[op.D], regs[op.E]
			if op.Aux2&1 != 0 {
				l, r = r, l
			}
			v := cmpEval(op.Aux, l, r)
			regs[op.Dst] = v
			if v == 0 {
				checks++
				t := op.Target
				if steps+int64(cost[t]) > maxOps {
					delegate = f.SrcPC[t]
					pc = -1
				} else {
					pc = t
				}
			} else {
				pc++
			}
		case lir.FAddImmCmpBranch:
			steps += 4
			regs[op.C] = op.Imm
			regs[op.D] = regs[op.A] + regs[op.B]
			l, r := regs[op.D], regs[op.E]
			if op.Aux2&1 != 0 {
				l, r = r, l
			}
			v := cmpEval(op.Aux, l, r)
			regs[op.Dst] = v
			if v == 0 {
				checks++
				t := op.Target
				if steps+int64(cost[t]) > maxOps {
					delegate = f.SrcPC[t]
					pc = -1
				} else {
					pc = t
				}
			} else {
				pc++
			}
		case lir.FBoundsLoad:
			steps++
			idx, length := regs[op.A], regs[op.B]
			if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
				status = StatusBail
				pc = -1
				break
			}
			steps++
			addr := int(regs[op.C]) + int(regs[op.D]) + int(op.Aux)
			v, crash := arena.RawLoad(addr)
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.Dst] = v
			pc++
		case lir.FBoundsStore:
			steps++
			idx, length := regs[op.A], regs[op.B]
			if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
				status = StatusBail
				pc = -1
				break
			}
			steps++
			addr := int(regs[op.C]) + int(regs[op.D]) + int(op.Aux)
			if crash := arena.RawStore(addr, regs[op.E]); crash != nil {
				errv = crash
				pc = -1
				break
			}
			pc++
		case lir.FLenBoundsLoad:
			steps++
			length, crash := arena.LengthAt(int(regs[op.D]))
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.C] = length
			steps++
			idx := regs[op.A]
			if !(idx >= 0 && idx < regs[op.C] && idx == math.Trunc(idx)) {
				status = StatusBail
				pc = -1
				break
			}
			steps++
			addr := int(regs[op.D]) + int(regs[op.A]) + int(op.Aux)
			v, crash := arena.RawLoad(addr)
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.Dst] = v
			pc++
		case lir.FLenBoundsStore:
			steps++
			length, crash := arena.LengthAt(int(regs[op.D]))
			if crash != nil {
				errv = crash
				pc = -1
				break
			}
			regs[op.C] = length
			steps++
			idx := regs[op.A]
			if !(idx >= 0 && idx < regs[op.C] && idx == math.Trunc(idx)) {
				status = StatusBail
				pc = -1
				break
			}
			steps++
			addr := int(regs[op.D]) + int(regs[op.A]) + int(op.Aux)
			if crash := arena.RawStore(addr, regs[op.E]); crash != nil {
				errv = crash
				pc = -1
				break
			}
			pc++
		case lir.FMove2:
			steps += 2
			regs[op.Dst] = regs[op.A]
			regs[op.C] = regs[op.D]
			pc++
		case lir.FMoveN:
			k := op.Aux2
			steps += int64(k)
			pairs := f.MovePairs[op.Aux : op.Aux+k*2]
			for i := 0; i < len(pairs); i += 2 {
				regs[pairs[i]] = regs[pairs[i+1]]
			}
			pc++
		case lir.FMoveNJump:
			k := op.Aux2
			steps += int64(k) + 1
			pairs := f.MovePairs[op.Aux : op.Aux+k*2]
			for i := 0; i < len(pairs); i += 2 {
				regs[pairs[i]] = regs[pairs[i+1]]
			}
			checks++
			t := op.Target
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		case lir.FAdd2:
			steps += 2
			regs[op.Dst] = regs[op.A] + regs[op.B]
			regs[op.C] = regs[op.D] + regs[op.E]
			pc++
		case lir.FAddMoveNJump:
			m := op.Aux2
			steps += int64(m) + 2
			regs[op.Dst] = regs[op.A] + regs[op.B]
			pairs := f.MovePairs[op.Aux : op.Aux+m*2]
			for i := 0; i < len(pairs); i += 2 {
				regs[pairs[i]] = regs[pairs[i+1]]
			}
			checks++
			t := op.Target
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		case lir.FAdd2MoveNJump:
			m := op.Aux2
			steps += int64(m) + 3
			regs[op.Dst] = regs[op.A] + regs[op.B]
			regs[op.C] = regs[op.D] + regs[op.E]
			pairs := f.MovePairs[op.Aux : op.Aux+m*2]
			for i := 0; i < len(pairs); i += 2 {
				regs[pairs[i]] = regs[pairs[i+1]]
			}
			checks++
			t := op.Target
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		case lir.FArithN:
			steps += int64(op.Aux2)
			runArithChain(f, regs, op)
			pc++
		case lir.FArithNJump:
			steps += int64(op.Aux2) + 1
			runArithChain(f, regs, op)
			checks++
			t := op.Target
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		case lir.FCmpBranchJump:
			r := cmpEval(op.Aux, regs[op.A], regs[op.B])
			regs[op.Dst] = r
			t := op.C
			if r == 0 {
				steps += 2
				t = op.Target
			} else {
				steps += 3
			}
			checks++
			if steps+int64(cost[t]) > maxOps {
				delegate = f.SrcPC[t]
				pc = -1
			} else {
				pc = t
			}
		default:
			if st == nil {
				st = pool.getFstate()
				*st = fstate{
					code: code, f: f, regs: regs, tags: tags, h: h,
					arena: arena, pool: pool, maxOps: maxOps, delegate: -1,
				}
			}
			st.steps, st.checks = steps, checks
			pc = handlerTab[op.Kind](st, op, pc)
			steps, checks = st.steps, st.checks
			if pc < 0 {
				res, status, errv, delegate = st.res, st.status, st.err, st.delegate
			}
		}
	}
	if st != nil {
		pool.putFstate(st)
	}
	if delegate >= 0 {
		dres, dstatus, derr := execSwitch(code, regs, tags, h, maxOps, pool, int(delegate), steps)
		dres.Checks += checks
		return dres, dstatus, derr
	}
	res.Steps = steps
	res.Checks = checks
	return res, status, errv
}

// ---- pass-through handlers (one source op each) ----

func hInvalid(st *fstate, op *lir.FOp, pc int32) int32 {
	return st.fail(fmt.Errorf("native: invalid fused op at %d in %s", pc, st.code.Name))
}

func hNop(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	return pc + 1
}

func hConst(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = op.Imm
	return pc + 1
}

func hMove(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A]
	return pc + 1
}

func hMoveTag(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A]
	st.tags[op.Dst] = st.tags[op.A]
	return pc + 1
}

func hAdd(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A] + st.regs[op.B]
	return pc + 1
}

func hSub(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A] - st.regs[op.B]
	return pc + 1
}

func hMul(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A] * st.regs[op.B]
	return pc + 1
}

func hDiv(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = st.regs[op.A] / st.regs[op.B]
	return pc + 1
}

func hMod(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = value.Mod(st.regs[op.A], st.regs[op.B])
	return pc + 1
}

func hPow(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = math.Pow(st.regs[op.A], st.regs[op.B])
	return pc + 1
}

func hBitAnd(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToInt32(st.regs[op.A]) & value.ToInt32(st.regs[op.B]))
	return pc + 1
}

func hBitOr(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToInt32(st.regs[op.A]) | value.ToInt32(st.regs[op.B]))
	return pc + 1
}

func hBitXor(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToInt32(st.regs[op.A]) ^ value.ToInt32(st.regs[op.B]))
	return pc + 1
}

func hShl(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToInt32(st.regs[op.A]) << (value.ToUint32(st.regs[op.B]) & 31))
	return pc + 1
}

func hShr(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToInt32(st.regs[op.A]) >> (value.ToUint32(st.regs[op.B]) & 31))
	return pc + 1
}

func hUshr(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(value.ToUint32(st.regs[op.A]) >> (value.ToUint32(st.regs[op.B]) & 31))
	return pc + 1
}

func hNeg(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = -st.regs[op.A]
	return pc + 1
}

func hNot(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	if truthyF(st.regs[op.A]) {
		st.regs[op.Dst] = 0
	} else {
		st.regs[op.Dst] = 1
	}
	return pc + 1
}

func hCmp(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = cmpEval(op.Aux, st.regs[op.A], st.regs[op.B])
	return pc + 1
}

func hMath(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = mathFunc(bytecode.Builtin(op.Aux), st.regs[op.A], st.regs[op.B], st.h)
	return pc + 1
}

func hJump(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	return st.jumpTo(op.Target)
}

func hBranchFalse(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	if !truthyF(st.regs[op.A]) {
		return st.jumpTo(op.Target)
	}
	return pc + 1
}

// hGuard serves both KUnbox and KGuardType (identical semantics).
func hGuard(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	tag := st.tags[op.A]
	if op.Aux == 1 {
		if tag != TagObject {
			return st.bail()
		}
	} else {
		if tag != TagNumber && tag != TagBoolean {
			return st.bail()
		}
	}
	st.regs[op.Dst] = st.regs[op.A]
	st.tags[op.Dst] = tag
	return pc + 1
}

func hElemsHandle(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	elems, ok := st.arena.Elems(int32(st.regs[op.A]))
	if !ok {
		return st.bail()
	}
	st.regs[op.Dst] = float64(elems)
	return pc + 1
}

func hElemsRaw(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	h := int64(math.Trunc(st.regs[op.A]))
	elems, ok := st.arena.Elems(int32(h))
	if !ok || st.regs[op.A] != math.Trunc(st.regs[op.A]) {
		_, crash := st.arena.RawLoad(int(h))
		if crash != nil {
			return st.fail(crash)
		}
		st.regs[op.Dst] = math.Trunc(st.regs[op.A])
		return pc + 1
	}
	st.regs[op.Dst] = float64(elems)
	return pc + 1
}

func hInitLen(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	v, crash := st.arena.LengthAt(int(st.regs[op.A]))
	if crash != nil {
		return st.fail(crash)
	}
	st.regs[op.Dst] = v
	return pc + 1
}

func hBoundsCheck(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	idx, length := st.regs[op.A], st.regs[op.B]
	if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
		return st.bail()
	}
	return pc + 1
}

func hLoadElem(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	addr := int(st.regs[op.A]) + int(st.regs[op.B]) + int(op.Aux)
	v, crash := st.arena.RawLoad(addr)
	if crash != nil {
		return st.fail(crash)
	}
	st.regs[op.Dst] = v
	return pc + 1
}

func hStoreElem(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	addr := int(st.regs[op.A]) + int(st.regs[op.B]) + int(op.Aux)
	if crash := st.arena.RawStore(addr, st.regs[op.C]); crash != nil {
		return st.fail(crash)
	}
	return pc + 1
}

func hSetLen(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	n := st.regs[op.B]
	if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
		return st.bail()
	}
	if err := st.arena.SetLength(int32(st.regs[op.A]), int(n)); err != nil {
		return st.fail(err)
	}
	return pc + 1
}

func hPush(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	n, err := st.arena.Push(int32(st.regs[op.A]), st.regs[op.B])
	if err != nil {
		return st.fail(err)
	}
	st.regs[op.Dst] = float64(n)
	return pc + 1
}

func hPop(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	v, ok := st.arena.Pop(int32(st.regs[op.A]))
	if !ok {
		return st.bail()
	}
	st.regs[op.Dst] = v
	return pc + 1
}

func hNewArr(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	n := st.regs[op.A]
	if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
		return st.bail()
	}
	hnd, err := st.arena.Alloc(int(n))
	if err != nil {
		return st.fail(err)
	}
	st.regs[op.Dst] = float64(hnd)
	return pc + 1
}

func hAddrOf(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	elems, ok := st.arena.Elems(int32(st.regs[op.A]))
	if !ok {
		return st.bail()
	}
	st.regs[op.Dst] = float64(elems)
	return pc + 1
}

func hCodeBase(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.regs[op.Dst] = float64(st.arena.CodeBase())
	return pc + 1
}

func hLoadGlobal(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	v := st.h.GlobalGet(int(op.Aux))
	switch v.Type() {
	case value.Number:
		st.regs[op.Dst], st.tags[op.Dst] = v.AsNumber(), TagNumber
	case value.Boolean:
		st.regs[op.Dst], st.tags[op.Dst] = v.AsNumber(), TagBoolean
	case value.Array:
		st.regs[op.Dst], st.tags[op.Dst] = float64(v.Handle()), TagObject
	default:
		st.regs[op.Dst], st.tags[op.Dst] = math.NaN(), TagOther
	}
	return pc + 1
}

func hStoreGlobalNum(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.h.GlobalSet(int(op.Aux), value.Num(st.regs[op.A]))
	return pc + 1
}

func hStoreGlobalObj(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.h.GlobalSet(int(op.Aux), value.ArrayRef(int32(st.regs[op.A])))
	return pc + 1
}

func hCall(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	argRegs := st.code.ArgLists[op.A]
	var callArgs []value.Value
	base := -1
	if st.pool != nil {
		base = len(st.pool.args)
		for range argRegs {
			st.pool.args = append(st.pool.args, value.Value{})
		}
		callArgs = st.pool.args[base : base+len(argRegs)]
	} else {
		callArgs = make([]value.Value, len(argRegs))
	}
	for i, ar := range argRegs {
		if op.C&(1<<i) != 0 {
			callArgs[i] = value.ArrayRef(int32(st.regs[ar]))
		} else {
			callArgs[i] = value.Num(st.regs[ar])
		}
	}
	res, err := st.h.CallFunction(int(op.Aux), callArgs)
	if base >= 0 {
		st.pool.args = st.pool.args[:base]
	}
	if err != nil {
		return st.fail(err)
	}
	if op.B == 1 { // expect object
		if !res.IsArray() {
			return st.bail()
		}
		st.regs[op.Dst], st.tags[op.Dst] = float64(res.Handle()), TagObject
		return pc + 1
	}
	switch res.Type() {
	case value.Number, value.Boolean:
		st.regs[op.Dst], st.tags[op.Dst] = res.ToNumber(), TagNumber
	case value.Undefined:
		st.regs[op.Dst], st.tags[op.Dst] = math.NaN(), TagNumber
	default:
		return st.bail()
	}
	return pc + 1
}

// hOSRPoint: the loop-header OSR marker is a runtime nop charging no step
// (its NSteps is 0 in the fused stream too), keeping Result.Steps
// bit-identical to code compiled without OSR support.
func hOSRPoint(st *fstate, op *lir.FOp, pc int32) int32 {
	return pc + 1
}

// hCallSpec is hCall with a strict return-type guard: exactly a Number is
// accepted; anything else deoptimizes with the interpreter frame rebuilt
// from the deopt exit's frame map (op.Target indexes Code.DeoptExits).
func hCallSpec(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	argRegs := st.code.ArgLists[op.A]
	var callArgs []value.Value
	base := -1
	if st.pool != nil {
		base = len(st.pool.args)
		for range argRegs {
			st.pool.args = append(st.pool.args, value.Value{})
		}
		callArgs = st.pool.args[base : base+len(argRegs)]
	} else {
		callArgs = make([]value.Value, len(argRegs))
	}
	for i, ar := range argRegs {
		if op.C&(1<<i) != 0 {
			callArgs[i] = value.ArrayRef(int32(st.regs[ar]))
		} else {
			callArgs[i] = value.Num(st.regs[ar])
		}
	}
	res, err := st.h.CallFunction(int(op.Aux), callArgs)
	if base >= 0 {
		st.pool.args = st.pool.args[:base]
	}
	if err != nil {
		return st.fail(err)
	}
	if res.Type() == value.Number {
		st.regs[op.Dst], st.tags[op.Dst] = res.AsNumber(), TagNumber
		return pc + 1
	}
	if op.Target < 0 || int(op.Target) >= len(st.code.DeoptExits) {
		return st.bail() // orphan guard; treat as bail
	}
	st.res = Result{Deopt: buildDeopt(st.code, op.Target, st.regs, res)}
	st.status = StatusDeopt
	return -1
}

func hRetNum(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.res = Result{Kind: ResNum, Val: st.regs[op.A]}
	return -1
}

func hRetObj(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.res = Result{Kind: ResObject, Val: st.regs[op.A]}
	return -1
}

func hRetUndef(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	st.res = Result{Kind: ResUndef}
	return -1
}

// ---- superinstruction handlers ----
//
// Each replays its constituents' writes and step charges in source order;
// register reads always go through the live register file so aliasing with
// earlier constituent writes resolves exactly as in the unfused sequence.

func hAddImm(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.C] = op.Imm
	regs[op.Dst] = regs[op.A] + regs[op.B]
	return pc + 1
}

func hSubImm(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.C] = op.Imm
	regs[op.Dst] = regs[op.A] - regs[op.B]
	return pc + 1
}

func hMulImm(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.C] = op.Imm
	regs[op.Dst] = regs[op.A] * regs[op.B]
	return pc + 1
}

func hCmpImm(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.C] = op.Imm
	regs[op.Dst] = cmpEval(op.Aux, regs[op.A], regs[op.B])
	return pc + 1
}

func hCmpBranch(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	r := cmpEval(op.Aux, regs[op.A], regs[op.B])
	regs[op.Dst] = r
	if r == 0 {
		return st.jumpTo(op.Target)
	}
	return pc + 1
}

func hCmpImmBranch(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 3
	regs := st.regs
	regs[op.C] = op.Imm
	r := cmpEval(op.Aux, regs[op.A], regs[op.B])
	regs[op.Dst] = r
	if r == 0 {
		return st.jumpTo(op.Target)
	}
	return pc + 1
}

func hIncCmpBranch(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 3
	regs := st.regs
	regs[op.D] = regs[op.A] + regs[op.B]
	l, r := regs[op.D], regs[op.E]
	if op.Aux2&1 != 0 {
		l, r = r, l
	}
	v := cmpEval(op.Aux, l, r)
	regs[op.Dst] = v
	if v == 0 {
		return st.jumpTo(op.Target)
	}
	return pc + 1
}

func hAddImmCmpBranch(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 4
	regs := st.regs
	regs[op.C] = op.Imm
	regs[op.D] = regs[op.A] + regs[op.B]
	l, r := regs[op.D], regs[op.E]
	if op.Aux2&1 != 0 {
		l, r = r, l
	}
	v := cmpEval(op.Aux, l, r)
	regs[op.Dst] = v
	if v == 0 {
		return st.jumpTo(op.Target)
	}
	return pc + 1
}

func hBoundsLoad(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	regs := st.regs
	idx, length := regs[op.A], regs[op.B]
	if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
		return st.bail()
	}
	st.steps++
	addr := int(regs[op.C]) + int(regs[op.D]) + int(op.Aux)
	v, crash := st.arena.RawLoad(addr)
	if crash != nil {
		return st.fail(crash)
	}
	regs[op.Dst] = v
	return pc + 1
}

func hBoundsStore(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	regs := st.regs
	idx, length := regs[op.A], regs[op.B]
	if !(idx >= 0 && idx < length && idx == math.Trunc(idx)) {
		return st.bail()
	}
	st.steps++
	addr := int(regs[op.C]) + int(regs[op.D]) + int(op.Aux)
	if crash := st.arena.RawStore(addr, regs[op.E]); crash != nil {
		return st.fail(crash)
	}
	return pc + 1
}

func hLenBoundsLoad(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	regs := st.regs
	length, crash := st.arena.LengthAt(int(regs[op.D]))
	if crash != nil {
		return st.fail(crash)
	}
	regs[op.C] = length
	st.steps++
	idx := regs[op.A]
	if !(idx >= 0 && idx < regs[op.C] && idx == math.Trunc(idx)) {
		return st.bail()
	}
	st.steps++
	addr := int(regs[op.D]) + int(regs[op.A]) + int(op.Aux)
	v, crash := st.arena.RawLoad(addr)
	if crash != nil {
		return st.fail(crash)
	}
	regs[op.Dst] = v
	return pc + 1
}

func hLenBoundsStore(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps++
	regs := st.regs
	length, crash := st.arena.LengthAt(int(regs[op.D]))
	if crash != nil {
		return st.fail(crash)
	}
	regs[op.C] = length
	st.steps++
	idx := regs[op.A]
	if !(idx >= 0 && idx < regs[op.C] && idx == math.Trunc(idx)) {
		return st.bail()
	}
	st.steps++
	addr := int(regs[op.D]) + int(regs[op.A]) + int(op.Aux)
	if crash := st.arena.RawStore(addr, regs[op.E]); crash != nil {
		return st.fail(crash)
	}
	return pc + 1
}

func hMove2(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.Dst] = regs[op.A]
	regs[op.C] = regs[op.D]
	return pc + 1
}

func hMoveN(st *fstate, op *lir.FOp, pc int32) int32 {
	k := op.Aux2
	st.steps += int64(k)
	regs := st.regs
	pairs := st.f.MovePairs[op.Aux : op.Aux+k*2]
	for i := 0; i < len(pairs); i += 2 {
		regs[pairs[i]] = regs[pairs[i+1]]
	}
	return pc + 1
}

func hMoveNJump(st *fstate, op *lir.FOp, pc int32) int32 {
	k := op.Aux2
	st.steps += int64(k) + 1
	regs := st.regs
	pairs := st.f.MovePairs[op.Aux : op.Aux+k*2]
	for i := 0; i < len(pairs); i += 2 {
		regs[pairs[i]] = regs[pairs[i+1]]
	}
	return st.jumpTo(op.Target)
}

// runArithChain replays an FArithN run. Every constituent is pure and
// fall-through; each case is a verbatim copy of the corresponding unfused
// op, so the register file ends up bit-identical.
func runArithChain(f *lir.FusedCode, regs []float64, op *lir.FOp) {
	aops := f.ArithOps[op.Aux : op.Aux+op.Aux2]
	for i := range aops {
		a := &aops[i]
		switch a.Kind {
		case lir.KConst:
			regs[a.Dst] = a.Imm
		case lir.KMove:
			regs[a.Dst] = regs[a.A]
		case lir.KAdd:
			regs[a.Dst] = regs[a.A] + regs[a.B]
		case lir.KSub:
			regs[a.Dst] = regs[a.A] - regs[a.B]
		case lir.KMul:
			regs[a.Dst] = regs[a.A] * regs[a.B]
		case lir.KDiv:
			regs[a.Dst] = regs[a.A] / regs[a.B]
		case lir.KMod:
			regs[a.Dst] = value.Mod(regs[a.A], regs[a.B])
		case lir.KPow:
			regs[a.Dst] = math.Pow(regs[a.A], regs[a.B])
		case lir.KBitAnd:
			regs[a.Dst] = float64(value.ToInt32(regs[a.A]) & value.ToInt32(regs[a.B]))
		case lir.KBitOr:
			regs[a.Dst] = float64(value.ToInt32(regs[a.A]) | value.ToInt32(regs[a.B]))
		case lir.KBitXor:
			regs[a.Dst] = float64(value.ToInt32(regs[a.A]) ^ value.ToInt32(regs[a.B]))
		case lir.KShl:
			regs[a.Dst] = float64(value.ToInt32(regs[a.A]) << (value.ToUint32(regs[a.B]) & 31))
		case lir.KShr:
			regs[a.Dst] = float64(value.ToInt32(regs[a.A]) >> (value.ToUint32(regs[a.B]) & 31))
		case lir.KUshr:
			regs[a.Dst] = float64(value.ToUint32(regs[a.A]) >> (value.ToUint32(regs[a.B]) & 31))
		case lir.KNeg:
			regs[a.Dst] = -regs[a.A]
		case lir.KNot:
			if truthyF(regs[a.A]) {
				regs[a.Dst] = 0
			} else {
				regs[a.Dst] = 1
			}
		case lir.KCmp:
			regs[a.Dst] = cmpEval(a.Aux, regs[a.A], regs[a.B])
		}
	}
}

func hAdd2(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += 2
	regs := st.regs
	regs[op.Dst] = regs[op.A] + regs[op.B]
	regs[op.C] = regs[op.D] + regs[op.E]
	return pc + 1
}

func hAddMoveNJump(st *fstate, op *lir.FOp, pc int32) int32 {
	m := op.Aux2
	st.steps += int64(m) + 2
	regs := st.regs
	regs[op.Dst] = regs[op.A] + regs[op.B]
	pairs := st.f.MovePairs[op.Aux : op.Aux+m*2]
	for i := 0; i < len(pairs); i += 2 {
		regs[pairs[i]] = regs[pairs[i+1]]
	}
	return st.jumpTo(op.Target)
}

func hAdd2MoveNJump(st *fstate, op *lir.FOp, pc int32) int32 {
	m := op.Aux2
	st.steps += int64(m) + 3
	regs := st.regs
	regs[op.Dst] = regs[op.A] + regs[op.B]
	regs[op.C] = regs[op.D] + regs[op.E]
	pairs := st.f.MovePairs[op.Aux : op.Aux+m*2]
	for i := 0; i < len(pairs); i += 2 {
		regs[pairs[i]] = regs[pairs[i+1]]
	}
	return st.jumpTo(op.Target)
}

func hArithN(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += int64(op.Aux2)
	runArithChain(st.f, st.regs, op)
	return pc + 1
}

func hArithNJump(st *fstate, op *lir.FOp, pc int32) int32 {
	st.steps += int64(op.Aux2) + 1
	runArithChain(st.f, st.regs, op)
	return st.jumpTo(op.Target)
}

func hCmpBranchJump(st *fstate, op *lir.FOp, pc int32) int32 {
	r := cmpEval(op.Aux, st.regs[op.A], st.regs[op.B])
	st.regs[op.Dst] = r
	if r == 0 {
		st.steps += 2
		return st.jumpTo(op.Target)
	}
	st.steps += 3
	return st.jumpTo(op.C)
}

func hEnd(st *fstate, op *lir.FOp, pc int32) int32 {
	st.res = Result{Kind: ResUndef}
	return -1
}

func init() {
	for i := range handlerTab {
		handlerTab[i] = hInvalid
	}
	wiredHandlers[lir.FInvalid] = true // deliberately the invalid handler
	pt := func(k lir.Kind, h fhandler) {
		handlerTab[lir.PassThrough(k)] = h
		wiredHandlers[lir.PassThrough(k)] = true
	}
	sup := func(k lir.FKind, h fhandler) {
		handlerTab[k] = h
		wiredHandlers[k] = true
	}

	pt(lir.KNop, hNop)
	pt(lir.KConst, hConst)
	pt(lir.KMove, hMove)
	pt(lir.KMoveTag, hMoveTag)
	pt(lir.KAdd, hAdd)
	pt(lir.KSub, hSub)
	pt(lir.KMul, hMul)
	pt(lir.KDiv, hDiv)
	pt(lir.KMod, hMod)
	pt(lir.KPow, hPow)
	pt(lir.KBitAnd, hBitAnd)
	pt(lir.KBitOr, hBitOr)
	pt(lir.KBitXor, hBitXor)
	pt(lir.KShl, hShl)
	pt(lir.KShr, hShr)
	pt(lir.KUshr, hUshr)
	pt(lir.KNeg, hNeg)
	pt(lir.KNot, hNot)
	pt(lir.KCmp, hCmp)
	pt(lir.KMath, hMath)
	pt(lir.KJump, hJump)
	pt(lir.KBranchFalse, hBranchFalse)
	pt(lir.KUnbox, hGuard)
	pt(lir.KGuardType, hGuard)
	pt(lir.KElemsHandle, hElemsHandle)
	pt(lir.KElemsRaw, hElemsRaw)
	pt(lir.KInitLen, hInitLen)
	pt(lir.KBoundsCheck, hBoundsCheck)
	pt(lir.KLoadElem, hLoadElem)
	pt(lir.KStoreElem, hStoreElem)
	pt(lir.KSetLen, hSetLen)
	pt(lir.KPush, hPush)
	pt(lir.KPop, hPop)
	pt(lir.KNewArr, hNewArr)
	pt(lir.KAddrOf, hAddrOf)
	pt(lir.KCodeBase, hCodeBase)
	pt(lir.KLoadGlobal, hLoadGlobal)
	pt(lir.KStoreGlobalNum, hStoreGlobalNum)
	pt(lir.KStoreGlobalObj, hStoreGlobalObj)
	pt(lir.KCall, hCall)
	pt(lir.KCallSpec, hCallSpec)
	pt(lir.KOSRPoint, hOSRPoint)
	pt(lir.KRetNum, hRetNum)
	pt(lir.KRetObj, hRetObj)
	pt(lir.KRetUndef, hRetUndef)

	sup(lir.FAddImm, hAddImm)
	sup(lir.FSubImm, hSubImm)
	sup(lir.FMulImm, hMulImm)
	sup(lir.FCmpImm, hCmpImm)
	sup(lir.FCmpBranch, hCmpBranch)
	sup(lir.FCmpImmBranch, hCmpImmBranch)
	sup(lir.FIncCmpBranch, hIncCmpBranch)
	sup(lir.FAddImmCmpBranch, hAddImmCmpBranch)
	sup(lir.FBoundsLoad, hBoundsLoad)
	sup(lir.FBoundsStore, hBoundsStore)
	sup(lir.FLenBoundsLoad, hLenBoundsLoad)
	sup(lir.FLenBoundsStore, hLenBoundsStore)
	sup(lir.FMove2, hMove2)
	sup(lir.FMoveN, hMoveN)
	sup(lir.FMoveNJump, hMoveNJump)
	sup(lir.FAdd2, hAdd2)
	sup(lir.FAddMoveNJump, hAddMoveNJump)
	sup(lir.FAdd2MoveNJump, hAdd2MoveNJump)
	sup(lir.FArithN, hArithN)
	sup(lir.FArithNJump, hArithNJump)
	sup(lir.FCmpBranchJump, hCmpBranchJump)
	sup(lir.FEnd, hEnd)
}

// cmpEval evaluates a KCmp: Aux is the mir.CompareKind (1 <, 2 <=, 3 >,
// 4 >=, 5 ==, 6 !=), the result is 1 or 0. Identical to the unfused
// switch case, including the every-comparison-false NaN behavior.
func cmpEval(aux int32, a, b float64) float64 {
	var r bool
	switch aux {
	case 1:
		r = a < b
	case 2:
		r = a <= b
	case 3:
		r = a > b
	case 4:
		r = a >= b
	case 5:
		r = a == b
	case 6:
		r = a != b
	}
	if r {
		return 1
	}
	return 0
}

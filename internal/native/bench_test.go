package native

import (
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/value"
)

func benchRun(b *testing.B, fused bool) {
	code := loopCode()
	code.Fused = nil
	if fused {
		code.Fused = lir.Fuse(code)
	}
	h := newStub()
	pool := &Pool{}
	args := []value.Value{value.Num(10000)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if fused {
			_, _, err = Exec(code, args, h, 0, pool)
		} else {
			_, _, err = ExecUnfused(code, args, h, 0, pool)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopUnfused(b *testing.B) { benchRun(b, false) }
func BenchmarkLoopFused(b *testing.B)   { benchRun(b, true) }

// Package jitqueue is the off-thread tiered-compilation service: a
// bounded background worker pool that engines enqueue Ion compilation
// jobs onto (the function keeps executing in baseline until the artifact
// lands), and a shared cross-engine compilation cache keyed by a
// canonical, rename/minify-invariant digest of the function's bytecode
// plus its compilation inputs. Both are engine-agnostic — jobs are opaque
// closures and cache values opaque artifacts — so the package sits below
// internal/engine with no upward dependency.
//
// Observability follows the repo-wide nil-is-off convention: construct
// with a nil *obs.Registry and every metric handle degrades to the
// nil-safe no-op.
package jitqueue

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/jitbull/jitbull/internal/obs"
)

// Default queue sizing.
const (
	// DefaultCapacity bounds the number of queued-but-not-running jobs.
	// Saturation is back-pressure: Submit returns false and the caller
	// compiles synchronously, so a compile storm degrades to the old
	// inline behavior instead of growing an unbounded backlog.
	DefaultCapacity = 256
)

// Job is one unit of background work: a supervised compile attempt.
type Job struct {
	// Owner attributes the job ("engine@function") in panic records and
	// diagnostics; the typed-error attribution itself lives inside Run
	// (the engine's compilation supervisor).
	Owner string
	// Run executes the attempt. The engine's supervisor contains every
	// expected panic; the queue adds a last-resort recovery so a worker
	// never takes the pool down.
	Run func()
}

// WorkerPanic records a panic that escaped a job's own containment.
type WorkerPanic struct {
	Owner string
	Value any
}

// String renders the record for diagnostics.
func (p WorkerPanic) String() string {
	return fmt.Sprintf("queue worker panic in %s: %v", p.Owner, p.Value)
}

// Queue is a bounded background compilation pool. It is safe for
// concurrent use by any number of engines; a nil *Queue is valid and
// rejects every Submit (the synchronous-compilation fallback).
type Queue struct {
	jobs    chan Job
	wg      sync.WaitGroup
	workers int

	depth atomic.Int64 // queued + running jobs
	hwm   atomic.Int64 // high-water mark of depth

	mu     sync.Mutex
	closed bool
	panics []WorkerPanic

	mDepth    *obs.Gauge
	mHWM      *obs.Gauge
	mEnqueued *obs.Counter
	mRejected *obs.Counter
	mDone     *obs.Counter
	mPanics   *obs.Counter
}

// New starts a pool of workers draining a queue of the given capacity.
// workers <= 0 selects GOMAXPROCS; capacity <= 0 selects DefaultCapacity.
// reg, when non-nil, receives the jit.queue_* metrics.
func New(workers, capacity int, reg *obs.Registry) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	q := &Queue{
		jobs:      make(chan Job, capacity),
		workers:   workers,
		mDepth:    reg.Gauge("jit.queue_depth"),
		mHWM:      reg.Gauge("jit.queue_depth_hwm"),
		mEnqueued: reg.Counter("jit.queue_enqueued"),
		mRejected: reg.Counter("jit.queue_rejected"),
		mDone:     reg.Counter("jit.queue_jobs_done"),
		mPanics:   reg.Counter("jit.queue_worker_panics"),
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Workers returns the pool size.
func (q *Queue) Workers() int {
	if q == nil {
		return 0
	}
	return q.workers
}

// Submit enqueues a job, reporting false when the queue is nil, closed,
// or full (the caller should fall back to a synchronous compile).
func (q *Queue) Submit(j Job) bool {
	if q == nil || j.Run == nil {
		return false
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	// depth is incremented before the send: a worker can only decrement
	// after it received the job, i.e. after this increment, so the gauge is
	// never observed negative. (The rejection path below backs the
	// increment out, so concurrent rejected submits can transiently
	// overcount depth by their number — a bounded, short-lived skew in the
	// harmless direction.)
	d := q.depth.Add(1)
	select {
	case q.jobs <- j:
		q.mu.Unlock()
		q.mDepth.Set(d)
		for {
			hwm := q.hwm.Load()
			if d <= hwm {
				break
			}
			if q.hwm.CompareAndSwap(hwm, d) {
				q.mHWM.Set(d)
				break
			}
		}
		q.mEnqueued.Inc()
		return true
	default:
		q.depth.Add(-1)
		q.mu.Unlock()
		q.mRejected.Inc()
		return false
	}
}

// worker drains jobs until the queue closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		q.runOne(j)
		q.mDepth.Set(q.depth.Add(-1))
		q.mDone.Inc()
	}
}

// runOne executes one job with last-resort panic containment: the engine's
// supervisor recovers expected failures at the right stack depth, so
// anything arriving here is recorded and attributed, never fatal to the
// pool (the other engines' jobs must keep flowing).
func (q *Queue) runOne(j Job) {
	defer func() {
		if r := recover(); r != nil {
			q.mPanics.Inc()
			q.mu.Lock()
			q.panics = append(q.panics, WorkerPanic{Owner: j.Owner, Value: r})
			q.mu.Unlock()
		}
	}()
	j.Run()
}

// Panics returns a copy of every panic that escaped a job's containment.
func (q *Queue) Panics() []WorkerPanic {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]WorkerPanic, len(q.panics))
	copy(out, q.panics)
	return out
}

// Depth returns the current queued+running job count.
func (q *Queue) Depth() int64 {
	if q == nil {
		return 0
	}
	return q.depth.Load()
}

// HighWater returns the depth high-water mark.
func (q *Queue) HighWater() int64 {
	if q == nil {
		return 0
	}
	return q.hwm.Load()
}

// Close stops accepting jobs, drains the backlog, and waits for the
// workers to exit. Safe to call twice; safe on a nil queue.
func (q *Queue) Close() {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}

package jitqueue

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheSieveDeterministicEviction pins the eviction order: victims
// are a pure function of the Get/Put sequence, never of map iteration
// order. Four single-unit entries fill a 4-unit cache; entries 0 and 2
// are touched; the next two inserts must evict exactly the untouched
// entries 1 and 3 (oldest-first), keeping the touched ones resident.
func TestCacheSieveDeterministicEviction(t *testing.T) {
	for trial := 0; trial < 20; trial++ { // map order varies per run; eviction must not
		c := NewCacheLimited(nil, 4)
		for i := 0; i < 4; i++ {
			c.Put(Key{byte(i)}, i, 1)
		}
		for _, i := range []int{0, 2} {
			if _, ok := c.Get(Key{byte(i)}); !ok {
				t.Fatalf("trial %d: entry %d missing before eviction", trial, i)
			}
		}
		c.Put(Key{10}, 10, 1) // evicts 1 (oldest unvisited)
		c.Put(Key{11}, 11, 1) // evicts 3 (next unvisited; 0 and 2 were visited)
		for _, i := range []int{0, 2, 10, 11} {
			if _, ok := c.Get(Key{byte(i)}); !ok {
				t.Errorf("trial %d: expected survivor %d was evicted", trial, i)
			}
		}
		for _, i := range []int{1, 3} {
			c.mu.RLock()
			_, ok := c.m[Key{byte(i)}]
			c.mu.RUnlock()
			if ok {
				t.Errorf("trial %d: expected victim %d still resident", trial, i)
			}
		}
	}
}

// TestCacheSieveSecondChance: with every entry visited, the hand sweeps
// once clearing marks and the second pass evicts the oldest — SIEVE
// degrades to FIFO, deterministically.
func TestCacheSieveSecondChance(t *testing.T) {
	c := NewCacheLimited(nil, 3)
	for i := 0; i < 3; i++ {
		c.Put(Key{byte(i)}, i, 1)
		c.Get(Key{byte(i)}) // mark everything visited
	}
	c.Put(Key{9}, 9, 1) // full sweep clears marks, evicts entry 0
	if _, ok := c.Get(Key{0}); ok {
		t.Error("oldest entry survived a full-visited sweep")
	}
	for _, i := range []int{1, 2, 9} {
		if _, ok := c.Get(Key{byte(i)}); !ok {
			t.Errorf("entry %d missing after second-chance sweep", i)
		}
	}
}

// memTier is an in-memory SecondTier for wiring tests.
type memTier struct {
	mu   sync.Mutex
	m    map[Key][]byte
	gets int
	puts int
}

func newMemTier() *memTier { return &memTier{m: map[Key][]byte{}} }

func (t *memTier) Get(k Key) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	d, ok := t.m[k]
	return d, ok
}

func (t *memTier) Put(k Key, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	t.m[k] = append([]byte(nil), data...)
}

// stringCodec encodes string values as their bytes; anything else is
// unencodable.
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, bool) {
	s, ok := v.(string)
	if !ok {
		return nil, false
	}
	return []byte(s), true
}

func (stringCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty record")
	}
	return string(data), nil
}

// TestCacheWriteThroughAndPromote: a Put reaches the tier, and a fresh
// cache over the same tier serves the value from it (promoted into
// memory, so the second Get never touches the tier again).
func TestCacheWriteThroughAndPromote(t *testing.T) {
	tier := newMemTier()
	c1 := NewCache(nil)
	c1.AttachTier(tier, stringCodec{})
	c1.Put(Key{1}, "artifact", 8)
	if tier.puts != 1 {
		t.Fatalf("tier puts = %d, want 1", tier.puts)
	}

	c2 := NewCache(nil) // "restarted process": cold memory, same tier
	c2.AttachTier(tier, stringCodec{})
	v, ok := c2.Get(Key{1})
	if !ok || v.(string) != "artifact" {
		t.Fatalf("tier-backed Get = %v, %v", v, ok)
	}
	getsAfterPromote := tier.gets
	if v, ok := c2.Get(Key{1}); !ok || v.(string) != "artifact" {
		t.Fatalf("promoted Get = %v, %v", v, ok)
	}
	if tier.gets != getsAfterPromote {
		t.Error("promoted entry still consults the tier")
	}
	// Unencodable values stay memory-only.
	c2.Put(Key{2}, 42, 8)
	if _, ok := tier.m[Key{2}]; ok {
		t.Error("unencodable value reached the tier")
	}
	// Undecodable tier records degrade to a miss.
	tier.m[Key{3}] = nil
	if _, ok := c2.Get(Key{3}); ok {
		t.Error("undecodable tier record served as a hit")
	}
}

package jitqueue

import (
	"sync"
	"sync/atomic"

	"github.com/jitbull/jitbull/internal/obs"
)

// Key identifies one compilation in the shared cache: a digest of the
// function's canonical (rename/minify-invariant) bytecode hash plus every
// other compilation input — type feedback, observed-buggy pass set,
// disabled passes, IR checking, and the policy's identity. Two engines
// that would run the exact same pipeline over the exact same input
// produce the same Key; anything that could change the artifact or the
// JITBULL verdict changes it.
type Key [32]byte

// DefaultCacheMaxBytes caps the cache's accounted artifact footprint so a
// long-running fleet compiling an unbounded stream of distinct
// (function, type-feedback) combinations cannot grow memory without
// limit. Artifacts are small (tens of bytes to a few KiB of accounted
// size), so the default holds far more distinct compilations than any
// realistic working set.
const DefaultCacheMaxBytes = 64 << 20

// Codec translates cache values to and from self-contained bytes for the
// second tier. Encode reports ok=false for values that must not cross a
// process boundary (e.g. a verdict payload with no persistent form);
// Decode errors mean the bytes are from an incompatible producer and the
// lookup degrades to a miss.
type Codec interface {
	Encode(v any) (data []byte, ok bool)
	Decode(data []byte) (v any, err error)
}

// SecondTier is durable storage under the in-memory cache (implemented by
// internal/store). Both methods must be safe for concurrent use and must
// contain their own failures: Get returns ok=false for anything it cannot
// produce trustworthy bytes for, Put may drop the record silently — the
// in-memory tier and a recompile always back it up.
type SecondTier interface {
	Get(k Key) (data []byte, ok bool)
	Put(k Key, data []byte)
}

// entry is one cached compilation in the SIEVE list: the value, the size
// the caller accounted it at, and the SIEVE bookkeeping. Entries form a
// doubly-linked list in insertion order (head = newest, tail = oldest).
// visited is atomic so Get can mark it under the read lock.
type entry struct {
	key        Key
	v          any
	size       int64
	visited    atomic.Bool
	prev, next *entry
}

// Cache is a process-wide, first-store-wins map from compilation inputs
// to finished artifacts (compiled code plus the recorded policy verdict).
// Values are opaque to the cache; the engine defines what it stores.
//
// The accounted footprint is bounded with SIEVE eviction: entries live in
// an insertion-ordered list, a Get marks its entry visited, and when a Put
// needs room a hand sweeps from the oldest entry toward the newest,
// clearing visited marks until it finds an unvisited victim. Eviction is
// therefore deterministic in the Get/Put sequence (no map-iteration-order
// dependence) and approximates LRU without per-hit list surgery.
//
// With a SecondTier attached the cache is write-through: every Put also
// encodes the value and hands the bytes to the tier, and a memory miss
// consults the tier before reporting a miss, promoting (first-store-wins)
// any record that decodes. Tier failures never propagate: an unreadable,
// corrupt, or undecodable record is a miss, and the engine recompiles.
//
// A nil *Cache is valid: every Get misses silently and every Put is
// dropped, which is exactly the cache-off configuration.
type Cache struct {
	mu       sync.RWMutex
	m        map[Key]*entry
	head     *entry // most recently inserted
	tail     *entry // oldest; eviction hand starts here
	hand     *entry // SIEVE hand: next eviction candidate (nil = tail)
	bytes    int64
	maxBytes int64 // <= 0 means unbounded

	tier  SecondTier
	codec Codec

	mHits      *obs.Counter
	mMisses    *obs.Counter
	mEvict     *obs.Counter
	mBytes     *obs.Gauge
	mSize      *obs.Gauge
	mTierHits  *obs.Counter
	mTierDrops *obs.Counter
}

// NewCache builds an empty cache bounded at DefaultCacheMaxBytes. reg,
// when non-nil, receives the cache.{hits,misses,evictions,bytes,entries}
// metrics.
func NewCache(reg *obs.Registry) *Cache {
	return NewCacheLimited(reg, DefaultCacheMaxBytes)
}

// NewCacheLimited builds an empty cache whose accounted footprint is
// capped at maxBytes; maxBytes <= 0 removes the bound (the caller owns
// the unbounded-growth consequences).
func NewCacheLimited(reg *obs.Registry, maxBytes int64) *Cache {
	return &Cache{
		m:          make(map[Key]*entry),
		maxBytes:   maxBytes,
		mHits:      reg.Counter("cache.hits"),
		mMisses:    reg.Counter("cache.misses"),
		mEvict:     reg.Counter("cache.evictions"),
		mBytes:     reg.Gauge("cache.bytes"),
		mSize:      reg.Gauge("cache.entries"),
		mTierHits:  reg.Counter("cache.tier_hits"),
		mTierDrops: reg.Counter("cache.tier_decode_drops"),
	}
}

// AttachTier wires a durable second tier under the cache: Puts write
// through (via codec.Encode) and memory misses consult it (via
// codec.Decode) before reporting a miss. Attach before the cache is
// shared; the tier and codec are read without synchronization afterwards.
func (c *Cache) AttachTier(t SecondTier, codec Codec) {
	if c == nil {
		return
	}
	c.tier = t
	c.codec = codec
}

// Get looks up a finished compilation and counts the hit or miss. On a
// memory miss with a second tier attached, the tier is consulted and a
// decodable record is promoted into memory (counted as a hit); a record
// that fails to decode is dropped and counted as a miss — version skew at
// the engine layer degrades to a recompile, never an error.
func (c *Cache) Get(k Key) (any, bool) {
	v, ok, _ := c.GetTiered(k)
	return v, ok
}

// GetTiered is Get with hit attribution: fromTier reports whether the
// value was served by promoting a persistent second-tier record rather
// than from memory — the distinction the tier-journey journal renders
// as "store-hit" vs "cache-hit".
func (c *Cache) GetTiered(k Key) (v any, ok, fromTier bool) {
	if c == nil {
		return nil, false, false
	}
	c.mu.RLock()
	e, found := c.m[k]
	c.mu.RUnlock()
	if found {
		e.visited.Store(true)
		c.mHits.Inc()
		return e.v, true, false
	}
	if c.tier != nil && c.codec != nil {
		if data, ok := c.tier.Get(k); ok {
			if v, err := c.codec.Decode(data); err == nil && v != nil {
				c.mTierHits.Inc()
				c.mHits.Inc()
				// Promote without writing back through: the tier already
				// holds the record. First store wins here too.
				if prev, stored := c.put(k, v, c.sizeOf(data)); !stored {
					return prev, true, true
				}
				return v, true, true
			}
			c.mTierDrops.Inc()
		}
	}
	c.mMisses.Inc()
	return nil, false, false
}

// sizeOf accounts a tier-promoted value by its encoded footprint, floored
// at a small constant so zero-length records still count.
func (c *Cache) sizeOf(data []byte) int64 {
	if len(data) < 64 {
		return 64
	}
	return int64(len(data))
}

// Put stores a finished compilation under k. The first store wins: when
// two engines race to compile the same function the loser's artifact is
// discarded, so every later Get observes one stable artifact+verdict.
// size is the caller's estimate of the artifact's footprint in bytes,
// accounted in cache.bytes; when the store would exceed the cache's
// maximum, the SIEVE hand evicts deterministically, and an entry larger
// than the whole bound is dropped outright. With a second tier attached
// the winning value is also encoded and written through.
func (c *Cache) Put(k Key, v any, size int64) {
	if c == nil || v == nil {
		return
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if _, stored := c.put(k, v, size); !stored {
		return
	}
	if c.tier != nil && c.codec != nil {
		if data, ok := c.codec.Encode(v); ok {
			c.tier.Put(k, data)
		}
	}
}

// put inserts under the write lock, evicting via the SIEVE hand as
// needed. It returns the winning value and whether v was the one stored
// (false = an earlier store won).
func (c *Cache) put(k Key, v any, size int64) (winner any, stored bool) {
	if c.maxBytes > 0 && size > c.maxBytes {
		return v, false
	}
	c.mu.Lock()
	if prev, exists := c.m[k]; exists {
		c.mu.Unlock()
		return prev.v, false
	}
	evicted := int64(0)
	if c.maxBytes > 0 {
		for c.bytes+size > c.maxBytes && len(c.m) > 0 {
			c.evictOne()
			evicted++
		}
	}
	e := &entry{key: k, v: v, size: size}
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	c.m[k] = e
	c.bytes += size
	n, b := len(c.m), c.bytes
	c.mu.Unlock()
	if evicted > 0 {
		c.mEvict.Add(evicted)
	}
	c.mSize.Set(int64(n))
	c.mBytes.Set(b)
	return v, true
}

// evictOne runs the SIEVE hand once under the write lock: starting at the
// hand (or the oldest entry), visited entries get their mark cleared and
// are passed over; the first unvisited entry is the victim. With every
// entry visited the sweep wraps once and the second pass — marks now
// cleared — evicts the oldest, so the loop always terminates.
func (c *Cache) evictOne() {
	for {
		h := c.hand
		if h == nil {
			h = c.tail
		}
		if h == nil {
			return
		}
		if h.visited.Swap(false) {
			c.hand = h.prev // toward newer entries; nil wraps to tail
			continue
		}
		c.hand = h.prev
		c.unlink(h)
		delete(c.m, h.key)
		c.bytes -= h.size
		return
	}
}

// unlink removes e from the insertion-order list.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Len returns the number of cached compilations.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Bytes returns the accounted artifact footprint.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// Keys returns the cached keys, newest insertion first (diagnostics and
// the store-verify CLI).
func (c *Cache) Keys() []Key {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Key, 0, len(c.m))
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

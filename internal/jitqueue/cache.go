package jitqueue

import (
	"sync"

	"github.com/jitbull/jitbull/internal/obs"
)

// Key identifies one compilation in the shared cache: a digest of the
// function's canonical (rename/minify-invariant) bytecode hash plus every
// other compilation input — type feedback, observed-buggy pass set,
// disabled passes, IR checking, and the policy's identity. Two engines
// that would run the exact same pipeline over the exact same input
// produce the same Key; anything that could change the artifact or the
// JITBULL verdict changes it.
type Key [32]byte

// Cache is a process-wide, first-store-wins map from compilation inputs
// to finished artifacts (compiled code plus the recorded policy verdict).
// Values are opaque to the cache; the engine defines what it stores. A
// nil *Cache is valid: every Get misses silently and every Put is
// dropped, which is exactly the cache-off configuration.
type Cache struct {
	mu    sync.RWMutex
	m     map[Key]any
	bytes int64

	mHits   *obs.Counter
	mMisses *obs.Counter
	mBytes  *obs.Gauge
	mSize   *obs.Gauge
}

// NewCache builds an empty cache. reg, when non-nil, receives the
// cache.{hits,misses,bytes,entries} metrics.
func NewCache(reg *obs.Registry) *Cache {
	return &Cache{
		m:       make(map[Key]any),
		mHits:   reg.Counter("cache.hits"),
		mMisses: reg.Counter("cache.misses"),
		mBytes:  reg.Gauge("cache.bytes"),
		mSize:   reg.Gauge("cache.entries"),
	}
}

// Get looks up a finished compilation and counts the hit or miss.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.mHits.Inc()
	} else {
		c.mMisses.Inc()
	}
	return v, ok
}

// Put stores a finished compilation under k. The first store wins: when
// two engines race to compile the same function the loser's artifact is
// discarded, so every later Get observes one stable artifact+verdict.
// size is the caller's estimate of the artifact's footprint in bytes,
// accounted in cache.bytes.
func (c *Cache) Put(k Key, v any, size int64) {
	if c == nil || v == nil {
		return
	}
	c.mu.Lock()
	if _, exists := c.m[k]; exists {
		c.mu.Unlock()
		return
	}
	c.m[k] = v
	c.bytes += size
	n, b := len(c.m), c.bytes
	c.mu.Unlock()
	c.mSize.Set(int64(n))
	c.mBytes.Set(b)
}

// Len returns the number of cached compilations.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Bytes returns the accounted artifact footprint.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

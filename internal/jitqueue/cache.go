package jitqueue

import (
	"sync"

	"github.com/jitbull/jitbull/internal/obs"
)

// Key identifies one compilation in the shared cache: a digest of the
// function's canonical (rename/minify-invariant) bytecode hash plus every
// other compilation input — type feedback, observed-buggy pass set,
// disabled passes, IR checking, and the policy's identity. Two engines
// that would run the exact same pipeline over the exact same input
// produce the same Key; anything that could change the artifact or the
// JITBULL verdict changes it.
type Key [32]byte

// DefaultCacheMaxBytes caps the cache's accounted artifact footprint so a
// long-running fleet compiling an unbounded stream of distinct
// (function, type-feedback) combinations cannot grow memory without
// limit. Artifacts are small (tens of bytes to a few KiB of accounted
// size), so the default holds far more distinct compilations than any
// realistic working set.
const DefaultCacheMaxBytes = 64 << 20

// entry is one cached compilation plus the size the caller accounted it
// at (needed to keep cache.bytes exact across eviction).
type entry struct {
	v    any
	size int64
}

// Cache is a process-wide, first-store-wins map from compilation inputs
// to finished artifacts (compiled code plus the recorded policy verdict).
// Values are opaque to the cache; the engine defines what it stores. The
// accounted footprint is bounded: once a Put would push cache.bytes past
// the configured maximum, arbitrary entries are evicted to make room
// (entries are independent, immutable compilations — any victim is as
// good as any other, and an evicted key is simply recompiled on its next
// miss). A nil *Cache is valid: every Get misses silently and every Put
// is dropped, which is exactly the cache-off configuration.
type Cache struct {
	mu       sync.RWMutex
	m        map[Key]entry
	bytes    int64
	maxBytes int64 // <= 0 means unbounded

	mHits   *obs.Counter
	mMisses *obs.Counter
	mEvict  *obs.Counter
	mBytes  *obs.Gauge
	mSize   *obs.Gauge
}

// NewCache builds an empty cache bounded at DefaultCacheMaxBytes. reg,
// when non-nil, receives the cache.{hits,misses,evictions,bytes,entries}
// metrics.
func NewCache(reg *obs.Registry) *Cache {
	return NewCacheLimited(reg, DefaultCacheMaxBytes)
}

// NewCacheLimited builds an empty cache whose accounted footprint is
// capped at maxBytes; maxBytes <= 0 removes the bound (the caller owns
// the unbounded-growth consequences).
func NewCacheLimited(reg *obs.Registry, maxBytes int64) *Cache {
	return &Cache{
		m:        make(map[Key]entry),
		maxBytes: maxBytes,
		mHits:    reg.Counter("cache.hits"),
		mMisses:  reg.Counter("cache.misses"),
		mEvict:   reg.Counter("cache.evictions"),
		mBytes:   reg.Gauge("cache.bytes"),
		mSize:    reg.Gauge("cache.entries"),
	}
}

// Get looks up a finished compilation and counts the hit or miss.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	e, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.mHits.Inc()
	} else {
		c.mMisses.Inc()
	}
	return e.v, ok
}

// Put stores a finished compilation under k. The first store wins: when
// two engines race to compile the same function the loser's artifact is
// discarded, so every later Get observes one stable artifact+verdict.
// size is the caller's estimate of the artifact's footprint in bytes,
// accounted in cache.bytes; when the store would exceed the cache's
// maximum, arbitrary existing entries are evicted first, and an entry
// larger than the whole bound is dropped outright.
func (c *Cache) Put(k Key, v any, size int64) {
	if c == nil || v == nil {
		return
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	if _, exists := c.m[k]; exists {
		c.mu.Unlock()
		return
	}
	evicted := int64(0)
	if c.maxBytes > 0 {
		for key, e := range c.m {
			if c.bytes+size <= c.maxBytes {
				break
			}
			delete(c.m, key)
			c.bytes -= e.size
			evicted++
		}
	}
	c.m[k] = entry{v: v, size: size}
	c.bytes += size
	n, b := len(c.m), c.bytes
	c.mu.Unlock()
	if evicted > 0 {
		c.mEvict.Add(evicted)
	}
	c.mSize.Set(int64(n))
	c.mBytes.Set(b)
}

// Len returns the number of cached compilations.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Bytes returns the accounted artifact footprint.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

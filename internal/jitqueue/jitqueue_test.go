package jitqueue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/jitbull/jitbull/internal/obs"
)

func TestQueueRunsAllJobs(t *testing.T) {
	q := New(4, 64, nil)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if !q.Submit(Job{Owner: "t", Run: func() { ran.Add(1) }}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d jobs, want 50", got)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth %d after drain, want 0", d)
	}
	if q.HighWater() < 1 {
		t.Fatalf("high-water %d, want >= 1", q.HighWater())
	}
}

func TestQueueBackpressure(t *testing.T) {
	// One worker blocked on a gate; capacity 2. The 4th submit (1 running
	// + 2 queued) must be rejected, signalling the sync-compile fallback.
	gate := make(chan struct{})
	q := New(1, 2, nil)
	defer q.Close()
	if !q.Submit(Job{Owner: "t", Run: func() { <-gate }}) {
		t.Fatal("first submit rejected")
	}
	// Wait until the worker picked the job up so the channel is empty.
	for q.Depth() != 1 || len(q.jobs) != 0 {
		runtime.Gosched()
	}
	ok2 := q.Submit(Job{Owner: "t", Run: func() {}})
	ok3 := q.Submit(Job{Owner: "t", Run: func() {}})
	ok4 := q.Submit(Job{Owner: "t", Run: func() {}})
	if !ok2 || !ok3 {
		t.Fatalf("queued submits rejected: %v %v", ok2, ok3)
	}
	if ok4 {
		t.Fatal("submit beyond capacity accepted; want rejection (back-pressure)")
	}
	close(gate)
}

func TestQueueSubmitAfterCloseRejected(t *testing.T) {
	q := New(1, 4, nil)
	q.Close()
	if q.Submit(Job{Owner: "t", Run: func() {}}) {
		t.Fatal("submit accepted after Close")
	}
	q.Close() // idempotent
}

func TestNilQueueAndNilCache(t *testing.T) {
	var q *Queue
	if q.Submit(Job{Owner: "t", Run: func() {}}) {
		t.Fatal("nil queue accepted a job")
	}
	q.Close()
	if q.Depth() != 0 || q.HighWater() != 0 || q.Workers() != 0 || q.Panics() != nil {
		t.Fatal("nil queue accessors not zero")
	}
	var c *Cache
	if _, ok := c.Get(Key{1}); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(Key{1}, "v", 1)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache accessors not zero")
	}
}

func TestQueuePanicContainment(t *testing.T) {
	q := New(2, 8, nil)
	var ran atomic.Int64
	q.Submit(Job{Owner: "e1@boom", Run: func() { panic("kaboom") }})
	q.Submit(Job{Owner: "t", Run: func() { ran.Add(1) }})
	q.Close()
	if ran.Load() != 1 {
		t.Fatal("job after a panicking job did not run")
	}
	ps := q.Panics()
	if len(ps) != 1 || ps[0].Owner != "e1@boom" {
		t.Fatalf("panics = %v, want one owned by e1@boom", ps)
	}
	if ps[0].String() == "" {
		t.Fatal("empty panic rendering")
	}
}

func TestQueueMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(2, 8, reg)
	for i := 0; i < 5; i++ {
		q.Submit(Job{Owner: "t", Run: func() {}})
	}
	q.Close()
	if got := reg.Counter("jit.queue_enqueued").Value(); got != 5 {
		t.Fatalf("jit.queue_enqueued = %d, want 5", got)
	}
	if got := reg.Counter("jit.queue_jobs_done").Value(); got != 5 {
		t.Fatalf("jit.queue_jobs_done = %d, want 5", got)
	}
	if got := reg.Gauge("jit.queue_depth_hwm").Value(); got < 1 {
		t.Fatalf("jit.queue_depth_hwm = %d, want >= 1", got)
	}
}

func TestCacheFirstStoreWins(t *testing.T) {
	c := NewCache(nil)
	k := Key{42}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "first", 10)
	c.Put(k, "second", 99)
	v, ok := c.Get(k)
	if !ok || v != "first" {
		t.Fatalf("Get = %v,%v; want first,true", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len=%d Bytes=%d; want 1,10", c.Len(), c.Bytes())
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(reg)
	c.Get(Key{1})
	c.Put(Key{1}, "v", 7)
	c.Get(Key{1})
	c.Get(Key{2})
	if got := reg.Counter("cache.hits").Value(); got != 1 {
		t.Fatalf("cache.hits = %d, want 1", got)
	}
	if got := reg.Counter("cache.misses").Value(); got != 2 {
		t.Fatalf("cache.misses = %d, want 2", got)
	}
	if got := reg.Gauge("cache.bytes").Value(); got != 7 {
		t.Fatalf("cache.bytes = %d, want 7", got)
	}
}

func TestQueueDepthNeverNegative(t *testing.T) {
	// Submit increments depth before the channel send, so a fast worker
	// finishing the job can never drive the gauge below zero.
	q := New(4, 16, nil)
	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := q.Depth(); d < 0 {
				t.Errorf("depth went negative: %d", d)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		q.Submit(Job{Owner: "t", Run: func() {}}) // rejections under load are fine
	}
	q.Close()
	close(stop)
	poller.Wait()
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth %d after drain, want 0", d)
	}
}

func TestCacheEvictionBound(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCacheLimited(reg, 100)
	for i := 0; i < 6; i++ {
		c.Put(Key{byte(i)}, i, 30)
		if b := c.Bytes(); b > 100 {
			t.Fatalf("bytes %d exceeded the 100-byte bound after put %d", b, i)
		}
	}
	if c.Len() > 3 {
		t.Errorf("Len = %d, want <= 3 (3 × 30 bytes fit under 100)", c.Len())
	}
	if got := reg.Counter("cache.evictions").Value(); got == 0 {
		t.Error("no evictions counted despite exceeding the bound")
	}
	// An entry larger than the whole bound is dropped outright.
	before := c.Len()
	c.Put(Key{99}, "huge", 200)
	if _, ok := c.Get(Key{99}); ok || c.Len() != before {
		t.Error("oversized entry was stored")
	}
	// An unbounded cache (maxBytes <= 0) never evicts.
	u := NewCacheLimited(nil, 0)
	for i := 0; i < 100; i++ {
		u.Put(Key{byte(i)}, i, 1 << 20)
	}
	if u.Len() != 100 {
		t.Errorf("unbounded cache evicted: Len = %d, want 100", u.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{byte(i % 16)}
				c.Put(k, i%16, 1)
				if v, ok := c.Get(k); !ok || v.(int) != i%16 {
					t.Errorf("goroutine %d: Get(%d) = %v,%v", g, i%16, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
}

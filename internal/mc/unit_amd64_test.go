//go:build amd64 && (linux || darwin)

package mc

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"unsafe"

	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// TestFrameOffsets pins the mcframe layout against the f* displacement
// constants baked into the lowering and the assembly trampoline. A drift
// here means generated code reads the wrong field.
func TestFrameOffsets(t *testing.T) {
	var f mcframe
	checks := []struct {
		name string
		got  uintptr
		want int32
	}{
		{"exitpc", unsafe.Offsetof(f.exitpc), fExitPC},
		{"steps", unsafe.Offsetof(f.steps), fSteps},
		{"checks", unsafe.Offsetof(f.checks), fChecks},
		{"maxOps", unsafe.Offsetof(f.maxOps), fMaxOps},
		{"top", unsafe.Offsetof(f.top), fTop},
		{"codeBase", unsafe.Offsetof(f.codeBase), fCodeBase},
		{"codeLen", unsafe.Offsetof(f.codeLen), fCodeLen},
		{"handleLen", unsafe.Offsetof(f.handleLen), fHandleLen},
		{"regs", unsafe.Offsetof(f.regs), fRegs},
		{"tags", unsafe.Offsetof(f.tags), fTags},
		{"cells", unsafe.Offsetof(f.cells), fCells},
		{"handles", unsafe.Offsetof(f.handles), fHandles},
		{"globalsLen", unsafe.Offsetof(f.globalsLen), fGlobalsLen},
		{"globals", unsafe.Offsetof(f.globals), fGlobals},
	}
	for _, c := range checks {
		if int32(c.got) != c.want {
			t.Errorf("mcframe.%s at offset %d, lowering uses %d", c.name, c.got, c.want)
		}
	}
}

// TestWXTransitions asserts the install lifecycle never passes through a
// writable+executable state: the recorded protection transitions are
// exactly mmap(RW-) followed by mprotect(R-X), and (on Linux) the kernel's
// own accounting agrees that the installed page is r-x.
func TestWXTransitions(t *testing.T) {
	code := &lir.Code{
		Name: "wx", NumParams: 0, NumRegs: 2,
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 1, Imm: 7},
			{Kind: lir.KRetNum, A: 1},
		},
	}
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want := []string{"mmap:rw-", "mprotect:r-x"}
	got := u.Transitions()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("protection transitions = %v, want %v (no RWX window, ever)", got, want)
	}
	if runtime.GOOS == "linux" {
		prot, ok := protAt(t, uint64(u.Base()))
		if !ok {
			t.Fatalf("installed unit at %#x not found in /proc/self/maps", u.Base())
		}
		if prot != "r-xp" {
			t.Fatalf("kernel reports %q for the installed unit, want r-xp", prot)
		}
	}
	// The unit must actually execute after the final transition.
	res, status, err := u.Exec(nil, newStub(), 0, nil)
	if err != nil || status != native.StatusOK || res.Val != 7 {
		t.Fatalf("exec after mprotect: res=%+v status=%v err=%v", res, status, err)
	}
	if err := u.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// protAt scans /proc/self/maps for the mapping containing addr.
func protAt(t *testing.T, addr uint64) (string, bool) {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Fatalf("reading maps: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		lo, hi, ok := strings.Cut(fields[0], "-")
		if !ok {
			continue
		}
		start, err1 := strconv.ParseUint(lo, 16, 64)
		end, err2 := strconv.ParseUint(hi, 16, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if addr >= start && addr < end {
			return fields[1], true
		}
	}
	return "", false
}

// TestLowerRejectsUnknownKind pins the no-partial-lowering rule.
func TestLowerRejectsUnknownKind(t *testing.T) {
	code := &lir.Code{Name: "bad", NumRegs: 2, Ops: []lir.Op{{Kind: lir.KindCount}}}
	if _, err := Lower(code); err != ErrUnsupported {
		t.Fatalf("Lower(unknown kind) = %v, want ErrUnsupported", err)
	}
	if _, err := Lower(&lir.Code{Name: "empty"}); err != ErrUnsupported {
		t.Fatalf("Lower(empty) = %v, want ErrUnsupported", err)
	}
}

// osrLoopCode builds a loop with an eligible OSR entry whose frame map
// covers the sum and induction slots.
func osrLoopCode() *lir.Code {
	code := loopCode()
	code.OSREntries = []lir.OSREntry{{
		Ordinal: 0, PC: 4, Eligible: true,
		Slots: []lir.FrameSlot{
			{Slot: 0, Reg: 2, Kind: lir.SlotNum}, // n
			{Slot: 1, Reg: 3, Kind: lir.SlotNum}, // sum
			{Slot: 2, Reg: 4, Kind: lir.SlotNum}, // i
		},
		Consts: []lir.ConstSlot{{Reg: 5, Imm: 1}},
	}}
	return code
}

// TestExecOSRParity runs the same mid-loop entry on the machine-code tier
// and the reference tier, across interpreter states and budgets: results,
// steps and refusal decisions must match exactly.
func TestExecOSRParity(t *testing.T) {
	code := osrLoopCode()
	code.Fused = lir.Fuse(code)
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var pool native.Pool
	for _, locals := range [][]value.Value{
		{value.Num(10), value.Num(3), value.Num(2)},
		{value.Num(0), value.Num(0), value.Num(0)},
		{value.Num(5), value.Num(99), value.Num(5)},
	} {
		for maxOps := int64(0); maxOps <= 40; maxOps++ {
			mr, ms, merr, mok := u.ExecOSR(0, locals, newStub(), maxOps, &pool)
			rr, rs, rerr, rok := native.ExecOSR(code, 0, locals, newStub(), maxOps, &pool, false)
			if mok != rok {
				t.Fatalf("locals=%v maxOps=%d: entered %v vs %v", locals, maxOps, mok, rok)
			}
			mcr, rfr := observe(mr, ms, merr), observe(rr, rs, rerr)
			if !sameRun(mcr, rfr) {
				t.Errorf("locals=%v maxOps=%d: mc %+v != native %+v", locals, maxOps, mcr, rfr)
			}
		}
	}
}

// TestExecOSRStrictMaterialization: a local whose runtime type contradicts
// the frame map's static kind must refuse the transfer on both tiers —
// never coerce, never enter.
func TestExecOSRStrictMaterialization(t *testing.T) {
	code := osrLoopCode()
	code.Fused = lir.Fuse(code)
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var pool native.Pool
	bad := [][]value.Value{
		{value.Undef(), value.Num(0), value.Num(0)},
		{value.Num(1), value.Bool(true), value.Num(0)},
		{value.Num(1), value.Num(0)}, // frame map slot beyond the locals
	}
	for _, locals := range bad {
		_, _, _, mok := u.ExecOSR(0, locals, newStub(), 0, &pool)
		_, _, _, rok := native.ExecOSR(code, 0, locals, newStub(), 0, &pool, false)
		if mok || rok {
			t.Errorf("locals=%v: entered mc=%v native=%v, want both refused", locals, mok, rok)
		}
	}
}

// TestSpillPressureOSR drives an OSR entry through a frame wider than 14
// live values: the memory-resident register file has no cliff at the
// hardware register count, and the strict materialization contract holds
// slot for slot.
func TestSpillPressureOSR(t *testing.T) {
	const width = 20
	// while (i < n) { i = i + 1; acc_k = acc_k + k } with width accs, all
	// in the frame map.
	var ops []lir.Op
	header := int32(0)
	ops = append(ops, lir.Op{Kind: lir.KOSRPoint, Aux: 0})
	cmp := int32(3 + width)
	one := int32(4 + width)
	ops = append(ops,
		lir.Op{Kind: lir.KCmp, Dst: cmp, A: 1, B: 0, Aux: 1},
		lir.Op{Kind: lir.KBranchFalse, A: cmp, Target: int32(2*width + 6)},
		lir.Op{Kind: lir.KConst, Dst: one, Imm: 1},
		lir.Op{Kind: lir.KAdd, Dst: 1, A: 1, B: one},
	)
	for k := 0; k < width; k++ {
		ops = append(ops,
			lir.Op{Kind: lir.KConst, Dst: one, Imm: float64(k) + 0.5},
			lir.Op{Kind: lir.KAdd, Dst: int32(2 + k), A: int32(2 + k), B: one},
		)
	}
	ops = append(ops, lir.Op{Kind: lir.KJump, Target: header})
	// Exit: sum every acc.
	sum := int32(5 + width)
	ops = append(ops, lir.Op{Kind: lir.KConst, Dst: sum, Imm: 0})
	if int(ops[2].Target) != len(ops)-1 {
		panic(fmt.Sprintf("branch target %d != %d", ops[2].Target, len(ops)-1))
	}
	for k := 0; k < width; k++ {
		ops = append(ops, lir.Op{Kind: lir.KAdd, Dst: sum, A: sum, B: int32(2 + k)})
	}
	ops = append(ops, lir.Op{Kind: lir.KRetNum, A: sum})

	slots := []lir.FrameSlot{{Slot: 0, Reg: 0, Kind: lir.SlotNum}, {Slot: 1, Reg: 1, Kind: lir.SlotNum}}
	for k := 0; k < width; k++ {
		slots = append(slots, lir.FrameSlot{Slot: int32(2 + k), Reg: int32(2 + k), Kind: lir.SlotNum})
	}
	code := &lir.Code{
		Name: "spill-osr", NumParams: 2, NumRegs: int(sum) + 1, Ops: ops,
		OSREntries: []lir.OSREntry{{Ordinal: 0, PC: header, Eligible: true, Slots: slots}},
	}
	if code.NumRegs <= 14 {
		t.Fatalf("frame must exceed 14 live values, got %d", code.NumRegs)
	}
	code.Fused = lir.Fuse(code)
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	locals := make([]value.Value, 2+width)
	locals[0] = value.Num(6) // n
	locals[1] = value.Num(2) // i
	for k := 0; k < width; k++ {
		locals[2+k] = value.Num(float64(k) * 1.25)
	}
	var pool native.Pool
	for maxOps := int64(0); maxOps <= 220; maxOps += 7 {
		mr, ms, merr, mok := u.ExecOSR(0, locals, newStub(), maxOps, &pool)
		rr, rs, rerr, rok := native.ExecOSR(code, 0, locals, newStub(), maxOps, &pool, false)
		if mok != rok {
			t.Fatalf("maxOps=%d: entered %v vs %v", maxOps, mok, rok)
		}
		if !mok {
			continue
		}
		mcr, rfr := observe(mr, ms, merr), observe(rr, rs, rerr)
		if !sameRun(mcr, rfr) {
			t.Errorf("maxOps=%d: mc %+v != native %+v", maxOps, mcr, rfr)
		}
		if maxOps == 0 && math.IsNaN(mr.Val) {
			t.Fatalf("unexpected NaN result")
		}
	}
	// Strictness at width: corrupt one deep slot's type.
	locals[2+width-1] = value.Bool(true)
	_, _, _, mok := u.ExecOSR(0, locals, newStub(), 0, &pool)
	_, _, _, rok := native.ExecOSR(code, 0, locals, newStub(), 0, &pool, false)
	if mok || rok {
		t.Fatalf("corrupted slot type entered: mc=%v native=%v", mok, rok)
	}
}

//go:build amd64 && (linux || darwin)

#include "textflag.h"

// func enter(entry uintptr, f *mcframe) int32
//
// The bridge between Go and generated code. Register convention for
// generated code (see lower.go):
//
//	RDI = &mcframe (exit record + environment; preserved by generated code)
//	RBX = &regs[0]   R13 = &tags[0]   R12 = &cells[0]   R15 = steps
//	scratch: RAX RCX RDX R8, XMM0-XMM1
//
// Generated code never touches R14 (Go's g register), X15 (Go's zero
// register), RBP, or RSP beyond the CALL/RET pair, makes no calls, and
// uses no stack — so NOSPLIT with a zero frame is sound: the only stack
// cost below the guard is the 8-byte return address.
TEXT ·enter(SB), NOSPLIT, $0-20
	MOVQ f+8(FP), DI
	MOVQ 64(DI), BX  // frame.regs
	MOVQ 72(DI), R13 // frame.tags
	MOVQ 80(DI), R12 // frame.cells
	MOVQ 8(DI), R15  // frame.steps
	MOVQ entry+0(FP), AX
	CALL AX
	MOVQ R15, 8(DI)  // flush steps back; exitpc/checks were written in memory
	MOVL AX, ret+16(FP)
	RET

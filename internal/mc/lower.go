// LIR → amd64 lowering.
//
// Execution model: the canonical register file stays in memory — the same
// pooled []float64 / []Tag the threaded and unfused executors run over —
// and generated code addresses it off RBX (floats) and R13 (tags), with
// the arena cells off R12 and the exit frame off RDI. That choice IS the
// deopt/OSR bridge contract: at any exit the register file is already the
// complete activation state, so delegation to the reference executor, OSR
// materialization and deopt reconstruction need zero flush code and cannot
// drift from the other tiers.
//
// Budget discipline matches the fused tier exactly: steps accumulate in
// R15 (flushed in static increments, not per-op), and the only budget
// checks are one at entry (performed by the Go run loop) plus one per
// taken jump — if steps + cost[target] would exceed the budget, the code
// exits with a delegate record and the reference loop finishes the
// activation, tripping the budget at the bit-identical op.
//
// Ops whose semantics live in Go (calls, allocation, math builtins)
// compile to a runtime-exit: the run loop executes that single op with
// reference semantics and re-enters at the next op's offset. Hot ops with
// a cheap common case — modulo, global loads/number-stores, raw element
// counts — compile to an inline fast path whose guards exit to the same
// runtime handler, so both routes produce identical bits.
// Guard failures and unmapped accesses compile to a delegate-exit *before*
// any side effect, so the reference loop re-executes the op and produces
// the identical bailout or crash.
package mc

import (
	"errors"
	"math"

	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// ErrUnsupported marks code the lowering declines; the engine falls back
// to the threaded tier silently (legitimate tiering, not a failure).
var ErrUnsupported = errors.New("mc: unsupported code shape")

// Exit kinds generated code reports in RAX (see exec_amd64.go's run loop).
const (
	exitRet      = 1 // frame.exitpc is a KRet* op: build the Result in Go
	exitDelegate = 2 // resume the reference loop at frame.exitpc
	exitRuntime  = 3 // execute the op at frame.exitpc in Go, re-enter after
)

// Frame field offsets, shared with the exec trampoline (enter_amd64.s)
// and the mcframe struct (exec_amd64.go, which asserts them with
// unsafe.Offsetof).
const (
	fExitPC    = 0  // exit operand: LIR pc
	fSteps     = 8  // step counter (R15), loaded/stored by the trampoline
	fChecks    = 16 // block-check counter, bumped in memory at taken jumps
	fMaxOps    = 24 // step budget
	fTop       = 32 // arena allocation top (refreshed before every entry)
	fCodeBase  = 40 // arena code-region base
	fCodeLen   = 48 // arena code-region length (cells beyond codeBase)
	fHandleLen = 56 // live handle count (refreshed before every entry)
	fRegs      = 64 // &regs[0] (RBX)
	fTags      = 72 // &tags[0] (R13)
	fCells     = 80 // &cells[0] (R12)
	fHandles   = 88 // &handles[0] (refreshed before every entry)

	// Global-slot window: hooks that expose their backing []value.Value
	// (the engine) let generated code service KLoadGlobal / KStoreGlobalNum
	// inline; hooks that don't leave the length 0 and every global op takes
	// the runtime-exit slow path through GlobalGet/GlobalSet.
	fGlobalsLen = 96  // number of exposed global slots
	fGlobals    = 104 // &globals[0] (value.Value layout via value.Layout)
)

// maxExactInt mirrors value.Mod's int-fast-path magnitude bound (2^53).
const maxExactInt = 9007199254740992

// Program is relocatable machine code for one function plus the side
// tables the run loop needs. Install (install_amd64.go) copies Buf into a
// W^X page pair to produce an executable Unit.
type Program struct {
	Code *lir.Code
	Buf  []byte
	// Off[pc] is the entry offset of op pc: the address generated jumps
	// target, the run loop re-enters after runtime ops, and OSR enters at
	// loop headers. Every offset is reachable with the accumulated step
	// counter already flushed.
	Off []int32
	// Cost[pc] is the worst-case step charge from pc to the next budget
	// check (taken jump) or exit — the fused tier's computeCost shape over
	// raw ops.
	Cost []int32
	// RT[pc] marks ops the Go run loop executes (runtime-exit ops).
	RT []bool
	// HostStep[pc] tells the run loop whether to charge the op's step when
	// servicing a runtime exit at pc. True for every RT op (their step is
	// never in the compiled pending count). For hybrid ops — inline fast
	// path with a runtime slow exit (KMod, the global ops, KElemsRaw) —
	// the op's step is baked into the flush the fall-through path reaches,
	// so the host charges it only when the slow-path re-entry skips that
	// flush: next op is a block leader (the flush sits before its entry
	// offset), a runtime op (the host never re-enters native code before
	// it), or the end of the stream. Terminal slow-path outcomes (crash,
	// bail, deopt) never reach any flush; the run loop charges the step on
	// those exits itself.
	HostStep []bool
}

type stubKey struct {
	pc   int32
	kind uint8
}

type lowerer struct {
	a    Asm
	code *lir.Code
	cost []int32
	off  []int32
	rt   []bool
	// hybrid marks ops compiled as an inline fast path with a runtime-exit
	// slow path (KMod, the global ops, KElemsRaw): their step is in the
	// compiled pending count, so the host charges it only when the slow
	// re-entry skips the downstream flush.
	hybrid []bool
	fix    []jumpFixup
	stubs  map[stubKey][]int
	pend   int32
}

type jumpFixup struct {
	at int
	pc int32
}

// Lower compiles code to relocatable amd64 bytes. It never partially
// lowers: any op kind outside the supported set returns ErrUnsupported
// (the current LIR instruction set is fully covered; the guard is for
// future kinds).
func Lower(code *lir.Code) (*Program, error) {
	n := len(code.Ops)
	if n == 0 {
		return nil, ErrUnsupported
	}
	for i := range code.Ops {
		if code.Ops[i].Kind >= lir.KindCount {
			return nil, ErrUnsupported
		}
	}
	lo := &lowerer{
		code:   code,
		cost:   computeCost(code.Ops),
		off:    make([]int32, n),
		rt:     make([]bool, n),
		hybrid: make([]bool, n),
		stubs:  map[stubKey][]int{},
	}
	leaders := make([]bool, n+1)
	leaders[0] = true
	for i := range code.Ops {
		op := &code.Ops[i]
		if op.Kind == lir.KJump || op.Kind == lir.KBranchFalse {
			if int(op.Target) <= n {
				leaders[op.Target] = true
			}
		}
		if op.Kind == lir.KOSRPoint {
			leaders[i] = true // OSR enters here with a fresh step count
		}
	}
	for i := range code.Ops {
		if leaders[i] {
			lo.flush(0)
		}
		lo.off[i] = int32(lo.a.Len())
		lo.emitOp(int32(i), &code.Ops[i])
	}
	// Fallthrough off the end: delegate at pc=n — the reference loop's
	// empty tail returns undefined with the exact steps/checks.
	lo.flush(0)
	lo.exit(int32(n), exitDelegate)
	lo.emitStubs()
	for _, fx := range lo.fix {
		lo.a.Patch32(fx.at, int(lo.off[fx.pc]))
	}
	hostStep := make([]bool, n)
	for i := range code.Ops {
		switch {
		case lo.rt[i]:
			hostStep[i] = true
		case lo.hybrid[i]:
			hostStep[i] = i+1 == n || leaders[i+1] || lo.rt[i+1]
		}
	}
	return &Program{Code: code, Buf: lo.a.Buf, Off: lo.off, Cost: lo.cost, RT: lo.rt, HostStep: hostStep}, nil
}

// computeCost is the fused tier's backward cost pass over raw ops: the
// step charge from op i to the next control transfer, so a single check
// at block entry covers the whole straight-line run.
func computeCost(ops []lir.Op) []int32 {
	n := len(ops)
	cost := make([]int32, n+1)
	for i := n - 1; i >= 0; i-- {
		var own int32 = 1
		if ops[i].Kind == lir.KOSRPoint {
			own = 0
		}
		switch ops[i].Kind {
		case lir.KJump, lir.KRetNum, lir.KRetObj, lir.KRetUndef:
			cost[i] = own
		default:
			cost[i] = own + cost[i+1]
		}
	}
	return cost
}

// flush materializes the statically-accumulated step count (plus extra)
// into R15. Every exit path and every label runs with pend == 0.
func (lo *lowerer) flush(extra int32) {
	if v := lo.pend + extra; v > 0 {
		lo.a.AddRegImm(R15, v)
	}
	lo.pend = 0
}

// exit emits an inline exit: record the pc operand and return the kind to
// the trampoline.
func (lo *lowerer) exit(pc int32, kind int32) {
	lo.a.MovRegImm32(RCX, pc)
	lo.a.MovMemReg(RDI, fExitPC, RCX)
	lo.a.MovRegImm32(RAX, kind)
	lo.a.Ret()
}

// toStub emits a forward jcc whose target is the (pc, kind) exit stub,
// emitted out of line after the body so hot paths stay dense.
func (lo *lowerer) toStub(cc Cond, pc int32, kind uint8) {
	at := lo.a.JccFwd(cc)
	k := stubKey{pc, kind}
	lo.stubs[k] = append(lo.stubs[k], at)
}

func (lo *lowerer) emitStubs() {
	// Deterministic order: by pc then kind. The map is small; scan pcs.
	for pc := int32(0); pc <= int32(len(lo.code.Ops)); pc++ {
		for _, kind := range []uint8{exitDelegate, exitRuntime} {
			k := stubKey{pc, kind}
			sites, ok := lo.stubs[k]
			if !ok {
				continue
			}
			at := lo.a.Len()
			for _, s := range sites {
				lo.a.Patch32(s, at)
			}
			lo.exit(pc, int32(kind))
		}
	}
}

// slot returns the byte displacement of float register r off RBX.
func slot(r int32) int32 { return r * 8 }

// runtimeOp emits a runtime-exit for ops whose semantics execute in Go.
// The Go handler charges the op's step itself, so only the accumulated
// count is flushed.
func (lo *lowerer) runtimeOp(pc int32) {
	lo.flush(0)
	lo.rt[pc] = true
	lo.exit(pc, exitRuntime)
}

// mappedCheck emits the arena memory-map test on the address in RAX —
// (uint64)addr < top || (uint64)(addr-codeBase) < codeLen — delegating to
// the reference loop (which reproduces the exact CrashError) when
// unmapped. Clobbers RCX.
func (lo *lowerer) mappedCheck(pc int32) {
	lo.a.CmpRegMem(RAX, RDI, fTop)
	okJmp := lo.a.JccFwd(CondB) // unsigned below top: mapped heap
	lo.a.MovRegReg(RCX, RAX)
	lo.a.SubRegMem(RCX, RDI, fCodeBase)
	lo.a.CmpRegMem(RCX, RDI, fCodeLen)
	lo.toStub(CondAE, pc, exitDelegate) // outside the code region too
	lo.a.Patch32(okJmp, lo.a.Len())
}

// jumpTo emits the taken-jump sequence: charge the pending steps, bump
// the block-check counter, and either delegate (budget within reach of
// the target's straight-line cost) or jump.
func (lo *lowerer) jumpTo(target int32) {
	lo.a.AddMemImm(RDI, fChecks, 1)
	lo.a.MovRegReg(RAX, R15)
	lo.a.AddRegImm(RAX, lo.cost[target])
	lo.a.CmpRegMem(RAX, RDI, fMaxOps)
	lo.toStub(CondG, target, exitDelegate)
	at := lo.a.JmpFwd()
	lo.fix = append(lo.fix, jumpFixup{at, target})
}

// cmpResult stores the 0/1 comparison outcome held in AL.
func (lo *lowerer) cmpResult(dst int32) {
	lo.a.MovzxReg32Reg8(RAX, RAX)
	lo.a.Cvtsi2sdXmmReg(X0, RAX, false)
	lo.a.MovsdMemXmm(RBX, slot(dst), X0)
}

func (lo *lowerer) emitOp(pc int32, op *lir.Op) {
	a := &lo.a
	switch op.Kind {
	case lir.KNop:
		lo.pend++
	case lir.KOSRPoint:
		// Charges no step (the reference loop undoes its increment).
	case lir.KConst:
		a.MovRegImm64(RAX, math.Float64bits(op.Imm))
		a.MovMemReg(RBX, slot(op.Dst), RAX)
		lo.pend++
	case lir.KMove, lir.KMoveTag:
		a.MovRegMem(RAX, RBX, slot(op.A))
		a.MovMemReg(RBX, slot(op.Dst), RAX)
		if op.Kind == lir.KMoveTag {
			a.MovzxRegMem8(RCX, R13, op.A)
			a.MovMem8Reg(R13, op.Dst, RCX)
		}
		lo.pend++
	case lir.KAdd, lir.KSub, lir.KMul, lir.KDiv:
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		switch op.Kind {
		case lir.KAdd:
			a.AddsdXmmMem(X0, RBX, slot(op.B))
		case lir.KSub:
			a.SubsdXmmMem(X0, RBX, slot(op.B))
		case lir.KMul:
			a.MulsdXmmMem(X0, RBX, slot(op.B))
		default:
			a.DivsdXmmMem(X0, RBX, slot(op.B))
		}
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KNeg:
		// IEEE negation is a sign-bit flip — Go's -x for every input
		// including NaN and ±0.
		a.MovRegMem(RAX, RBX, slot(op.A))
		a.BtcRegImm(RAX, 63)
		a.MovMemReg(RBX, slot(op.Dst), RAX)
		lo.pend++
	case lir.KNot:
		// !truthy(a) ⟺ a == 0 or NaN ⟺ ZF after ucomisd 0.0, a.
		a.XorpsXmmXmm(X0, X0)
		a.UcomisdXmmMem(X0, RBX, slot(op.A))
		a.SetccReg8(CondE, RAX)
		lo.cmpResult(op.Dst)
		lo.pend++
	case lir.KCmp:
		lo.emitCmp(op)
		lo.pend++
	case lir.KBitAnd, lir.KBitOr, lir.KBitXor:
		// ToInt32 ≡ the low 32 bits of cvttsd2si-64 for every input (the
		// 0x8000000000000000 overflow sentinel's low half is 0, matching
		// the explicit NaN/Inf→0 branch).
		a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
		a.Cvttsd2siRegMem(RCX, RBX, slot(op.B), true)
		switch op.Kind {
		case lir.KBitAnd:
			a.AndRegReg32(RAX, RCX)
		case lir.KBitOr:
			a.OrRegReg32(RAX, RCX)
		default:
			a.XorRegReg32(RAX, RCX)
		}
		a.Cvtsi2sdXmmReg(X0, RAX, false)
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KShl, lir.KShr, lir.KUshr:
		a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
		a.Cvttsd2siRegMem(RCX, RBX, slot(op.B), true)
		a.AndRegImm32(RCX, 31)
		switch op.Kind {
		case lir.KShl:
			a.ShlRegCl32(RAX)
			a.Cvtsi2sdXmmReg(X0, RAX, false)
		case lir.KShr:
			a.SarRegCl32(RAX)
			a.Cvtsi2sdXmmReg(X0, RAX, false)
		default: // KUshr: uint32 result, zero-extended by the 32-bit shift
			a.ShrRegCl32(RAX)
			a.Cvtsi2sdXmmReg(X0, RAX, true)
		}
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KMod:
		lo.emitMod(pc, op)
		lo.pend++
	case lir.KJump:
		lo.flush(1) // the jump op's own step, charged before the check
		lo.jumpTo(op.Target)
	case lir.KBranchFalse:
		lo.flush(1) // charged whether or not taken
		a.XorpsXmmXmm(X0, X0)
		a.UcomisdXmmMem(X0, RBX, slot(op.A))
		skip := a.JccFwd(CondNE) // truthy: fall through, no check
		lo.jumpTo(op.Target)
		a.Patch32(skip, a.Len())
	case lir.KUnbox, lir.KGuardType:
		lo.flush(0)
		a.MovzxRegMem8(RAX, R13, op.A)
		if op.Aux == 1 {
			a.CmpRegImm(RAX, 3) // TagObject
			lo.toStub(CondNE, pc, exitDelegate)
		} else {
			a.SubRegImm(RAX, 1) // tag-1 ∈ {0,1} ⟺ Number or Boolean
			a.CmpRegImm(RAX, 1)
			lo.toStub(CondA, pc, exitDelegate)
		}
		a.MovRegMem(RCX, RBX, slot(op.A))
		a.MovMemReg(RBX, slot(op.Dst), RCX)
		a.MovzxRegMem8(RCX, R13, op.A)
		a.MovMem8Reg(R13, op.Dst, RCX)
		lo.pend++
	case lir.KElemsHandle, lir.KAddrOf:
		lo.flush(0)
		// int32(regs[a]) via the 32-bit cvttsd2si (Go's exact conversion),
		// zero-extended so one unsigned compare covers h<0 and h>=len.
		a.Cvttsd2siRegMem(RCX, RBX, slot(op.A), false)
		a.CmpRegMem(RCX, RDI, fHandleLen)
		lo.toStub(CondAE, pc, exitDelegate)
		a.MovRegMem(RDX, RDI, fHandles)
		a.MovRegMemIdx(RAX, RDX, RCX, 8, 0)
		a.AddRegImm(RAX, heap.HeaderCells)
		a.Cvtsi2sdXmmReg(X0, RAX, true)
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KInitLen:
		lo.flush(0)
		a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
		a.SubRegImm(RAX, heap.HeaderCells)
		lo.mappedCheck(pc)
		a.MovsdXmmMemIdx(X0, R12, RAX, 8, 0)
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KBoundsCheck:
		lo.flush(0)
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		a.Cvttsd2siRegXmm(RAX, X0, true)
		a.Cvtsi2sdXmmReg(X1, RAX, true)
		a.UcomisdXmmXmm(X1, X0)
		lo.toStub(CondNE, pc, exitDelegate) // not integral
		lo.toStub(CondP, pc, exitDelegate)  // NaN
		a.TestRegReg(RAX, RAX)
		lo.toStub(CondS, pc, exitDelegate) // negative
		a.UcomisdXmmMem(X0, RBX, slot(op.B))
		lo.toStub(CondP, pc, exitDelegate)  // NaN length
		lo.toStub(CondAE, pc, exitDelegate) // idx >= length
		lo.pend++
	case lir.KLoadElem:
		lo.flush(0)
		lo.elemAddr(op)
		lo.mappedCheck(pc)
		a.MovsdXmmMemIdx(X0, R12, RAX, 8, 0)
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KStoreElem:
		lo.flush(0)
		lo.elemAddr(op)
		lo.mappedCheck(pc)
		a.MovsdXmmMem(X0, RBX, slot(op.C))
		a.MovsdMemIdxXmm(R12, RAX, 8, 0, X0)
		lo.pend++
	case lir.KCodeBase:
		a.Cvtsi2sdXmmMem(X0, RDI, fCodeBase)
		a.MovsdMemXmm(RBX, slot(op.Dst), X0)
		lo.pend++
	case lir.KRetNum, lir.KRetObj, lir.KRetUndef:
		lo.flush(1)
		lo.exit(pc, exitRet)
	case lir.KLoadGlobal:
		lo.emitLoadGlobal(pc, op)
		lo.pend++
	case lir.KStoreGlobalNum:
		lo.emitStoreGlobalNum(pc, op)
		lo.pend++
	case lir.KElemsRaw:
		lo.emitElemsRaw(pc, op)
		lo.pend++
	case lir.KMath, lir.KPow, lir.KSetLen, lir.KPush,
		lir.KPop, lir.KNewArr, lir.KStoreGlobalObj, lir.KCall, lir.KCallSpec:
		lo.runtimeOp(pc)
	default:
		// Unreachable: Lower pre-screens kinds. Emit a delegate so even a
		// future gap stays semantics-preserving.
		lo.flush(0)
		lo.exit(pc, exitDelegate)
	}
}

// elemAddr computes int(regs[A]) + int(regs[B]) + Aux into RAX with Go's
// exact float→int conversions.
func (lo *lowerer) elemAddr(op *lir.Op) {
	lo.a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
	lo.a.Cvttsd2siRegMem(RCX, RBX, slot(op.B), true)
	lo.a.AddRegReg(RAX, RCX)
	if op.Aux != 0 {
		lo.a.AddRegImm(RAX, op.Aux)
	}
}

// emitCmp lowers KCmp with NaN-false semantics. ucomisd x, y sets
// CF,ZF,PF = (x<y):100, (x>y):000, (x==y):010, unordered:111 — so A/AE
// after an operand-ordered compare give <,<=,>,>= with NaN false, and
// equality masks the parity flag explicitly.
func (lo *lowerer) emitCmp(op *lir.Op) {
	a := &lo.a
	switch int(op.Aux) {
	case 1: // a < b ⟺ b > a
		a.MovsdXmmMem(X0, RBX, slot(op.B))
		a.UcomisdXmmMem(X0, RBX, slot(op.A))
		a.SetccReg8(CondA, RAX)
	case 2: // a <= b ⟺ b >= a
		a.MovsdXmmMem(X0, RBX, slot(op.B))
		a.UcomisdXmmMem(X0, RBX, slot(op.A))
		a.SetccReg8(CondAE, RAX)
	case 3: // a > b
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		a.UcomisdXmmMem(X0, RBX, slot(op.B))
		a.SetccReg8(CondA, RAX)
	case 4: // a >= b
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		a.UcomisdXmmMem(X0, RBX, slot(op.B))
		a.SetccReg8(CondAE, RAX)
	case 5: // a == b: ZF and not parity (NaN==NaN is false)
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		a.UcomisdXmmMem(X0, RBX, slot(op.B))
		a.SetccReg8(CondE, RAX)
		a.SetccReg8(CondNP, RCX)
		a.AndRegReg8(RAX, RCX)
	default: // a != b: not ZF or parity (NaN!=NaN is true)
		a.MovsdXmmMem(X0, RBX, slot(op.A))
		a.UcomisdXmmMem(X0, RBX, slot(op.B))
		a.SetccReg8(CondNE, RAX)
		a.SetccReg8(CondP, RCX)
		a.OrRegReg8(RAX, RCX)
	}
	lo.cmpResult(op.Dst)
}

// slowPath returns the jcc-emitter hybrid ops use for their guard exits:
// every failure route lands on this op's runtime-exit stub, so the slow
// path is the reference implementation in the run loop's hostOp.
func (lo *lowerer) slowPath(pc int32) func(Cond) {
	return func(cc Cond) { lo.toStub(cc, pc, exitRuntime) }
}

// Value-slot layout for the inline global window, resolved from the owning
// package so the baked displacements can never drift from the struct. The
// str field has no offset here on purpose: generated code must never touch
// the pointer-carrying field.
var valSize, valTyp, valNum, valRef = func() (int32, int32, int32, int32) {
	s, t, n, r := value.Layout()
	return int32(s), int32(t), int32(n), int32(r)
}()

// emitLoadGlobal inlines KLoadGlobal against the hooks-exposed global
// window: dispatch on the slot's type byte with exactly the reference
// unboxing (Number/Boolean keep their payload, Array boxes the handle,
// everything else is NaN/TagOther). Hooks with no window — and slots
// beyond it — take the runtime exit through GlobalGet, which is the same
// mapping in Go.
func (lo *lowerer) emitLoadGlobal(pc int32, op *lir.Op) {
	a := &lo.a
	lo.flush(0)
	lo.hybrid[pc] = true
	toSlow := lo.slowPath(pc)

	a.MovRegImm32(RAX, op.Aux)
	a.CmpRegMem(RAX, RDI, fGlobalsLen)
	toSlow(CondAE) // slot outside the window (or no window at all)
	disp := op.Aux * valSize
	a.MovRegMem(RDX, RDI, fGlobals)
	a.MovzxRegMem8(RAX, RDX, disp+valTyp)
	// Each arm stores the payload and leaves the native tag in RAX for the
	// shared tag store at the join.
	a.CmpRegImm(RAX, int32(value.Number))
	notNum := a.JccFwd(CondNE)
	a.MovRegMem(RCX, RDX, disp+valNum)
	a.MovMemReg(RBX, slot(op.Dst), RCX)
	a.MovRegImm32(RAX, int32(native.TagNumber))
	join1 := a.JmpFwd()
	a.Patch32(notNum, a.Len())
	a.CmpRegImm(RAX, int32(value.Boolean))
	notBool := a.JccFwd(CondNE)
	a.MovRegMem(RCX, RDX, disp+valNum)
	a.MovMemReg(RBX, slot(op.Dst), RCX)
	a.MovRegImm32(RAX, int32(native.TagBoolean))
	join2 := a.JmpFwd()
	a.Patch32(notBool, a.Len())
	a.CmpRegImm(RAX, int32(value.Array))
	notArr := a.JccFwd(CondNE)
	a.MovsxdRegMem(RCX, RDX, disp+valRef)
	a.Cvtsi2sdXmmReg(X0, RCX, true)
	a.MovsdMemXmm(RBX, slot(op.Dst), X0)
	a.MovRegImm32(RAX, int32(native.TagObject))
	join3 := a.JmpFwd()
	a.Patch32(notArr, a.Len())
	a.MovRegImm64(RCX, math.Float64bits(math.NaN()))
	a.MovMemReg(RBX, slot(op.Dst), RCX)
	a.MovRegImm32(RAX, int32(native.TagOther))
	a.Patch32(join1, a.Len())
	a.Patch32(join2, a.Len())
	a.Patch32(join3, a.Len())
	a.MovMem8Reg(R13, op.Dst, RAX)
}

// emitStoreGlobalNum inlines KStoreGlobalNum: write the slot's type byte
// (Number), the number payload, and a zero handle, leaving the string
// field untouched. Every reader of a Value dispatches on the type byte
// first, so a stale string payload is unobservable — and skipping it keeps
// generated code away from the pointer-carrying field (no write barriers
// outside Go). Hooks with no window take the runtime exit via GlobalSet.
func (lo *lowerer) emitStoreGlobalNum(pc int32, op *lir.Op) {
	a := &lo.a
	lo.flush(0)
	lo.hybrid[pc] = true
	toSlow := lo.slowPath(pc)

	a.MovRegImm32(RAX, op.Aux)
	a.CmpRegMem(RAX, RDI, fGlobalsLen)
	toSlow(CondAE)
	disp := op.Aux * valSize
	a.MovRegMem(RDX, RDI, fGlobals)
	a.MovRegImm32(RAX, int32(value.Number))
	a.MovMem8Reg(RDX, disp+valTyp, RAX)
	a.MovRegMem(RCX, RBX, slot(op.A))
	a.MovMemReg(RDX, disp+valNum, RCX)
	a.XorRegReg32(RAX, RAX)
	a.MovMem32Reg(RDX, disp+valRef, RAX)
}

// emitElemsRaw inlines KElemsRaw's success path: operand integral (the
// 64-bit truncate round-trips) and the int32-wrapped handle valid — the
// exact condition under which the reference op returns the elements
// pointer. Anything else (invalid handle, fractional operand, float out of
// int64 range) runtime-exits to the reference code, which reproduces the
// crash / truncate fallbacks bit-for-bit.
func (lo *lowerer) emitElemsRaw(pc int32, op *lir.Op) {
	a := &lo.a
	lo.flush(0)
	lo.hybrid[pc] = true
	toSlow := lo.slowPath(pc)

	a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
	a.Cvtsi2sdXmmReg(X1, RAX, true)
	a.UcomisdXmmMem(X1, RBX, slot(op.A))
	toSlow(CondNE)           // not integral (or beyond int64)
	toSlow(CondP)            // NaN
	a.MovsxdRegReg(RCX, RAX) // Go's int32(hnd) wrap, sign-extended
	a.CmpRegMem(RCX, RDI, fHandleLen)
	toSlow(CondAE) // invalid handle (negative is huge unsigned)
	a.MovRegMem(RDX, RDI, fHandles)
	a.MovRegMemIdx(RAX, RDX, RCX, 8, 0)
	a.AddRegImm(RAX, heap.HeaderCells)
	a.Cvtsi2sdXmmReg(X0, RAX, true)
	a.MovsdMemXmm(RBX, slot(op.Dst), X0)
}

// emitMod inlines value.Mod's int fast path under exactly its condition —
// both operands integral (cvttsd2si round-trip), divisor nonzero, both
// magnitudes under 2^53 — and runtime-exits to the full value.Mod
// otherwise. Both routes produce value.Mod's bits.
func (lo *lowerer) emitMod(pc int32, op *lir.Op) {
	a := &lo.a
	lo.flush(0)
	lo.hybrid[pc] = true // only the slow path exits; the fast path's step is in pend
	toSlow := lo.slowPath(pc)

	a.Cvttsd2siRegMem(RAX, RBX, slot(op.A), true)
	a.Cvtsi2sdXmmReg(X1, RAX, true)
	a.UcomisdXmmMem(X1, RBX, slot(op.A))
	toSlow(CondNE)
	toSlow(CondP)
	a.Cvttsd2siRegMem(RCX, RBX, slot(op.B), true)
	a.Cvtsi2sdXmmReg(X1, RCX, true)
	a.UcomisdXmmMem(X1, RBX, slot(op.B))
	toSlow(CondNE)
	toSlow(CondP)
	a.TestRegReg(RCX, RCX)
	toSlow(CondE) // y == 0 (incl. -0.0, which truncates to 0)
	a.MovRegImm64(RDX, maxExactInt)
	a.CmpRegReg(RAX, RDX)
	toSlow(CondGE)
	a.CmpRegReg(RCX, RDX)
	toSlow(CondGE)
	a.NegReg(RDX)
	a.CmpRegReg(RAX, RDX)
	toSlow(CondLE)
	a.CmpRegReg(RCX, RDX)
	toSlow(CondLE)
	a.MovRegReg(R8, RCX)
	a.Cqo()
	a.IdivReg(R8)
	a.Cvtsi2sdXmmReg(X0, RDX, true)
	a.MovsdMemXmm(RBX, slot(op.Dst), X0)
}

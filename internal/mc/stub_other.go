//go:build !(amd64 && (linux || darwin))

package mc

import (
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// Supported reports whether this build can execute machine code. The
// lowering and encoder still compile and test on every platform; only
// install/execute are gated.
func Supported() bool { return false }

// Unit exists so the engine's wiring typechecks on unsupported platforms;
// no value of this type is ever created (Install always fails), so the
// methods are unreachable.
type Unit struct{}

// Install refuses on unsupported platforms; the engine degrades to the
// threaded tier silently.
func Install(prog *Program) (*Unit, error) { return nil, ErrUnsupported }

// Compile refuses on unsupported platforms.
func Compile(code *lir.Code) (*Unit, error) { return nil, ErrUnsupported }

// Exec is unreachable (no Unit is ever constructed here).
func (u *Unit) Exec(args []value.Value, h native.Hooks, maxOps int64, pool *native.Pool) (native.Result, native.Status, error) {
	return native.Result{}, native.StatusOK, ErrUnsupported
}

// ExecOSR is unreachable (no Unit is ever constructed here).
func (u *Unit) ExecOSR(entryIdx int, locals []value.Value, h native.Hooks, maxOps int64, pool *native.Pool) (native.Result, native.Status, error, bool) {
	return native.Result{}, native.StatusOK, nil, false
}

// Transitions is unreachable.
func (u *Unit) Transitions() []string { return nil }

// Release is unreachable.
func (u *Unit) Release() error { return nil }

// Package mc is the machine-code tier below LIR: a hand-rolled amd64
// encoder, a lowering that turns regalloc'd LIR into native code, a strict
// W^X installer, and an execution bridge whose every rare path (budget,
// guard, crash, OSR, deopt) delegates to the unfused reference executor at
// the equivalent LIR pc — which is what keeps Steps, bailouts, deopt frames
// and policy verdicts bit-identical across tiers.
//
// This file is the assembler. It encodes exactly the instruction forms the
// lowering emits — nothing speculative — and each form is pinned by a
// golden-byte test (asm_test.go) cross-checked once against objdump.
package mc

import "encoding/binary"

// Reg is a 64-bit general-purpose register in encoding order.
type Reg uint8

// General-purpose registers. The lowering's convention: RBX holds the
// float register file base, R12 the arena cells base, R13 the tag file
// base, R15 the step counter, RDI the exit-frame base; RAX/RCX/RDX/RSI
// and R8-R11 are scratch. R14 (the Go runtime's g register) and RSP/RBP
// are never touched by generated code.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Xmm is an SSE register.
type Xmm uint8

// SSE registers; X0-X5 are the lowering's scratch set.
const (
	X0 Xmm = iota
	X1
	X2
	X3
	X4
	X5
)

// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
type Cond uint8

// Condition codes used by the lowering. Unsigned conditions (B/AE/A)
// double as ucomisd float conditions: after ucomisd a, b — A is a>b with
// NaN false, AE is a>=b with NaN false, B is a<b but NaN-TRUE (so the
// lowering only ever branches on A/AE/E/NE/P with operand swaps).
const (
	CondO  Cond = 0x0
	CondB  Cond = 0x2 // below (CF=1)
	CondAE Cond = 0x3 // above or equal (CF=0)
	CondE  Cond = 0x4 // equal (ZF=1)
	CondNE Cond = 0x5 // not equal (ZF=0)
	CondA  Cond = 0x7 // above (CF=0 and ZF=0)
	CondS  Cond = 0x8 // sign (SF=1)
	CondP  Cond = 0xa // parity (PF=1, ucomisd unordered)
	CondNP Cond = 0xb // no parity
	CondL  Cond = 0xc // less (signed)
	CondGE Cond = 0xd // greater or equal (signed)
	CondLE Cond = 0xe // less or equal (signed)
	CondG  Cond = 0xf // greater (signed)
)

// Asm accumulates encoded instructions. Jump targets are patched by the
// caller via Patch32 using the offsets returned by the forward-branch
// emitters.
type Asm struct {
	Buf []byte
}

func (a *Asm) byte(b byte)     { a.Buf = append(a.Buf, b) }
func (a *Asm) bytes(b ...byte) { a.Buf = append(a.Buf, b...) }

func (a *Asm) imm32(v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	a.Buf = append(a.Buf, b[:]...)
}

func (a *Asm) imm64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	a.Buf = append(a.Buf, b[:]...)
}

// Len returns the current code offset.
func (a *Asm) Len() int { return len(a.Buf) }

// Patch32 overwrites the 4 bytes at off with the rel32 displacement from
// the end of the instruction (off+4) to target.
func (a *Asm) Patch32(off, target int) {
	binary.LittleEndian.PutUint32(a.Buf[off:], uint32(int32(target-(off+4))))
}

// rex emits a REX prefix. w selects 64-bit operand size; r/x/b extend the
// ModRM reg field, SIB index, and ModRM rm / SIB base respectively.
func (a *Asm) rex(w bool, r, x, b uint8) {
	v := byte(0x40)
	if w {
		v |= 8
	}
	v |= (r & 8) >> 1
	v |= (x & 8) >> 2
	v |= (b & 8) >> 3
	a.byte(v)
}

// rexIf emits REX only when some bit is needed (for 32-bit and 8-bit
// forms involving extended registers).
func (a *Asm) rexIf(r, x, b uint8) {
	if r&8 != 0 || x&8 != 0 || b&8 != 0 {
		a.rex(false, r, x, b)
	}
}

// modrmReg emits a register-direct ModRM byte.
func (a *Asm) modrmReg(reg, rm uint8) {
	a.byte(0xc0 | (reg&7)<<3 | rm&7)
}

// modrmMem emits ModRM(+SIB)+disp for a [base+disp] operand. RSP/R12
// bases need a SIB byte; RBP/R13 bases cannot use the disp-less mod=00
// form. disp width is chosen canonically (0, then int8, then int32) so
// encodings are deterministic and golden-testable.
func (a *Asm) modrmMem(reg uint8, base Reg, disp int32) {
	b := uint8(base) & 7
	mod := uint8(0)
	switch {
	case disp == 0 && b != 5: // no displacement (except rbp/r13)
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	a.byte(mod<<6 | (reg&7)<<3 | b)
	if b == 4 { // rsp/r12: SIB with no index
		a.byte(0x24)
	}
	switch mod {
	case 1:
		a.byte(byte(disp))
	case 2:
		a.imm32(disp)
	}
}

// modrmMemIdx emits ModRM+SIB+disp for a [base+index*scale+disp] operand.
// index must not be RSP (unencodable as an index).
func (a *Asm) modrmMemIdx(reg uint8, base, index Reg, scale uint8, disp int32) {
	var ss uint8
	switch scale {
	case 1:
		ss = 0
	case 2:
		ss = 1
	case 4:
		ss = 2
	case 8:
		ss = 3
	default:
		panic("mc: bad scale")
	}
	b := uint8(base) & 7
	mod := uint8(0)
	switch {
	case disp == 0 && b != 5:
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	a.byte(mod<<6 | (reg&7)<<3 | 4)
	a.byte(ss<<6 | (uint8(index)&7)<<3 | b)
	switch mod {
	case 1:
		a.byte(byte(disp))
	case 2:
		a.imm32(disp)
	}
}

// ---- moves ----

// MovRegImm64 encodes mov dst, imm64 (REX.W B8+rd io) — the lowering's
// only way to materialize constants, keeping code position-independent
// with no literal pool.
func (a *Asm) MovRegImm64(dst Reg, imm uint64) {
	a.rex(true, 0, 0, uint8(dst))
	a.byte(0xb8 + uint8(dst)&7)
	a.imm64(imm)
}

// MovRegImm32 encodes mov dst32, imm32 (B8+rd id), zero-extending into
// the full register.
func (a *Asm) MovRegImm32(dst Reg, imm int32) {
	a.rexIf(0, 0, uint8(dst))
	a.byte(0xb8 + uint8(dst)&7)
	a.imm32(imm)
}

// MovRegReg encodes mov dst, src (REX.W 89 /r).
func (a *Asm) MovRegReg(dst, src Reg) {
	a.rex(true, uint8(src), 0, uint8(dst))
	a.byte(0x89)
	a.modrmReg(uint8(src), uint8(dst))
}

// MovRegMem encodes mov dst, [base+disp] (REX.W 8B /r).
func (a *Asm) MovRegMem(dst, base Reg, disp int32) {
	a.rex(true, uint8(dst), 0, uint8(base))
	a.byte(0x8b)
	a.modrmMem(uint8(dst), base, disp)
}

// MovMemReg encodes mov [base+disp], src (REX.W 89 /r).
func (a *Asm) MovMemReg(base Reg, disp int32, src Reg) {
	a.rex(true, uint8(src), 0, uint8(base))
	a.byte(0x89)
	a.modrmMem(uint8(src), base, disp)
}

// MovRegMemIdx encodes mov dst, [base+index*scale+disp] (REX.W 8B /r with
// SIB) — the handle-table load.
func (a *Asm) MovRegMemIdx(dst, base, index Reg, scale uint8, disp int32) {
	a.rex(true, uint8(dst), uint8(index), uint8(base))
	a.byte(0x8b)
	a.modrmMemIdx(uint8(dst), base, index, scale, disp)
}

// MovzxRegMem8 encodes movzx dst32, byte [base+disp] (0F B6 /r) — the tag
// file load.
func (a *Asm) MovzxRegMem8(dst, base Reg, disp int32) {
	a.rexIf(uint8(dst), 0, uint8(base))
	a.bytes(0x0f, 0xb6)
	a.modrmMem(uint8(dst), base, disp)
}

// MovMem8Reg encodes mov byte [base+disp], src8 (88 /r) — the tag file
// store. src must be RAX-RDX so no REX is needed for the byte register.
func (a *Asm) MovMem8Reg(base Reg, disp int32, src Reg) {
	if src > RDX && src < R8 {
		panic("mc: byte store needs RAX-RDX or REX source")
	}
	a.rexIf(uint8(src), 0, uint8(base))
	a.byte(0x88)
	a.modrmMem(uint8(src), base, disp)
}

// MovsxdRegMem encodes movsxd dst, dword [base+disp] (REX.W 63 /r) — the
// int32 field load (array handle refs in global slots).
func (a *Asm) MovsxdRegMem(dst, base Reg, disp int32) {
	a.rex(true, uint8(dst), 0, uint8(base))
	a.byte(0x63)
	a.modrmMem(uint8(dst), base, disp)
}

// MovsxdRegReg encodes movsxd dst, src32 (REX.W 63 /r) — Go's int32(x)
// wrap of a 64-bit value, sign-extended back to 64 bits.
func (a *Asm) MovsxdRegReg(dst, src Reg) {
	a.rex(true, uint8(dst), 0, uint8(src))
	a.byte(0x63)
	a.modrmReg(uint8(dst), uint8(src))
}

// MovMem32Reg encodes mov dword [base+disp], src32 (89 /r without REX.W).
func (a *Asm) MovMem32Reg(base Reg, disp int32, src Reg) {
	a.rexIf(uint8(src), 0, uint8(base))
	a.byte(0x89)
	a.modrmMem(uint8(src), base, disp)
}

// ---- SSE2 scalar-double ----

// sseMem emits prefix 0F op /r with a memory operand.
func (a *Asm) sseMem(prefix byte, op byte, reg uint8, base Reg, disp int32) {
	a.byte(prefix)
	a.rexIf(reg, 0, uint8(base))
	a.bytes(0x0f, op)
	a.modrmMem(reg, base, disp)
}

// sseReg emits prefix 0F op /r with a register operand.
func (a *Asm) sseReg(prefix byte, op byte, reg, rm uint8) {
	a.byte(prefix)
	a.rexIf(reg, 0, rm)
	a.bytes(0x0f, op)
	a.modrmReg(reg, rm)
}

// MovsdXmmMem encodes movsd dst, [base+disp] (F2 0F 10 /r).
func (a *Asm) MovsdXmmMem(dst Xmm, base Reg, disp int32) {
	a.sseMem(0xf2, 0x10, uint8(dst), base, disp)
}

// MovsdMemXmm encodes movsd [base+disp], src (F2 0F 11 /r).
func (a *Asm) MovsdMemXmm(base Reg, disp int32, src Xmm) {
	a.sseMem(0xf2, 0x11, uint8(src), base, disp)
}

// MovsdXmmMemIdx encodes movsd dst, [base+index*scale+disp] — the arena
// cell load.
func (a *Asm) MovsdXmmMemIdx(dst Xmm, base, index Reg, scale uint8, disp int32) {
	a.byte(0xf2)
	a.rexIf(uint8(dst), uint8(index), uint8(base))
	a.bytes(0x0f, 0x10)
	a.modrmMemIdx(uint8(dst), base, index, scale, disp)
}

// MovsdMemIdxXmm encodes movsd [base+index*scale+disp], src — the arena
// cell store.
func (a *Asm) MovsdMemIdxXmm(base, index Reg, scale uint8, disp int32, src Xmm) {
	a.byte(0xf2)
	a.rexIf(uint8(src), uint8(index), uint8(base))
	a.bytes(0x0f, 0x11)
	a.modrmMemIdx(uint8(src), base, index, scale, disp)
}

// AddsdXmmMem / SubsdXmmMem / MulsdXmmMem / DivsdXmmMem encode the scalar
// double arithmetic forms (F2 0F 58/5C/59/5E /r) with a memory source.
func (a *Asm) AddsdXmmMem(dst Xmm, base Reg, disp int32) {
	a.sseMem(0xf2, 0x58, uint8(dst), base, disp)
}
func (a *Asm) SubsdXmmMem(dst Xmm, base Reg, disp int32) {
	a.sseMem(0xf2, 0x5c, uint8(dst), base, disp)
}
func (a *Asm) MulsdXmmMem(dst Xmm, base Reg, disp int32) {
	a.sseMem(0xf2, 0x59, uint8(dst), base, disp)
}
func (a *Asm) DivsdXmmMem(dst Xmm, base Reg, disp int32) {
	a.sseMem(0xf2, 0x5e, uint8(dst), base, disp)
}

// UcomisdXmmMem encodes ucomisd a, [base+disp] (66 0F 2E /r).
func (a *Asm) UcomisdXmmMem(x Xmm, base Reg, disp int32) {
	a.sseMem(0x66, 0x2e, uint8(x), base, disp)
}

// UcomisdXmmXmm encodes ucomisd a, b.
func (a *Asm) UcomisdXmmXmm(x, y Xmm) { a.sseReg(0x66, 0x2e, uint8(x), uint8(y)) }

// XorpsXmmXmm encodes xorps x, y (0F 57 /r) — the canonical xmm zeroing
// idiom.
func (a *Asm) XorpsXmmXmm(x, y Xmm) {
	a.rexIf(uint8(x), 0, uint8(y))
	a.bytes(0x0f, 0x57)
	a.modrmReg(uint8(x), uint8(y))
}

// Cvttsd2siRegMem encodes cvttsd2si dst, [base+disp] (F2 REX.W 0F 2C /r),
// truncating float64→int64 with the 0x8000000000000000 overflow sentinel —
// exactly Go's int(float64) on amd64. wide=false selects the 32-bit form,
// matching Go's int32(float64).
func (a *Asm) Cvttsd2siRegMem(dst Reg, base Reg, disp int32, wide bool) {
	a.byte(0xf2)
	if wide {
		a.rex(true, uint8(dst), 0, uint8(base))
	} else {
		a.rexIf(uint8(dst), 0, uint8(base))
	}
	a.bytes(0x0f, 0x2c)
	a.modrmMem(uint8(dst), base, disp)
}

// Cvttsd2siRegXmm is the register-source form of Cvttsd2siRegMem.
func (a *Asm) Cvttsd2siRegXmm(dst Reg, src Xmm, wide bool) {
	a.byte(0xf2)
	if wide {
		a.rex(true, uint8(dst), 0, uint8(src))
	} else {
		a.rexIf(uint8(dst), 0, uint8(src))
	}
	a.bytes(0x0f, 0x2c)
	a.modrmReg(uint8(dst), uint8(src))
}

// Cvtsi2sdXmmReg encodes cvtsi2sd dst, src (F2 REX 0F 2A /r). wide selects
// int64 vs int32 source width.
func (a *Asm) Cvtsi2sdXmmReg(dst Xmm, src Reg, wide bool) {
	a.byte(0xf2)
	if wide {
		a.rex(true, uint8(dst), 0, uint8(src))
	} else {
		a.rexIf(uint8(dst), 0, uint8(src))
	}
	a.bytes(0x0f, 0x2a)
	a.modrmReg(uint8(dst), uint8(src))
}

// Cvtsi2sdXmmMem encodes cvtsi2sd dst, qword [base+disp].
func (a *Asm) Cvtsi2sdXmmMem(dst Xmm, base Reg, disp int32) {
	a.byte(0xf2)
	a.rex(true, uint8(dst), 0, uint8(base))
	a.bytes(0x0f, 0x2a)
	a.modrmMem(uint8(dst), base, disp)
}

// ---- 64-bit ALU ----

// aluRegImm encodes op dst, imm with the canonical 83 /ext ib short form
// when imm fits in int8, else 81 /ext id.
func (a *Asm) aluRegImm(ext uint8, dst Reg, imm int32) {
	a.rex(true, 0, 0, uint8(dst))
	if imm >= -128 && imm <= 127 {
		a.byte(0x83)
		a.modrmReg(ext, uint8(dst))
		a.byte(byte(imm))
	} else {
		a.byte(0x81)
		a.modrmReg(ext, uint8(dst))
		a.imm32(imm)
	}
}

// AddRegImm / SubRegImm / CmpRegImm encode add/sub/cmp dst, imm32.
func (a *Asm) AddRegImm(dst Reg, imm int32) { a.aluRegImm(0, dst, imm) }
func (a *Asm) SubRegImm(dst Reg, imm int32) { a.aluRegImm(5, dst, imm) }
func (a *Asm) CmpRegImm(dst Reg, imm int32) { a.aluRegImm(7, dst, imm) }

// AddMemImm encodes add qword [base+disp], imm (REX.W 83/81 /0) — the
// in-frame check counter bump.
func (a *Asm) AddMemImm(base Reg, disp int32, imm int32) {
	a.rex(true, 0, 0, uint8(base))
	if imm >= -128 && imm <= 127 {
		a.byte(0x83)
		a.modrmMem(0, base, disp)
		a.byte(byte(imm))
	} else {
		a.byte(0x81)
		a.modrmMem(0, base, disp)
		a.imm32(imm)
	}
}

// AddRegReg encodes add dst, src (REX.W 01 /r).
func (a *Asm) AddRegReg(dst, src Reg) {
	a.rex(true, uint8(src), 0, uint8(dst))
	a.byte(0x01)
	a.modrmReg(uint8(src), uint8(dst))
}

// SubRegMem encodes sub dst, [base+disp] (REX.W 2B /r).
func (a *Asm) SubRegMem(dst, base Reg, disp int32) {
	a.rex(true, uint8(dst), 0, uint8(base))
	a.byte(0x2b)
	a.modrmMem(uint8(dst), base, disp)
}

// CmpRegMem encodes cmp a, [base+disp] (REX.W 3B /r).
func (a *Asm) CmpRegMem(dst, base Reg, disp int32) {
	a.rex(true, uint8(dst), 0, uint8(base))
	a.byte(0x3b)
	a.modrmMem(uint8(dst), base, disp)
}

// CmpRegReg encodes cmp a, b (REX.W 39 /r).
func (a *Asm) CmpRegReg(dst, src Reg) {
	a.rex(true, uint8(src), 0, uint8(dst))
	a.byte(0x39)
	a.modrmReg(uint8(src), uint8(dst))
}

// TestRegReg encodes test a, b (REX.W 85 /r).
func (a *Asm) TestRegReg(dst, src Reg) {
	a.rex(true, uint8(src), 0, uint8(dst))
	a.byte(0x85)
	a.modrmReg(uint8(src), uint8(dst))
}

// NegReg encodes neg dst (REX.W F7 /3).
func (a *Asm) NegReg(dst Reg) {
	a.rex(true, 0, 0, uint8(dst))
	a.byte(0xf7)
	a.modrmReg(3, uint8(dst))
}

// ImulRegReg encodes imul dst, src (REX.W 0F AF /r).
func (a *Asm) ImulRegReg(dst, src Reg) {
	a.rex(true, uint8(dst), 0, uint8(src))
	a.bytes(0x0f, 0xaf)
	a.modrmReg(uint8(dst), uint8(src))
}

// Cqo sign-extends RAX into RDX:RAX (48 99), the idiv setup.
func (a *Asm) Cqo() { a.bytes(0x48, 0x99) }

// IdivReg encodes idiv src (REX.W F7 /7): RDX:RAX / src → quotient RAX,
// remainder RDX.
func (a *Asm) IdivReg(src Reg) {
	a.rex(true, 0, 0, uint8(src))
	a.byte(0xf7)
	a.modrmReg(7, uint8(src))
}

// BtcRegImm encodes btc dst, imm8 (REX.W 0F BA /7 ib) — bit 63 flip is
// IEEE negation, Go's -x.
func (a *Asm) BtcRegImm(dst Reg, bit uint8) {
	a.rex(true, 0, 0, uint8(dst))
	a.bytes(0x0f, 0xba)
	a.modrmReg(7, uint8(dst))
	a.byte(bit)
}

// ---- 32-bit ALU (the JS bit-op family works on int32) ----

// alu32RegReg encodes a 32-bit op dst32, src32 with REX only when an
// extended register forces it.
func (a *Asm) alu32RegReg(op byte, dst, src Reg) {
	a.rexIf(uint8(src), 0, uint8(dst))
	a.byte(op)
	a.modrmReg(uint8(src), uint8(dst))
}

// AndRegReg32 / OrRegReg32 / XorRegReg32 encode and/or/xor dst32, src32.
func (a *Asm) AndRegReg32(dst, src Reg) { a.alu32RegReg(0x21, dst, src) }
func (a *Asm) OrRegReg32(dst, src Reg)  { a.alu32RegReg(0x09, dst, src) }
func (a *Asm) XorRegReg32(dst, src Reg) { a.alu32RegReg(0x31, dst, src) }

// AndRegImm32 encodes and dst32, imm8 (83 /4 ib) — the shift-count mask.
func (a *Asm) AndRegImm32(dst Reg, imm int8) {
	a.rexIf(0, 0, uint8(dst))
	a.byte(0x83)
	a.modrmReg(4, uint8(dst))
	a.byte(byte(imm))
}

// ShlRegCl32 / ShrRegCl32 / SarRegCl32 encode shl/shr/sar dst32, cl
// (D3 /4, /5, /7).
func (a *Asm) ShlRegCl32(dst Reg) { a.shiftCl(4, dst) }
func (a *Asm) ShrRegCl32(dst Reg) { a.shiftCl(5, dst) }
func (a *Asm) SarRegCl32(dst Reg) { a.shiftCl(7, dst) }

func (a *Asm) shiftCl(ext uint8, dst Reg) {
	a.rexIf(0, 0, uint8(dst))
	a.byte(0xd3)
	a.modrmReg(ext, uint8(dst))
}

// MovRegReg32 encodes mov dst32, src32 (89 /r) — zero-extending, the
// uint32 reinterpretation.
func (a *Asm) MovRegReg32(dst, src Reg) { a.alu32RegReg(0x89, dst, src) }

// ---- flags → values ----

// SetccReg8 encodes setcc dst8 (0F 9x /r). dst must be RAX-RDX (al-dl) so
// no REX is needed.
func (a *Asm) SetccReg8(cc Cond, dst Reg) {
	if dst > RDX {
		panic("mc: setcc needs RAX-RDX")
	}
	a.bytes(0x0f, 0x90|byte(cc))
	a.modrmReg(0, uint8(dst))
}

// MovzxReg32Reg8 encodes movzx dst32, src8 (0F B6 /r). src must be
// RAX-RDX.
func (a *Asm) MovzxReg32Reg8(dst, src Reg) {
	if src > RDX {
		panic("mc: movzx source needs RAX-RDX")
	}
	a.rexIf(uint8(dst), 0, 0)
	a.bytes(0x0f, 0xb6)
	a.modrmReg(uint8(dst), uint8(src))
}

// AndRegReg8 encodes and dst8, src8 (20 /r); both must be RAX-RDX.
func (a *Asm) AndRegReg8(dst, src Reg) {
	if dst > RDX || src > RDX {
		panic("mc: 8-bit and needs RAX-RDX")
	}
	a.byte(0x20)
	a.modrmReg(uint8(src), uint8(dst))
}

// OrRegReg8 encodes or dst8, src8 (08 /r); both must be RAX-RDX.
func (a *Asm) OrRegReg8(dst, src Reg) {
	if dst > RDX || src > RDX {
		panic("mc: 8-bit or needs RAX-RDX")
	}
	a.byte(0x08)
	a.modrmReg(uint8(src), uint8(dst))
}

// ---- control flow ----

// JccFwd emits jcc rel32 (0F 8x cd) with a zero placeholder and returns
// the placeholder offset for Patch32.
func (a *Asm) JccFwd(cc Cond) int {
	a.bytes(0x0f, 0x80|byte(cc))
	off := a.Len()
	a.imm32(0)
	return off
}

// JmpFwd emits jmp rel32 (E9 cd) with a placeholder, returning its offset.
func (a *Asm) JmpFwd() int {
	a.byte(0xe9)
	off := a.Len()
	a.imm32(0)
	return off
}

// CallReg encodes call src (FF /2) — the trampoline side of the
// calling convention; generated code itself never calls.
func (a *Asm) CallReg(src Reg) {
	a.rexIf(0, 0, uint8(src))
	a.byte(0xff)
	a.modrmReg(2, uint8(src))
}

// Ret encodes ret (C3) — every exit path returns to the trampoline.
func (a *Asm) Ret() { a.byte(0xc3) }

//go:build amd64 && (linux || darwin)

package mc

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"

	"github.com/jitbull/jitbull/internal/lir"
)

// Supported reports whether this build can execute machine code. The
// lowering and encoder work everywhere; execution needs amd64 plus an OS
// with the mmap/mprotect install path.
func Supported() bool { return true }

// Unit is installed, executable machine code for one function. The
// mapping is never writable and executable at the same time: Install maps
// RW, copies, then flips to RX (strict W^X), and the unit is immutable
// afterwards. Units are retired by dropping the reference — the mapping
// is intentionally not unmapped on artifact discard, so a stale pointer
// can never execute unmapped memory; Release exists for tests.
type Unit struct {
	prog *Program
	mem  []byte
	base uintptr
	prot []string
}

// Install copies prog into a fresh page-aligned mapping with a strict
// W^X lifecycle and returns the executable unit.
func Install(prog *Program) (*Unit, error) {
	page := os.Getpagesize()
	n := (len(prog.Buf) + page - 1) &^ (page - 1)
	if n == 0 {
		n = page
	}
	mem, err := syscall.Mmap(-1, 0, n,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("mc: mmap: %w", err)
	}
	copy(mem, prog.Buf)
	if err := syscall.Mprotect(mem, syscall.PROT_READ|syscall.PROT_EXEC); err != nil {
		_ = syscall.Munmap(mem)
		return nil, fmt.Errorf("mc: mprotect: %w", err)
	}
	return &Unit{
		prog: prog,
		mem:  mem,
		base: uintptr(unsafe.Pointer(unsafe.SliceData(mem))),
		prot: []string{"mmap:rw-", "mprotect:r-x"},
	}, nil
}

// Compile lowers and installs code in one step — the engine's entry point.
func Compile(code *lir.Code) (*Unit, error) {
	prog, err := Lower(code)
	if err != nil {
		return nil, err
	}
	return Install(prog)
}

// Transitions returns the recorded page-permission lifecycle, in order.
// There is never an rwx state to record.
func (u *Unit) Transitions() []string { return u.prot }

// Base returns the executable mapping's start address (for tests that
// cross-check /proc/self/maps).
func (u *Unit) Base() uintptr { return u.base }

// MappedLen returns the length of the executable mapping.
func (u *Unit) MappedLen() int { return len(u.mem) }

// Program returns the lowered program backing this unit.
func (u *Unit) Program() *Program { return u.prog }

// Release unmaps the unit. Only for tests — the engine retires units by
// dropping the reference.
func (u *Unit) Release() error {
	mem := u.mem
	u.mem, u.base = nil, 0
	return syscall.Munmap(mem)
}

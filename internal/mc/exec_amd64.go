//go:build amd64 && (linux || darwin)

package mc

import (
	"math"
	"runtime"
	"unsafe"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// mcframe is the exit-record / environment block generated code addresses
// off RDI. Field offsets are baked into both the lowering (the f* consts
// in lower.go) and the trampoline (enter_amd64.s); TestFrameOffsets pins
// them with unsafe.Offsetof.
//
// The base pointers are typed unsafe.Pointer, not uintptr, so the frame
// stays a precisely-scanned GC root for the register file and arena
// backing arrays while generated code runs.
type mcframe struct {
	exitpc    int64
	steps     int64
	checks    int64
	maxOps    int64
	top       int64
	codeBase  int64
	codeLen   int64
	handleLen int64
	regs      unsafe.Pointer
	tags      unsafe.Pointer
	cells     unsafe.Pointer
	handles   unsafe.Pointer

	// Global window (zero when the hooks don't expose one; all global ops
	// then take the runtime-exit slow path).
	globalsLen int64
	globals    unsafe.Pointer
}

// globalWindow is the optional hooks capability the inline global ops
// need: direct access to the backing []value.Value behind GlobalGet /
// GlobalSet. The engine implements it; test stubs generally don't, which
// keeps the slow path exercised.
type globalWindow interface {
	Globals() []value.Value
}

// enter (enter_amd64.s) loads the pinned registers (RBX=regs, R13=tags,
// R12=cells, R15=steps, RDI=frame) from f, calls the generated code at
// entry, stores the step counter back, and returns the exit kind.
//
//go:noescape
func enter(entry uintptr, f *mcframe) int32

// Exec runs the unit from the top with the executor-standard frame
// lifecycle: lease registers, box parameters, run, release.
func (u *Unit) Exec(args []value.Value, h native.Hooks, maxOps int64, pool *native.Pool) (native.Result, native.Status, error) {
	code := u.prog.Code
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs, tags := pool.GetRegs(code.NumRegs)
	defer pool.PutRegs(regs, tags)
	native.BoxParams(code, args, regs, tags)
	return u.run(code, regs, tags, h, maxOps, pool, 0, 0)
}

// ExecOSR transfers execution into the unit at OSR entry entryIdx. The
// frame is materialized by the same strict native.MaterializeOSR the
// reference tier uses; entered=false means the transfer was refused and
// nothing has run.
func (u *Unit) ExecOSR(entryIdx int, locals []value.Value, h native.Hooks, maxOps int64, pool *native.Pool) (native.Result, native.Status, error, bool) {
	code := u.prog.Code
	if maxOps <= 0 {
		maxOps = 1 << 40
	}
	regs, tags := pool.GetRegs(code.NumRegs)
	defer pool.PutRegs(regs, tags)
	pc, ok := native.MaterializeOSR(code, entryIdx, locals, h.Arena(), regs, tags)
	if !ok {
		return native.Result{}, native.StatusOK, nil, false
	}
	res, st, err := u.run(code, regs, tags, h, maxOps, pool, int(pc), 0)
	return res, st, err, true
}

// run is the host half of the machine-code executor: it performs the
// fused-style entry budget check, re-enters generated code, and services
// exits. Delegate exits hand the activation to the reference loop at the
// recorded pc (always semantics-preserving); runtime exits execute the
// single op at the recorded pc with reference semantics and re-enter at
// the next op.
func (u *Unit) run(code *lir.Code, regs []float64, tags []native.Tag, h native.Hooks, maxOps int64, pool *native.Pool, pc int, steps int64) (native.Result, native.Status, error) {
	defer runtime.KeepAlive(u.mem)
	arena := h.Arena()
	ops := code.Ops
	checks := int64(1)
	// Entry check, exactly the fused executor's: if the straight-line cost
	// from the entry op could exceed the budget, the whole run delegates
	// and the reference loop trips (or completes) bit-identically.
	if steps+int64(u.prog.Cost[pc]) > maxOps {
		dres, dst, derr := native.Resume(code, regs, tags, h, maxOps, pool, pc, steps)
		dres.Checks += checks
		return dres, dst, derr
	}
	cells := arena.Cells()
	var f mcframe
	f.maxOps = maxOps
	f.codeBase = int64(arena.CodeBase())
	f.codeLen = int64(len(cells)) - f.codeBase
	f.regs = unsafe.Pointer(unsafe.SliceData(regs))
	f.tags = unsafe.Pointer(unsafe.SliceData(tags))
	f.cells = unsafe.Pointer(unsafe.SliceData(cells))
	// The global window is stable for the whole activation: the slot count
	// is fixed at compile time and runtime ops mutate slots in place, so one
	// fetch suffices (unlike the handle table, which reallocates).
	if gw, ok := h.(globalWindow); ok {
		if g := gw.Globals(); len(g) > 0 {
			f.globalsLen = int64(len(g))
			f.globals = unsafe.Pointer(unsafe.SliceData(g))
		}
	}
	for {
		// Refresh the volatile arena state: the handle table's backing
		// array moves when a runtime op allocates, and the mapped-heap top
		// advances.
		handles := arena.Handles()
		f.top = int64(arena.Top())
		f.handleLen = int64(len(handles))
		if len(handles) > 0 {
			f.handles = unsafe.Pointer(unsafe.SliceData(handles))
		} else {
			f.handles = nil
		}
		f.steps, f.checks = steps, checks
		kind := enter(u.base+uintptr(u.prog.Off[pc]), &f)
		steps, checks = f.steps, f.checks
		pc = int(f.exitpc)
		switch kind {
		case exitRet:
			op := &ops[pc]
			res := native.Result{Steps: steps, Checks: checks}
			switch op.Kind {
			case lir.KRetNum:
				res.Kind, res.Val = native.ResNum, regs[op.A]
			case lir.KRetObj:
				res.Kind, res.Val = native.ResObject, regs[op.A]
			default:
				res.Kind = native.ResUndef
			}
			return res, native.StatusOK, nil
		case exitDelegate:
			dres, dst, derr := native.Resume(code, regs, tags, h, maxOps, pool, pc, steps)
			dres.Checks += checks
			return dres, dst, derr
		case exitRuntime:
			// Execute the op at pc in Go, then keep going in Go while the
			// following ops are also runtime ops (no point bouncing through
			// the trampoline between consecutive calls). Steps are charged
			// fused-style — no per-op budget check; the block's entry check
			// already covered the whole straight line.
			for {
				charged := u.prog.HostStep[pc]
				if charged {
					steps++
				}
				res, status, err, done := u.hostOp(code, &ops[pc], regs, tags, h, pool, steps, checks)
				if done {
					if !charged {
						// Hybrid op whose step sits in a downstream flush
						// we will never reach: a terminal outcome (crash,
						// bail, deopt) still owes the op's own step,
						// exactly as the reference loop charges it.
						res.Steps++
					}
					return res, status, err
				}
				pc++
				if pc >= len(ops) {
					return native.Result{Kind: native.ResUndef, Steps: steps, Checks: checks}, native.StatusOK, nil
				}
				if !u.prog.RT[pc] {
					break
				}
			}
		default:
			// Unknown exit kind: impossible by construction; delegate so
			// even a bug here cannot diverge semantics.
			dres, dst, derr := native.Resume(code, regs, tags, h, maxOps, pool, pc, steps)
			dres.Checks += checks
			return dres, dst, derr
		}
	}
}

// hostOp executes one runtime op with semantics copied line-for-line from
// the reference loop (native.execSwitch). done=true carries a terminal
// outcome (bail, crash, error, deopt); done=false means fall through to
// the next op.
func (u *Unit) hostOp(code *lir.Code, op *lir.Op, regs []float64, tags []native.Tag, h native.Hooks, pool *native.Pool, steps, checks int64) (native.Result, native.Status, error, bool) {
	arena := h.Arena()
	fail := func(status native.Status, err error) (native.Result, native.Status, error, bool) {
		return native.Result{Steps: steps, Checks: checks}, status, err, true
	}
	switch op.Kind {
	case lir.KMod:
		// Reached only via the inline fast path's slow exit; value.Mod is
		// the single definition of the semantics either way.
		regs[op.Dst] = value.Mod(regs[op.A], regs[op.B])
	case lir.KPow:
		regs[op.Dst] = math.Pow(regs[op.A], regs[op.B])
	case lir.KMath:
		regs[op.Dst] = native.MathFunc(bytecode.Builtin(op.Aux), regs[op.A], regs[op.B], h)
	case lir.KElemsRaw:
		hnd := int64(math.Trunc(regs[op.A]))
		elems, ok := arena.Elems(int32(hnd))
		if !ok || regs[op.A] != math.Trunc(regs[op.A]) {
			_, crash := arena.RawLoad(int(hnd))
			if crash != nil {
				return fail(native.StatusOK, crash)
			}
			regs[op.Dst] = math.Trunc(regs[op.A])
			break
		}
		regs[op.Dst] = float64(elems)
	case lir.KSetLen:
		n := regs[op.B]
		if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
			return fail(native.StatusBail, nil)
		}
		if err := arena.SetLength(int32(regs[op.A]), int(n)); err != nil {
			return fail(native.StatusOK, err)
		}
	case lir.KPush:
		n, err := arena.Push(int32(regs[op.A]), regs[op.B])
		if err != nil {
			return fail(native.StatusOK, err)
		}
		regs[op.Dst] = float64(n)
	case lir.KPop:
		v, ok := arena.Pop(int32(regs[op.A]))
		if !ok {
			return fail(native.StatusBail, nil)
		}
		regs[op.Dst] = v
	case lir.KNewArr:
		n := regs[op.A]
		if n < 0 || n != math.Trunc(n) || n > float64(math.MaxInt32) {
			return fail(native.StatusBail, nil)
		}
		hnd, err := arena.Alloc(int(n))
		if err != nil {
			return fail(native.StatusOK, err)
		}
		regs[op.Dst] = float64(hnd)
	case lir.KLoadGlobal:
		v := h.GlobalGet(int(op.Aux))
		switch v.Type() {
		case value.Number:
			regs[op.Dst], tags[op.Dst] = v.AsNumber(), native.TagNumber
		case value.Boolean:
			regs[op.Dst], tags[op.Dst] = v.AsNumber(), native.TagBoolean
		case value.Array:
			regs[op.Dst], tags[op.Dst] = float64(v.Handle()), native.TagObject
		default:
			regs[op.Dst], tags[op.Dst] = math.NaN(), native.TagOther
		}
	case lir.KStoreGlobalNum:
		h.GlobalSet(int(op.Aux), value.Num(regs[op.A]))
	case lir.KStoreGlobalObj:
		h.GlobalSet(int(op.Aux), value.ArrayRef(int32(regs[op.A])))
	case lir.KCall:
		argRegs := code.ArgLists[op.A]
		mark, callArgs := pool.AllocArgs(len(argRegs))
		for i, ar := range argRegs {
			if op.C&(1<<i) != 0 {
				callArgs[i] = value.ArrayRef(int32(regs[ar]))
			} else {
				callArgs[i] = value.Num(regs[ar])
			}
		}
		res, err := h.CallFunction(int(op.Aux), callArgs)
		pool.ReleaseArgs(mark)
		if err != nil {
			return fail(native.StatusOK, err)
		}
		if op.B == 1 { // expect object
			if !res.IsArray() {
				return fail(native.StatusBail, nil)
			}
			regs[op.Dst], tags[op.Dst] = float64(res.Handle()), native.TagObject
		} else {
			switch res.Type() {
			case value.Number, value.Boolean:
				regs[op.Dst], tags[op.Dst] = res.ToNumber(), native.TagNumber
			case value.Undefined:
				regs[op.Dst], tags[op.Dst] = math.NaN(), native.TagNumber
			default:
				return fail(native.StatusBail, nil)
			}
		}
	case lir.KCallSpec:
		argRegs := code.ArgLists[op.A]
		mark, callArgs := pool.AllocArgs(len(argRegs))
		for i, ar := range argRegs {
			if op.C&(1<<i) != 0 {
				callArgs[i] = value.ArrayRef(int32(regs[ar]))
			} else {
				callArgs[i] = value.Num(regs[ar])
			}
		}
		cres, err := h.CallFunction(int(op.Aux), callArgs)
		pool.ReleaseArgs(mark)
		if err != nil {
			return fail(native.StatusOK, err)
		}
		if cres.Type() == value.Number {
			regs[op.Dst], tags[op.Dst] = cres.AsNumber(), native.TagNumber
			break
		}
		if op.Target < 0 || int(op.Target) >= len(code.DeoptExits) {
			return fail(native.StatusBail, nil) // orphan guard; treat as bail
		}
		return native.Result{Deopt: native.BuildDeopt(code, op.Target, regs, cres), Steps: steps, Checks: checks},
			native.StatusDeopt, nil, true
	default:
		// Non-runtime kinds never reach here (the lowering compiles them
		// inline); delegate-equivalent hard stop to keep this total.
		return fail(native.StatusBail, nil)
	}
	return native.Result{}, native.StatusOK, nil, false
}

package mc

import (
	"encoding/hex"
	"testing"
)

// TestGoldenEncodings pins the exact byte sequence of every instruction
// form the lowering emits. The expected bytes were cross-checked once
// against objdump (objdump -D -b binary -m i386:x86-64); the disassembly
// is recorded in each case name so a regression here is diagnosable
// without a disassembler in CI.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		name string
		emit func(a *Asm)
		want string // hex
	}{
		{"movabs rax,0x3ff0000000000000", func(a *Asm) { a.MovRegImm64(RAX, 0x3ff0000000000000) }, "48b8000000000000f03f"},
		{"movabs r9,0x123456789abcdef0", func(a *Asm) { a.MovRegImm64(R9, 0x123456789abcdef0) }, "49b9f0debc9a78563412"},
		{"mov ecx,0x2a", func(a *Asm) { a.MovRegImm32(RCX, 42) }, "b92a000000"},
		{"mov r8d,0xfffffff9", func(a *Asm) { a.MovRegImm32(R8, -7) }, "41b8f9ffffff"},
		{"mov rcx,rax", func(a *Asm) { a.MovRegReg(RCX, RAX) }, "4889c1"},
		{"mov rax,[rdi+0x8]", func(a *Asm) { a.MovRegMem(RAX, RDI, 8) }, "488b4708"},
		{"mov rax,[rbx]", func(a *Asm) { a.MovRegMem(RAX, RBX, 0) }, "488b03"},
		{"mov rdx,[r13+0x0]", func(a *Asm) { a.MovRegMem(RDX, R13, 0) }, "498b5500"},
		{"mov rdx,[r12+0x10]", func(a *Asm) { a.MovRegMem(RDX, R12, 16) }, "498b542410"},
		{"mov [rdi],rcx", func(a *Asm) { a.MovMemReg(RDI, 0, RCX) }, "48890f"},
		{"mov [rbx+0x100],rax", func(a *Asm) { a.MovMemReg(RBX, 256, RAX) }, "48898300010000"},
		{"mov rax,[rdx+rcx*8]", func(a *Asm) { a.MovRegMemIdx(RAX, RDX, RCX, 8, 0) }, "488b04ca"},
		{"movzx eax,byte [r13+0x3]", func(a *Asm) { a.MovzxRegMem8(RAX, R13, 3) }, "410fb64503"},
		{"mov byte [r13+0x5],al", func(a *Asm) { a.MovMem8Reg(R13, 5, RAX) }, "41884505"},
		{"movsxd rcx,dword [rdx+0x10]", func(a *Asm) { a.MovsxdRegMem(RCX, RDX, 16) }, "48634a10"},
		{"movsxd rcx,eax", func(a *Asm) { a.MovsxdRegReg(RCX, RAX) }, "4863c8"},
		{"mov dword [rdx+0x8],eax", func(a *Asm) { a.MovMem32Reg(RDX, 8, RAX) }, "894208"},
		{"movsd xmm0,[rbx+0x10]", func(a *Asm) { a.MovsdXmmMem(X0, RBX, 16) }, "f20f104310"},
		{"movsd [rbx+0x18],xmm0", func(a *Asm) { a.MovsdMemXmm(RBX, 24, X0) }, "f20f114318"},
		{"movsd xmm1,[r12+rax*8]", func(a *Asm) { a.MovsdXmmMemIdx(X1, R12, RAX, 8, 0) }, "f2410f100cc4"},
		{"movsd [r12+rax*8],xmm0", func(a *Asm) { a.MovsdMemIdxXmm(R12, RAX, 8, 0, X0) }, "f2410f1104c4"},
		{"addsd xmm0,[rbx+0x8]", func(a *Asm) { a.AddsdXmmMem(X0, RBX, 8) }, "f20f584308"},
		{"subsd xmm0,[rbx+0x8]", func(a *Asm) { a.SubsdXmmMem(X0, RBX, 8) }, "f20f5c4308"},
		{"mulsd xmm0,[rbx+0x8]", func(a *Asm) { a.MulsdXmmMem(X0, RBX, 8) }, "f20f594308"},
		{"divsd xmm0,[rbx+0x8]", func(a *Asm) { a.DivsdXmmMem(X0, RBX, 8) }, "f20f5e4308"},
		{"ucomisd xmm0,[rbx+0x8]", func(a *Asm) { a.UcomisdXmmMem(X0, RBX, 8) }, "660f2e4308"},
		{"ucomisd xmm1,xmm0", func(a *Asm) { a.UcomisdXmmXmm(X1, X0) }, "660f2ec8"},
		{"xorps xmm0,xmm0", func(a *Asm) { a.XorpsXmmXmm(X0, X0) }, "0f57c0"},
		{"cvttsd2si rax,[rbx+0x8]", func(a *Asm) { a.Cvttsd2siRegMem(RAX, RBX, 8, true) }, "f2480f2c4308"},
		{"cvttsd2si ecx,[rbx+0x8]", func(a *Asm) { a.Cvttsd2siRegMem(RCX, RBX, 8, false) }, "f20f2c4b08"},
		{"cvttsd2si rax,xmm0", func(a *Asm) { a.Cvttsd2siRegXmm(RAX, X0, true) }, "f2480f2cc0"},
		{"cvtsi2sd xmm0,rax", func(a *Asm) { a.Cvtsi2sdXmmReg(X0, RAX, true) }, "f2480f2ac0"},
		{"cvtsi2sd xmm0,eax", func(a *Asm) { a.Cvtsi2sdXmmReg(X0, RAX, false) }, "f20f2ac0"},
		{"cvtsi2sd xmm0,qword [rdi+0x28]", func(a *Asm) { a.Cvtsi2sdXmmMem(X0, RDI, 40) }, "f2480f2a4728"},
		{"add rax,0x2", func(a *Asm) { a.AddRegImm(RAX, 2) }, "4883c002"},
		{"add r15,0x3e8", func(a *Asm) { a.AddRegImm(R15, 1000) }, "4981c7e8030000"},
		{"sub rax,0x2", func(a *Asm) { a.SubRegImm(RAX, 2) }, "4883e802"},
		{"cmp rax,0x12c", func(a *Asm) { a.CmpRegImm(RAX, 300) }, "4881f82c010000"},
		{"add qword [rdi+0x10],0x1", func(a *Asm) { a.AddMemImm(RDI, 16, 1) }, "4883471001"},
		{"add rax,rcx", func(a *Asm) { a.AddRegReg(RAX, RCX) }, "4801c8"},
		{"sub rcx,[rdi+0x28]", func(a *Asm) { a.SubRegMem(RCX, RDI, 40) }, "482b4f28"},
		{"cmp rax,[rdi+0x18]", func(a *Asm) { a.CmpRegMem(RAX, RDI, 24) }, "483b4718"},
		{"cmp rax,rdx", func(a *Asm) { a.CmpRegReg(RAX, RDX) }, "4839d0"},
		{"test rcx,rcx", func(a *Asm) { a.TestRegReg(RCX, RCX) }, "4885c9"},
		{"neg rdx", func(a *Asm) { a.NegReg(RDX) }, "48f7da"},
		{"imul rax,rcx", func(a *Asm) { a.ImulRegReg(RAX, RCX) }, "480fafc1"},
		{"cqo", func(a *Asm) { a.Cqo() }, "4899"},
		{"idiv r8", func(a *Asm) { a.IdivReg(R8) }, "49f7f8"},
		{"btc rax,0x3f", func(a *Asm) { a.BtcRegImm(RAX, 63) }, "480fbaf83f"},
		{"and eax,ecx", func(a *Asm) { a.AndRegReg32(RAX, RCX) }, "21c8"},
		{"or eax,ecx", func(a *Asm) { a.OrRegReg32(RAX, RCX) }, "09c8"},
		{"xor eax,ecx", func(a *Asm) { a.XorRegReg32(RAX, RCX) }, "31c8"},
		{"and ecx,0x1f", func(a *Asm) { a.AndRegImm32(RCX, 31) }, "83e11f"},
		{"shl eax,cl", func(a *Asm) { a.ShlRegCl32(RAX) }, "d3e0"},
		{"shr eax,cl", func(a *Asm) { a.ShrRegCl32(RAX) }, "d3e8"},
		{"sar eax,cl", func(a *Asm) { a.SarRegCl32(RAX) }, "d3f8"},
		{"mov eax,eax", func(a *Asm) { a.MovRegReg32(RAX, RAX) }, "89c0"},
		{"seta al", func(a *Asm) { a.SetccReg8(CondA, RAX) }, "0f97c0"},
		{"sete al", func(a *Asm) { a.SetccReg8(CondE, RAX) }, "0f94c0"},
		{"setnp cl", func(a *Asm) { a.SetccReg8(CondNP, RCX) }, "0f9bc1"},
		{"movzx eax,al", func(a *Asm) { a.MovzxReg32Reg8(RAX, RAX) }, "0fb6c0"},
		{"and al,cl", func(a *Asm) { a.AndRegReg8(RAX, RCX) }, "20c8"},
		{"or al,cl", func(a *Asm) { a.OrRegReg8(RAX, RCX) }, "08c8"},
		{"jne rel32", func(a *Asm) { a.JccFwd(CondNE) }, "0f8500000000"},
		{"jae rel32", func(a *Asm) { a.JccFwd(CondAE) }, "0f8300000000"},
		{"jmp rel32", func(a *Asm) { a.JmpFwd() }, "e900000000"},
		{"call rax", func(a *Asm) { a.CallReg(RAX) }, "ffd0"},
		{"ret", func(a *Asm) { a.Ret() }, "c3"},
	}
	for _, tc := range cases {
		var a Asm
		tc.emit(&a)
		if got := hex.EncodeToString(a.Buf); got != tc.want {
			t.Errorf("%s: got %s want %s", tc.name, got, tc.want)
		}
	}
}

// TestPatch32 pins the rel32 fixup arithmetic: the displacement is
// relative to the end of the 4-byte field.
func TestPatch32(t *testing.T) {
	var a Asm
	off := a.JmpFwd() // 5 bytes, placeholder at 1
	a.Ret()           // target at 6... patch to jump over it
	target := a.Len()
	a.Patch32(off, target)
	want := "e901000000c3"
	if got := hex.EncodeToString(a.Buf); got != want {
		t.Errorf("patched: got %s want %s", got, want)
	}
	// Backward: jmp to offset 0 from a jmp starting at 6.
	off2 := a.JmpFwd()
	a.Patch32(off2, 0)
	if got := hex.EncodeToString(a.Buf[6:]); got != "e9f5ffffff" {
		t.Errorf("backward: got %s want e9f5ffffff", got)
	}
}

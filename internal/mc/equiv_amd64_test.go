//go:build amd64 && (linux || darwin)

// Differential parity: every program here runs on the machine-code tier,
// the fused threaded tier and the unfused switch loop with identical fresh
// environments, and the observable activation — result kind, exact value
// bits, step count, status, error, deopt frame — must be bit-identical.
// The machine-code tier additionally matches the fused tier's block-check
// count, because it copies that tier's one-budget-check-per-block
// discipline instruction for instruction.
package mc

import (
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// stubHooks mirrors the native package's test stub: a private arena, a
// flat global table, a deterministic callee.
type stubHooks struct {
	arena   *heap.Arena
	globals []value.Value
	callFn  func(idx int, args []value.Value) (value.Value, error)
}

func (s *stubHooks) Arena() *heap.Arena                { return s.arena }
func (s *stubHooks) GlobalGet(slot int) value.Value    { return s.globals[slot] }
func (s *stubHooks) GlobalSet(slot int, v value.Value) { s.globals[slot] = v }
func (s *stubHooks) Random() float64                   { return 0.5 }
func (s *stubHooks) CallFunction(idx int, args []value.Value) (value.Value, error) {
	if s.callFn != nil {
		return s.callFn(idx, args)
	}
	return value.Num(42), nil
}

func newStub() *stubHooks {
	return &stubHooks{arena: heap.New(1 << 10), globals: make([]value.Value, 8)}
}

// tierRun is everything observable about one activation.
type tierRun struct {
	kind   native.ResultKind
	bits   uint64 // exact result payload bits (catches -0 and NaN drift)
	steps  int64
	status native.Status
	errStr string
	deopt  *native.DeoptState
	checks int64
}

func observe(res native.Result, status native.Status, err error) tierRun {
	r := tierRun{kind: res.Kind, bits: math.Float64bits(res.Val), steps: res.Steps,
		status: status, deopt: res.Deopt, checks: res.Checks}
	if err != nil {
		r.errStr = err.Error()
	}
	return r
}

func sameRun(a, b tierRun) bool {
	if a.kind != b.kind || a.bits != b.bits || a.steps != b.steps ||
		a.status != b.status || a.errStr != b.errStr {
		return false
	}
	if (a.deopt == nil) != (b.deopt == nil) {
		return false
	}
	if a.deopt != nil {
		if a.deopt.Exit != b.deopt.Exit || len(a.deopt.Locals) != len(b.deopt.Locals) {
			return false
		}
		for i := range a.deopt.Locals {
			if a.deopt.Locals[i] != b.deopt.Locals[i] {
				return false
			}
		}
	}
	return true
}

// checkParity executes code on all three tiers under one budget. mk builds
// a fresh, identical environment per tier (RT ops mutate heap and globals,
// so tiers must not share one).
func checkParity(t *testing.T, code *lir.Code, args []value.Value, mk func() *stubHooks, maxOps int64) {
	t.Helper()
	if code.Fused == nil {
		code.Fused = lir.Fuse(code)
	}
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("mc compile: %v", err)
	}
	mcr := observe(u.Exec(args, mk(), maxOps, nil))
	fur := observe(native.Exec(code, args, mk(), maxOps, nil))
	unr := observe(native.ExecUnfused(code, args, mk(), maxOps, nil))
	if !sameRun(mcr, fur) {
		t.Errorf("maxOps=%d: mc %+v != fused %+v", maxOps, mcr, fur)
	}
	if !sameRun(mcr, unr) {
		t.Errorf("maxOps=%d: mc %+v != unfused %+v", maxOps, mcr, unr)
	}
	// The block-check count is a tier implementation detail shared by mc
	// and fused (one check per taken jump); the switch loop counts per-op
	// budget checks instead, so it is excluded from this comparison.
	if mcr.checks != fur.checks {
		t.Errorf("maxOps=%d: mc checks %d != fused checks %d", maxOps, mcr.checks, fur.checks)
	}
}

// sweepBudgets drives the same program through every budget from 1 up to
// past its full cost, pinning the exact op at which each tier gives up.
func sweepBudgets(t *testing.T, code *lir.Code, args []value.Value, mk func() *stubHooks, upTo int64) {
	t.Helper()
	for maxOps := int64(1); maxOps <= upTo; maxOps++ {
		checkParity(t, code, args, mk, maxOps)
	}
	checkParity(t, code, args, mk, 0) // unlimited
}

func numArgs(xs ...float64) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.Num(x)
	}
	return out
}

func TestParityArith(t *testing.T) {
	code := &lir.Code{
		Name: "arith", NumParams: 2, NumRegs: 10,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KAdd, Dst: 4, A: 2, B: 3},
			{Kind: lir.KSub, Dst: 5, A: 4, B: 3},
			{Kind: lir.KMul, Dst: 6, A: 5, B: 4},
			{Kind: lir.KDiv, Dst: 7, A: 6, B: 3},
			{Kind: lir.KConst, Dst: 8, Imm: -0.5},
			{Kind: lir.KAdd, Dst: 7, A: 7, B: 8},
			{Kind: lir.KNeg, Dst: 7, A: 7},
			{Kind: lir.KMove, Dst: 9, A: 7},
			{Kind: lir.KRetNum, A: 9},
		},
	}
	for _, args := range [][]value.Value{
		numArgs(6, 7),
		numArgs(-0.0, 0.0),
		numArgs(math.NaN(), 1),
		numArgs(math.Inf(1), math.Inf(-1)),
		numArgs(1e308, 1e-308),
	} {
		sweepBudgets(t, code, args, newStub, 13)
	}
}

func TestParityCompare(t *testing.T) {
	// Sum all six comparison results so one return pins every condition
	// code path (including the NaN quadrant of each).
	ops := []lir.Op{
		{Kind: lir.KUnbox, Dst: 2, A: 0},
		{Kind: lir.KUnbox, Dst: 3, A: 1},
		{Kind: lir.KConst, Dst: 4, Imm: 0},
	}
	for aux := int32(1); aux <= 6; aux++ {
		ops = append(ops,
			lir.Op{Kind: lir.KCmp, Dst: 5, A: 2, B: 3, Aux: aux},
			lir.Op{Kind: lir.KConst, Dst: 6, Imm: float64(int(1) << aux)},
			lir.Op{Kind: lir.KMul, Dst: 5, A: 5, B: 6},
			lir.Op{Kind: lir.KAdd, Dst: 4, A: 4, B: 5},
		)
	}
	ops = append(ops, lir.Op{Kind: lir.KRetNum, A: 4})
	code := &lir.Code{Name: "cmp", NumParams: 2, NumRegs: 7, Ops: ops}
	for _, pair := range [][2]float64{
		{1, 2}, {2, 1}, {3, 3}, {math.NaN(), 1}, {1, math.NaN()},
		{math.NaN(), math.NaN()}, {-0.0, 0.0}, {math.Inf(-1), math.Inf(1)},
	} {
		checkParity(t, code, numArgs(pair[0], pair[1]), newStub, 0)
	}
}

func TestParityNotAndBranch(t *testing.T) {
	// KNot and KBranchFalse share the truthiness predicate
	// (v != 0 && v == v); pin both over the tricky inputs.
	code := &lir.Code{
		Name: "not", NumParams: 1, NumRegs: 5,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KNot, Dst: 3, A: 2},
			{Kind: lir.KBranchFalse, A: 2, Target: 5},
			{Kind: lir.KConst, Dst: 4, Imm: 100},
			{Kind: lir.KAdd, Dst: 3, A: 3, B: 4},
			{Kind: lir.KRetNum, A: 3},
		},
	}
	for _, x := range []float64{0, -0.0, math.NaN(), 1, -1, 0.5, math.Inf(1), 5e-324} {
		sweepBudgets(t, code, numArgs(x), newStub, 8)
	}
}

func TestParityBitOps(t *testing.T) {
	code := &lir.Code{
		Name: "bits", NumParams: 2, NumRegs: 11,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KBitAnd, Dst: 4, A: 2, B: 3},
			{Kind: lir.KBitOr, Dst: 5, A: 2, B: 3},
			{Kind: lir.KBitXor, Dst: 6, A: 2, B: 3},
			{Kind: lir.KShl, Dst: 7, A: 2, B: 3},
			{Kind: lir.KShr, Dst: 8, A: 2, B: 3},
			{Kind: lir.KUshr, Dst: 9, A: 2, B: 3},
			{Kind: lir.KAdd, Dst: 10, A: 4, B: 5},
			{Kind: lir.KAdd, Dst: 10, A: 10, B: 6},
			{Kind: lir.KAdd, Dst: 10, A: 10, B: 7},
			{Kind: lir.KAdd, Dst: 10, A: 10, B: 8},
			{Kind: lir.KAdd, Dst: 10, A: 10, B: 9},
			{Kind: lir.KRetNum, A: 10},
		},
	}
	for _, pair := range [][2]float64{
		{5.7, 3}, {-2147483648, 33}, {1e99, -1}, {math.NaN(), 2.5},
		{-1, 31}, {4294967295, 1}, {-0.0, 0}, {2147483647.9, -31.5},
		{8589934593, 2}, // 2^33+1: ToInt32 wraps, not saturates
	} {
		checkParity(t, code, numArgs(pair[0], pair[1]), newStub, 0)
	}
}

func TestParityMod(t *testing.T) {
	code := &lir.Code{
		Name: "mod", NumParams: 2, NumRegs: 5,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KMod, Dst: 4, A: 2, B: 3},
			{Kind: lir.KRetNum, A: 4},
		},
	}
	for _, pair := range [][2]float64{
		{7, 3}, {-7, 3}, {7, -3}, {-7, -3}, // fast path, all sign quadrants
		{7.5, 2}, {7, 2.5}, // non-integral → slow path
		{7, 0}, {-7, 0}, {0, 0}, // zero divisor → NaN via slow path
		{7, -0.0}, {-0.0, 3}, // signed zeros (divisor -0 truncates to 0)
		{9007199254740994, 3}, {3, 9007199254740994}, // beyond 2^53 → slow path
		{9007199254740991, 7}, {-9007199254740991, 7}, // exactly at the bound's edge
		{math.NaN(), 2}, {2, math.NaN()},
		{math.Inf(1), 7}, {7, math.Inf(1)},
		{-9.223372036854776e18, -1}, // INT64_MIN/-1 would #DE in idiv; must take the slow path
	} {
		checkParity(t, code, numArgs(pair[0], pair[1]), newStub, 0)
	}
}

// loopCode sums 1..n with a backward KJump: the canonical budget-discipline
// program (entry check + one check per taken back edge).
func loopCode() *lir.Code {
	return &lir.Code{
		Name: "loop", NumParams: 1, NumRegs: 7,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KConst, Dst: 3, Imm: 0}, // sum
			{Kind: lir.KConst, Dst: 4, Imm: 0}, // i
			{Kind: lir.KConst, Dst: 5, Imm: 1},
			{Kind: lir.KOSRPoint, Aux: 0}, // pc 4: loop header
			{Kind: lir.KCmp, Dst: 6, A: 4, B: 2, Aux: 1},
			{Kind: lir.KBranchFalse, A: 6, Target: 10},
			{Kind: lir.KAdd, Dst: 3, A: 3, B: 4},
			{Kind: lir.KAdd, Dst: 4, A: 4, B: 5},
			{Kind: lir.KJump, Target: 4},
			{Kind: lir.KRetNum, A: 3},
		},
	}
}

func TestParityLoopBudget(t *testing.T) {
	code := loopCode()
	for _, n := range []float64{0, 1, 5, 13} {
		sweepBudgets(t, code, numArgs(n), newStub, 90)
	}
}

func TestParityGuards(t *testing.T) {
	for _, aux := range []int32{0, 1} {
		code := &lir.Code{
			Name: "guard", NumParams: 1, NumRegs: 3,
			Ops: []lir.Op{
				{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: aux},
				{Kind: lir.KGuardType, Dst: 2, A: 1, Aux: aux},
				{Kind: lir.KRetNum, A: 2},
			},
		}
		args := [][]value.Value{numArgs(3), {value.Bool(true)}, {value.Undef()}}
		for _, a := range args {
			sweepBudgets(t, code, a, newStub, 5)
		}
	}
}

// arrayStub builds an arena with one 4-element array, identically per tier.
func arrayStub() *stubHooks {
	s := newStub()
	h, _ := s.arena.Alloc(4)
	for i := 0; i < 4; i++ {
		s.arena.Set(h, i, float64(10*i))
	}
	s.globals[2] = value.ArrayRef(h)
	return s
}

func TestParityArrays(t *testing.T) {
	code := &lir.Code{
		Name: "arr", NumParams: 2, NumRegs: 9,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KElemsHandle, Dst: 3, A: 2},
			{Kind: lir.KInitLen, Dst: 4, A: 3},
			{Kind: lir.KUnbox, Dst: 5, A: 1},
			{Kind: lir.KBoundsCheck, A: 5, B: 4},
			{Kind: lir.KLoadElem, Dst: 6, A: 3, B: 5},
			{Kind: lir.KConst, Dst: 7, Imm: 1},
			{Kind: lir.KAdd, Dst: 6, A: 6, B: 7},
			{Kind: lir.KStoreElem, A: 3, B: 5, C: 6},
			{Kind: lir.KLoadElem, Dst: 8, A: 3, B: 5},
			{Kind: lir.KRetNum, A: 8},
		},
	}
	mkArgs := func(s *stubHooks, idx float64) []value.Value {
		return []value.Value{s.globals[2], value.Num(idx)}
	}
	for _, idx := range []float64{0, 3, 4, -1, 1.5, math.NaN(), math.Inf(1), 2147483648} {
		// The handle is deterministic across fresh stubs, so capture it once.
		probe := arrayStub()
		args := mkArgs(probe, idx)
		sweepBudgets(t, code, args, arrayStub, 13)
	}
}

func TestParityLoadElemOffset(t *testing.T) {
	// KLoadElem/KStoreElem carry a constant displacement in Aux.
	code := &lir.Code{
		Name: "arr-disp", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KElemsHandle, Dst: 3, A: 2},
			{Kind: lir.KConst, Dst: 4, Imm: 1},
			{Kind: lir.KLoadElem, Dst: 5, A: 3, B: 4, Aux: 2}, // elems[1+2]
			{Kind: lir.KRetNum, A: 5},
		},
	}
	probe := arrayStub()
	sweepBudgets(t, code, []value.Value{probe.globals[2]}, arrayStub, 7)
}

func TestParityAddrOfCodeBase(t *testing.T) {
	code := &lir.Code{
		Name: "addr", NumParams: 1, NumRegs: 6,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0, Aux: 1},
			{Kind: lir.KAddrOf, Dst: 3, A: 2},
			{Kind: lir.KCodeBase, Dst: 4},
			{Kind: lir.KAdd, Dst: 5, A: 3, B: 4},
			{Kind: lir.KRetNum, A: 5},
		},
	}
	probe := arrayStub()
	sweepBudgets(t, code, []value.Value{probe.globals[2]}, arrayStub, 7)
}

func TestParityRuntimeOps(t *testing.T) {
	// Every host-delegated op in one program: allocation, push/pop,
	// length mutation, raw elems, globals, math builtins, pow.
	code := &lir.Code{
		Name: "rt", NumParams: 1, NumRegs: 12,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KNewArr, Dst: 3, A: 2},
			{Kind: lir.KConst, Dst: 4, Imm: 7},
			{Kind: lir.KPush, Dst: 5, A: 3, B: 4},
			{Kind: lir.KPop, Dst: 6, A: 3},
			{Kind: lir.KSetLen, A: 3, B: 2},
			{Kind: lir.KElemsRaw, Dst: 7, A: 3},
			{Kind: lir.KStoreGlobalNum, A: 6, Aux: 1},
			{Kind: lir.KStoreGlobalObj, A: 3, Aux: 3},
			{Kind: lir.KLoadGlobal, Dst: 8, Aux: 1},
			{Kind: lir.KMath, Dst: 9, A: 8, Aux: int32(bytecode.BMathSqrt)},
			{Kind: lir.KMath, Dst: 10, A: 9, B: 2, Aux: int32(bytecode.BMathMax)},
			{Kind: lir.KPow, Dst: 11, A: 10, B: 4},
			{Kind: lir.KRetNum, A: 11},
		},
	}
	for _, n := range []float64{3, 0, -1, 2.5} { // negative/fractional KNewArr bails
		sweepBudgets(t, code, numArgs(n), newStub, 16)
	}
}

func TestParityCalls(t *testing.T) {
	mkCall := func() *stubHooks {
		s := newStub()
		s.callFn = func(idx int, args []value.Value) (value.Value, error) {
			sum := float64(idx)
			for _, a := range args {
				if a.IsArray() {
					sum += 1000 * float64(a.Handle())
				} else {
					sum += a.ToNumber()
				}
			}
			return value.Num(sum), nil
		}
		return s
	}
	code := &lir.Code{
		Name: "call", NumParams: 2, NumRegs: 7,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KUnbox, Dst: 3, A: 1},
			{Kind: lir.KCall, Dst: 4, A: 0, Aux: 5},             // args (r2, r3) as numbers
			{Kind: lir.KCall, Dst: 5, A: 1, B: 0, C: 1, Aux: 2}, // first arg boxed as array ref
			{Kind: lir.KAdd, Dst: 6, A: 4, B: 5},
			{Kind: lir.KRetNum, A: 6},
		},
		ArgLists: [][]int32{{2, 3}, {2}},
	}
	sweepBudgets(t, code, numArgs(6, 7), mkCall, 8)
}

func TestParityCallExpectObject(t *testing.T) {
	for _, ret := range []value.Value{value.Num(5), value.Bool(true), value.Undef()} {
		ret := ret
		mk := func() *stubHooks {
			s := newStub()
			h, _ := s.arena.Alloc(2)
			s.callFn = func(idx int, args []value.Value) (value.Value, error) {
				if idx == 9 {
					return value.ArrayRef(h), nil
				}
				return ret, nil
			}
			return s
		}
		code := &lir.Code{
			Name: "callobj", NumParams: 0, NumRegs: 5,
			Ops: []lir.Op{
				{Kind: lir.KCall, Dst: 2, A: 0, B: 1, Aux: 9}, // expect object: ok
				{Kind: lir.KCall, Dst: 3, A: 0, B: 1, Aux: 1}, // expect object: ret decides
				{Kind: lir.KAdd, Dst: 4, A: 2, B: 3},
				{Kind: lir.KRetNum, A: 4},
			},
			ArgLists: [][]int32{{}},
		}
		sweepBudgets(t, code, nil, mk, 6)
	}
}

func TestParityCallSpecDeopt(t *testing.T) {
	for _, ret := range []value.Value{value.Num(5), value.Bool(true), value.Undef()} {
		ret := ret
		mk := func() *stubHooks {
			s := newStub()
			s.callFn = func(idx int, args []value.Value) (value.Value, error) { return ret, nil }
			return s
		}
		code := &lir.Code{
			Name: "callspec", NumParams: 1, NumRegs: 4,
			Ops: []lir.Op{
				{Kind: lir.KUnbox, Dst: 2, A: 0},
				{Kind: lir.KCallSpec, Dst: 3, A: 0, Aux: 1, Target: 0},
				{Kind: lir.KAdd, Dst: 3, A: 3, B: 2},
				{Kind: lir.KRetNum, A: 3},
			},
			ArgLists: [][]int32{{2}},
			DeoptExits: []lir.DeoptExit{{
				Ordinal: 0, ResultSlot: 1,
				Slots: []lir.FrameSlot{{Slot: 0, Reg: 2, Kind: lir.SlotNum}},
			}},
		}
		sweepBudgets(t, code, numArgs(8), mk, 6)
	}
}

func TestParityCallSpecOrphanGuard(t *testing.T) {
	mk := func() *stubHooks {
		s := newStub()
		s.callFn = func(idx int, args []value.Value) (value.Value, error) { return value.Undef(), nil }
		return s
	}
	code := &lir.Code{
		Name: "orphan", NumParams: 0, NumRegs: 3,
		Ops: []lir.Op{
			{Kind: lir.KCallSpec, Dst: 2, A: 0, Aux: 1, Target: -1},
			{Kind: lir.KRetNum, A: 2},
		},
		ArgLists: [][]int32{{}},
	}
	sweepBudgets(t, code, nil, mk, 4)
}

func TestParityReturnsAndFallOff(t *testing.T) {
	probe := arrayStub()
	cases := []struct {
		name string
		ops  []lir.Op
		args []value.Value
	}{
		{"retobj", []lir.Op{
			{Kind: lir.KUnbox, Dst: 1, A: 0, Aux: 1},
			{Kind: lir.KRetObj, A: 1},
		}, []value.Value{probe.globals[2]}},
		{"retundef", []lir.Op{
			{Kind: lir.KNop},
			{Kind: lir.KRetUndef},
		}, nil},
		{"fall-off", []lir.Op{
			{Kind: lir.KConst, Dst: 1, Imm: 3},
			{Kind: lir.KAdd, Dst: 1, A: 1, B: 1},
		}, nil},
	}
	for _, tc := range cases {
		code := &lir.Code{Name: tc.name, NumParams: len(tc.args), NumRegs: 3, Ops: tc.ops}
		sweepBudgets(t, code, tc.args, arrayStub, 4)
	}
}

// TestParitySpillPressure pins the memory-resident register file: with far
// more than 14 simultaneously-live values, every slot must round-trip
// bit-identically between the machine-code tier and both threaded tiers
// (a hardware-register-mapped design would have to spill here; this design
// makes every LIR register a spill slot by construction).
func TestParitySpillPressure(t *testing.T) {
	const live = 24
	ops := []lir.Op{{Kind: lir.KUnbox, Dst: 2, A: 0}}
	// r3..r3+live-1 ← distinct values derived from the parameter, all live
	// until the final reduction.
	for i := 0; i < live; i++ {
		ops = append(ops,
			lir.Op{Kind: lir.KConst, Dst: int32(3 + live), Imm: float64(i) + 0.25},
			lir.Op{Kind: lir.KMul, Dst: int32(3 + i), A: 2, B: int32(3 + live)},
		)
	}
	acc := int32(3 + live + 1)
	ops = append(ops, lir.Op{Kind: lir.KConst, Dst: acc, Imm: 0})
	for i := 0; i < live; i++ {
		ops = append(ops, lir.Op{Kind: lir.KAdd, Dst: acc, A: acc, B: int32(3 + i)})
	}
	ops = append(ops, lir.Op{Kind: lir.KRetNum, A: acc})
	code := &lir.Code{Name: "spill", NumParams: 1, NumRegs: int(acc) + 1, Ops: ops}
	if code.NumRegs <= 14 {
		t.Fatalf("test must exceed 14 live values, got %d regs", code.NumRegs)
	}
	for _, x := range []float64{1.5, -3, math.Pi, 1e15} {
		checkParity(t, code, numArgs(x), newStub, 0)
	}
	sweepBudgets(t, code, numArgs(2), newStub, int64(len(ops))+2)
}

// windowStub adds the engine's optional global-window capability to the
// stub, turning on the inline fast path of the global ops in the mc tier.
type windowStub struct{ *stubHooks }

func (w windowStub) Globals() []value.Value { return w.globals }

// checkWindowParity runs code through three cells — mc with the window
// (inline fast path), mc without it (runtime-exit slow path) and the fused
// reference — and requires identical observations plus identical final
// global tables, compared by strict equality and rendering (the two ways
// any consumer reads a slot).
func checkWindowParity(t *testing.T, code *lir.Code, args []value.Value, mk func() *stubHooks, maxOps int64) {
	t.Helper()
	if code.Fused == nil {
		code.Fused = lir.Fuse(code)
	}
	u, err := Compile(code)
	if err != nil {
		t.Fatalf("mc compile: %v", err)
	}
	hw, hp, hf := mk(), mk(), mk()
	win := observe(u.Exec(args, windowStub{hw}, maxOps, nil))
	plain := observe(u.Exec(args, hp, maxOps, nil))
	ref := observe(native.Exec(code, args, hf, maxOps, nil))
	if !sameRun(win, plain) {
		t.Errorf("maxOps=%d: mc window %+v != mc slow-path %+v", maxOps, win, plain)
	}
	if !sameRun(win, ref) || win.checks != ref.checks {
		t.Errorf("maxOps=%d: mc window %+v != fused %+v", maxOps, win, ref)
	}
	for i := range hw.globals {
		if !value.StrictEquals(hw.globals[i], hf.globals[i]) ||
			hw.globals[i].ToString() != hf.globals[i].ToString() {
			t.Errorf("maxOps=%d: global %d: window %v != fused %v",
				maxOps, i, hw.globals[i], hf.globals[i])
		}
	}
}

func TestParityGlobalWindow(t *testing.T) {
	// One load per value type — Number and Boolean carry their payload,
	// Array boxes the handle, String/Undefined/Null land as NaN/TagOther —
	// plus a number store over the String slot: the case where the inline
	// store leaves a stale str payload behind the Number type byte.
	mk := func() *stubHooks {
		s := newStub()
		h, _ := s.arena.Alloc(2)
		s.arena.Set(h, 0, 5)
		s.globals[0] = value.Num(6.25)
		s.globals[1] = value.Bool(true)
		s.globals[2] = value.ArrayRef(h)
		s.globals[3] = value.Str("shadowed")
		s.globals[5] = value.NullV()
		return s
	}
	code := &lir.Code{
		Name: "gwin", NumParams: 1, NumRegs: 12,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KLoadGlobal, Dst: 3, Aux: 0},
			{Kind: lir.KLoadGlobal, Dst: 4, Aux: 1},
			{Kind: lir.KLoadGlobal, Dst: 5, Aux: 2},
			{Kind: lir.KAdd, Dst: 6, A: 3, B: 4},
			{Kind: lir.KAdd, Dst: 6, A: 6, B: 5},
			{Kind: lir.KAdd, Dst: 6, A: 6, B: 2},
			{Kind: lir.KStoreGlobalNum, A: 6, Aux: 3}, // overwrite the String slot
			{Kind: lir.KLoadGlobal, Dst: 7, Aux: 3},   // read the stored number back
			{Kind: lir.KLoadGlobal, Dst: 8, Aux: 4},   // Undefined → NaN/TagOther
			{Kind: lir.KLoadGlobal, Dst: 9, Aux: 5},   // Null → NaN/TagOther
			{Kind: lir.KRetNum, A: 7},
		},
	}
	for maxOps := int64(1); maxOps <= 14; maxOps++ {
		checkWindowParity(t, code, numArgs(2.5), mk, maxOps)
	}
	checkWindowParity(t, code, numArgs(2.5), mk, 0)
}

func TestParityElemsRawEdges(t *testing.T) {
	// The inline KElemsRaw fast path covers integral, in-range handles;
	// everything else — fractional, NaN, infinite, huge, negative, dangling
	// — must take the slow exit and reproduce the reference fallbacks,
	// including crash errors and the int32 handle wrap.
	code := &lir.Code{
		Name: "elemsraw", NumParams: 1, NumRegs: 4,
		Ops: []lir.Op{
			{Kind: lir.KUnbox, Dst: 2, A: 0},
			{Kind: lir.KElemsRaw, Dst: 3, A: 2},
			{Kind: lir.KRetNum, A: 3},
		},
	}
	for _, h := range []float64{
		0, 1, -1, 0.5, math.NaN(), math.Inf(1), 1e300,
		-9.223372036854776e18, // -2^63: int64-exact, wraps to handle 0
		2147483648,            // 2^31: wraps negative, invalid
		4294967296,            // 2^32: wraps to handle 0, valid again
	} {
		sweepBudgets(t, code, numArgs(h), arrayStub, 5)
	}
}

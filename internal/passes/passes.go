// Package passes implements the MIR optimization pipeline of the jitbull
// optimizing tier, modeled on IonMonkey's OptimizeMIR: an ordered sequence
// of passes over the SSA graph, each of which can be observed (for JITBULL
// DNA extraction) and individually disabled (the go/no-go policy), except
// for a few mandatory passes.
//
// The package also hosts the *injected vulnerabilities*: deliberate
// mis-optimizations, each gated by a CVE identifier, reproducing the root
// cause classes of the real IonMonkey bugs the paper evaluates (bad alias
// dependencies, over-eager guard elimination, wrong range widening, unsound
// hoisting/sinking). With an empty BugSet the pipeline is sound.
package passes

import (
	"fmt"
	"time"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/obs"
)

// CVE identifiers for the injected bugs. See DESIGN.md §2.2 for the mapping
// to the real vulnerabilities.
const (
	CVE201717026 = "CVE-2019-17026" // GVN: length congruence ignores the object
	CVE20199810  = "CVE-2019-9810"  // GVN: same root flaw, read-side trigger
	CVE201911707 = "CVE-2019-11707" // FoldTests/BCE: dominating-test matching ignores memory deps
	CVE20199791  = "CVE-2019-9791"  // ApplyTypes: monomorphic unbox guard removed
	CVE20199792  = "CVE-2019-9792"  // Sink: cross-branch sink leaks magic value
	CVE20199795  = "CVE-2019-9795"  // AliasAnalysis: setlength miscategorized
	CVE20199813  = "CVE-2019-9813"  // RangeAnalysis: <= widened as <
	CVE202026952 = "CVE-2020-26952" // LICM: calls ignored when hoisting loads
)

// AllCVEs lists every injectable bug id in a stable order.
var AllCVEs = []string{
	CVE201717026, CVE20199810, CVE201911707, CVE20199791,
	CVE20199792, CVE20199795, CVE20199813, CVE202026952,
}

// BugSet is the set of injected vulnerabilities active in this build of the
// engine (the "vulnerability window").
type BugSet map[string]bool

// Has reports whether the bug is active.
func (s BugSet) Has(id string) bool { return s[id] }

// Range is an integer-ish interval with an optional symbolic upper bound:
// value <= Sym + SymOff when Sym is set. Used by range analysis and
// consumed by bounds check elimination.
type Range struct {
	Lo, Hi   float64 // -Inf/+Inf when unknown
	Sym      *mir.Instr
	SymOff   float64
	NonNaN   bool
	Integral bool
}

// Context carries cross-pass state for one OptimizeMIR run.
type Context struct {
	Bugs   BugSet
	Ranges map[*mir.Instr]Range
}

// Pass is one optimization pass.
type Pass interface {
	// Name is the stable pass name used in JITBULL DNA vectors.
	Name() string
	// Disableable reports whether the JIT can compile without this pass.
	Disableable() bool
	// Run mutates the graph in place.
	Run(g *mir.Graph, ctx *Context) error
}

// Pipeline returns the ordered pass list (fresh instances).
func Pipeline() []Pass {
	return []Pass{
		renumberPass{name: "RenumberInstructions"},
		pruneBranchesPass{},
		foldTestsPass{},
		splitEdgesPass{},
		phiAnalysisPass{},
		applyTypesPass{},
		typeSpeculationPass{},
		aliasAnalysisPass{},
		gvnPass{},
		licmPass{},
		rangeAnalysisPass{},
		bcePass{},
		foldArithPass{},
		edgeCasePass{},
		effAddrPass{},
		sinkPass{},
		bitopsPass{},
		scalarReplPass{},
		dcePass{},
		emptyBlocksPass{},
		reorderPass{},
		keepAlivePass{},
		renumberPass{name: "RenumberInstructionsFinal"},
	}
}

// PassNames returns the pipeline's pass names in order.
func PassNames() []string {
	pl := Pipeline()
	names := make([]string, len(pl))
	for i, p := range pl {
		names[i] = p.Name()
	}
	return names
}

// Disableable reports whether the named pass can be disabled. Unknown names
// report false.
func Disableable(name string) bool {
	for _, p := range Pipeline() {
		if p.Name() == name {
			return p.Disableable()
		}
	}
	return false
}

// Observer is called around each executed pass with IR snapshots; install
// one to extract JIT DNA. before/after are nil for skipped (disabled)
// passes.
type Observer func(passIndex int, passName string, before, after *mir.Snapshot)

// IRError reports that the SSA verifier rejected the graph at a pass
// boundary, attributing the breakage to the pass that just ran.
type IRError struct {
	Func   string   // function being compiled
	Pass   string   // pass after which verification failed ("" = input graph)
	Issues []string // the verifier's findings
}

// Error implements the error interface.
func (e *IRError) Error() string {
	where := e.Pass
	if where == "" {
		where = "<input graph>"
	}
	return fmt.Sprintf("IR verification failed for %s after pass %s: %v", e.Func, where, e.Issues)
}

// RunOptions parameterizes RunWith.
type RunOptions struct {
	// Bugs selects the injected vulnerabilities active in this build.
	Bugs BugSet
	// Disabled names passes to skip (mandatory passes cannot be skipped and
	// cause an error when asked to).
	Disabled map[string]bool
	// Observer, when non-nil, receives a snapshot pair per executed pass.
	Observer Observer
	// CheckIR runs the full SSA verifier after every executed pass (and
	// once on the input graph), returning an *IRError naming the offending
	// pass on the first violation. Intended for tests and fuzzing; the
	// normal path verifies once at the end of the pipeline.
	CheckIR bool
	// Pipeline overrides the pass list (nil = the standard Pipeline()).
	// Used by tests to inject deliberately broken passes and prove the
	// verifier attributes them.
	Pipeline []Pass
	// Faults is the compile supervisor's context: a step-budget meter
	// charged per executed pass (proportionally to the graph size) plus
	// the fault-injection point evaluated before each pass. It also carries
	// the tracer, which records one span per executed pass (with
	// input/output instruction counts) and one DNA-extraction span per
	// observed pass. Nil is valid and free — the unsupervised path pays
	// nothing.
	Faults *faults.CompileCtx
	// Metrics, when non-nil, receives per-pass latencies into the
	// "compile.pass_ns" histogram.
	Metrics *obs.Registry
}

// Run executes the standard pipeline over g. Disabled names passes are
// skipped (mandatory passes cannot be skipped and return an error if asked
// to). The observer, when non-nil, receives a snapshot pair per executed
// pass; when nil, no snapshots are taken at all, making the instrumented
// path zero-cost exactly as the paper's implementation promises for an
// empty VDC database.
func Run(g *mir.Graph, bugs BugSet, disabled map[string]bool, obs Observer) error {
	return RunWith(g, RunOptions{Bugs: bugs, Disabled: disabled, Observer: obs})
}

// RunWith executes the pipeline over g under the given options.
func RunWith(g *mir.Graph, o RunOptions) error {
	ctx := &Context{Bugs: o.Bugs, Ranges: map[*mir.Instr]Range{}}
	// Builds with injected vulnerabilities miscompile by producing ill-typed
	// IR on purpose; only structural SSA invariants are checkable there.
	vopts := mir.VerifyOptions{Types: len(o.Bugs) == 0}
	pipeline := o.Pipeline
	if pipeline == nil {
		pipeline = Pipeline()
	}
	if o.CheckIR {
		if issues := g.VerifyOpts(vopts); len(issues) > 0 {
			return &IRError{Func: g.Name, Issues: issues}
		}
	}
	var passHist *obs.Histogram
	if o.Metrics != nil {
		passHist = o.Metrics.Histogram("compile.pass_ns", obs.LatencyBucketsNs)
	}
	// The IR is untouched between passes, so each pass's "before" snapshot
	// is the previous pass's "after": one snapshot per executed pass.
	var prev *mir.Snapshot
	for i, p := range pipeline {
		if o.Disabled[p.Name()] {
			if !p.Disableable() {
				return fmt.Errorf("pass %s is mandatory and cannot be disabled", p.Name())
			}
			o.Faults.Tracer().Instant(obs.CatPass, "pass.skipped",
				obs.S("pass", p.Name()), obs.I("index", int64(i)))
			if o.Observer != nil {
				o.Observer(i, p.Name(), nil, nil)
			}
			continue
		}
		instrsIn := g.InstrCount()
		if o.Faults != nil {
			if err := o.Faults.Step(faults.PointPass, p.Name(), int64(instrsIn)); err != nil {
				return fmt.Errorf("pass %s: %w", p.Name(), err)
			}
		}
		if o.Observer != nil && prev == nil {
			prev = g.Snap()
		}
		sp := o.Faults.Span(obs.CatPass, p.Name())
		var t0 time.Time
		if passHist != nil {
			t0 = time.Now()
		}
		if err := p.Run(g, ctx); err != nil {
			sp.EndErr(err)
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if passHist != nil {
			passHist.Observe(int64(time.Since(t0)))
		}
		sp.End(obs.I("index", int64(i)),
			obs.I("instrs_in", int64(instrsIn)), obs.I("instrs_out", int64(g.InstrCount())))
		if o.Observer != nil {
			dsp := o.Faults.Span(obs.CatDNA, "dna.extract")
			after := g.Snap()
			o.Observer(i, p.Name(), prev, after)
			prev = after
			dsp.End(obs.S("pass", p.Name()))
		}
		if o.CheckIR {
			if issues := g.VerifyOpts(vopts); len(issues) > 0 {
				return &IRError{Func: g.Name, Pass: p.Name(), Issues: issues}
			}
		}
	}
	if errs := g.VerifyOpts(vopts); len(errs) > 0 {
		return fmt.Errorf("pipeline produced invalid graph for %s: %v", g.Name, errs)
	}
	return nil
}

// forEachLive iterates over live instructions in reverse postorder.
func forEachLive(g *mir.Graph, fn func(b *mir.Block, in *mir.Instr)) {
	for _, b := range g.ReversePostorder() {
		for _, in := range b.Instrs {
			if !in.Dead {
				fn(b, in)
			}
		}
	}
}

package passes

import (
	"github.com/jitbull/jitbull/internal/mir"
)

// ---- RenumberInstructions ----

// renumberPass reassigns dense instruction IDs in reverse postorder, as
// IonMonkey's renumbering passes do. It appears twice in the pipeline
// (early and final).
type renumberPass struct{ name string }

func (p renumberPass) Name() string      { return p.name }
func (p renumberPass) Disableable() bool { return true }
func (p renumberPass) Run(g *mir.Graph, _ *Context) error {
	g.Renumber()
	return nil
}

// ---- PruneUnusedBranches ----

// pruneBranchesPass folds branches on constant conditions into gotos and
// removes the unreachable arms.
type pruneBranchesPass struct{}

func (pruneBranchesPass) Name() string      { return "PruneUnusedBranches" }
func (pruneBranchesPass) Disableable() bool { return true }
func (pruneBranchesPass) Run(g *mir.Graph, _ *Context) error {
	changed := false
	for _, b := range g.ReversePostorder() {
		ctl := b.Control()
		if ctl == nil || ctl.Op != mir.OpTest {
			continue
		}
		cond := ctl.Operands[0]
		if cond.Op != mir.OpConstant {
			continue
		}
		taken := 0
		if cond.Num == 0 || cond.Num != cond.Num { // falsy: 0 or NaN
			taken = 1
		}
		foldTestToGoto(b, taken)
		changed = true
	}
	if changed {
		g.PruneUnreachable()
		g.BuildDominators()
	}
	return nil
}

// foldTestToGoto replaces block b's Test with a Goto to Succs[taken],
// detaching the other edge.
func foldTestToGoto(b *mir.Block, taken int) {
	ctl := b.Control()
	other := b.Succs[1-taken]
	target := b.Succs[taken]
	// Remove the edge to the untaken successor.
	for i, p := range other.Preds {
		if p == b {
			other.RemovePred(i)
			break
		}
	}
	b.Succs = []*mir.Block{target}
	ctl.Op = mir.OpGoto
	ctl.Operands = nil
}

// ---- SplitCriticalEdges (mandatory) ----

// splitEdgesPass inserts an empty block on every critical edge (an edge
// from a multi-successor block to a multi-predecessor block), a
// prerequisite for the dominance reasoning in later passes.
type splitEdgesPass struct{}

func (splitEdgesPass) Name() string      { return "SplitCriticalEdges" }
func (splitEdgesPass) Disableable() bool { return false }
func (splitEdgesPass) Run(g *mir.Graph, _ *Context) error {
	changed := false
	// Collect first: we mutate the block list while splitting.
	type edge struct {
		pred *mir.Block
		succ *mir.Block
		si   int // index in pred.Succs
	}
	var critical []edge
	for _, b := range g.ReversePostorder() {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) >= 2 {
				critical = append(critical, edge{pred: b, succ: s, si: i})
			}
		}
	}
	for _, e := range critical {
		mid := g.NewBlock()
		mid.Append(g.NewInstr(mir.OpGoto, mir.TypeNone))
		e.pred.Succs[e.si] = mid
		mid.Preds = []*mir.Block{e.pred}
		mid.Succs = []*mir.Block{e.succ}
		for i, p := range e.succ.Preds {
			if p == e.pred {
				e.succ.Preds[i] = mid
				break
			}
		}
		changed = true
	}
	if changed {
		g.BuildDominators()
	}
	return nil
}

// ---- PhiAnalysis (mandatory) ----

// phiAnalysisPass removes trivial phis (all inputs equal, possibly
// including the phi itself) left over from SSA construction or exposed by
// earlier folding.
type phiAnalysisPass struct{}

func (phiAnalysisPass) Name() string      { return "PhiAnalysis" }
func (phiAnalysisPass) Disableable() bool { return false }
func (phiAnalysisPass) Run(g *mir.Graph, _ *Context) error {
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			for _, in := range b.Phis() {
				if in.Dead || in.Op != mir.OpPhi {
					continue
				}
				var same *mir.Instr
				trivial := true
				for _, op := range in.Operands {
					if op == in || op == same {
						continue
					}
					if same != nil {
						trivial = false
						break
					}
					same = op
				}
				if trivial && same != nil {
					g.ReplaceUses(in, same)
					in.Dead = true
					changed = true
				}
			}
		}
	}
	g.RemoveDead()
	return nil
}

// ---- EliminateDeadCode ----

// dcePass removes pure instructions whose results are unused. Guards and
// effectful instructions are live roots.
type dcePass struct{}

func (dcePass) Name() string      { return "EliminateDeadCode" }
func (dcePass) Disableable() bool { return true }
func (dcePass) Run(g *mir.Graph, _ *Context) error {
	live := map[*mir.Instr]bool{}
	var work []*mir.Instr
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op.IsControl() || in.Op.IsGuard() || in.Op.HasEffects() {
			live[in] = true
			work = append(work, in)
		}
	})
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for _, op := range in.Operands {
			if !live[op] {
				live[op] = true
				work = append(work, op)
			}
		}
	}
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if !live[in] {
			in.Dead = true
		}
	})
	g.RemoveDead()
	return nil
}

// ---- EliminateEmptyBlocks ----

// emptyBlocksPass splices out goto-only blocks with a single predecessor
// and successor.
type emptyBlocksPass struct{}

func (emptyBlocksPass) Name() string      { return "EliminateEmptyBlocks" }
func (emptyBlocksPass) Disableable() bool { return true }
func (emptyBlocksPass) Run(g *mir.Graph, _ *Context) error {
	changed := false
	for _, b := range g.ReversePostorder() {
		if b == g.Entry() || len(b.Preds) != 1 || len(b.Succs) != 1 {
			continue
		}
		if len(b.Instrs) != 1 || b.Instrs[0].Op != mir.OpGoto {
			continue
		}
		p, s := b.Preds[0], b.Succs[0]
		if p == b || s == b {
			continue // self loop
		}
		// Keep critical edges split: splicing would re-create one.
		if len(p.Succs) > 1 && len(s.Preds) > 1 {
			continue
		}
		for i, ps := range p.Succs {
			if ps == b {
				p.Succs[i] = s
			}
		}
		for i, sp := range s.Preds {
			if sp == b {
				s.Preds[i] = p
			}
		}
		b.Preds = nil
		b.Succs = nil
		changed = true
	}
	if changed {
		g.PruneUnreachable()
		g.BuildDominators()
	}
	return nil
}

// ---- ReorderInstructions ----

// reorderPass performs a simple scheduling normalization: constants float
// to the top of their block (after phis), matching the "renumbering,
// reorganizing" bookkeeping passes the paper describes.
type reorderPass struct{}

func (reorderPass) Name() string      { return "ReorderInstructions" }
func (reorderPass) Disableable() bool { return true }
func (reorderPass) Run(g *mir.Graph, _ *Context) error {
	for _, b := range g.Blocks {
		var phis, consts, rest []*mir.Instr
		for _, in := range b.Instrs {
			switch {
			case in.Op == mir.OpPhi:
				phis = append(phis, in)
			case in.Op == mir.OpConstant:
				consts = append(consts, in)
			default:
				rest = append(rest, in)
			}
		}
		if len(consts) == 0 {
			continue
		}
		out := b.Instrs[:0]
		out = append(out, phis...)
		out = append(out, consts...)
		out = append(out, rest...)
		b.Instrs = out
	}
	return nil
}

// ---- AddKeepAliveInstructions ----

// keepAlivePass appends a keepalive use of every array whose elements are
// accessed, modeling IonMonkey's AddKeepAliveInstructions (which keeps the
// owning object alive for the GC while its elements pointer is in use).
type keepAlivePass struct{}

func (keepAlivePass) Name() string      { return "AddKeepAliveInstructions" }
func (keepAlivePass) Disableable() bool { return true }
func (keepAlivePass) Run(g *mir.Graph, _ *Context) error {
	for _, b := range g.Blocks {
		var keeps []*mir.Instr
		for _, in := range b.Instrs {
			if in.Dead || in.Op != mir.OpElements {
				continue
			}
			obj := in.Operands[0]
			ka := g.NewInstr(mir.OpKeepAlive, mir.TypeNone, obj)
			keeps = append(keeps, ka)
		}
		for _, ka := range keeps {
			b.InsertBeforeControl(ka)
		}
	}
	return nil
}

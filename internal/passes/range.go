package passes

import (
	"math"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/mir"
)

// rangeAnalysisPass computes value ranges (possibly with a symbolic upper
// bound) for the instructions of the graph and stores them in the pass
// Context for BoundsCheckElimination and the bit-op cleanups.
//
// The interesting case is loop induction variables: a header phi of the
// form phi(init, phi+c) with c>0, governed by a header test
// `compare(< , phi, X)`, ranges over [init.Lo, X-1] — symbolically when X
// is not a constant.
//
// Injected bug (CVE-2019-9813 model): a `<=` loop condition is widened as
// if it were `<`, declaring the induction variable one smaller than it can
// really get. BoundsCheckElimination then removes a check the loop's final
// iteration actually needs — an off-by-one out-of-bounds.
type rangeAnalysisPass struct{}

func (rangeAnalysisPass) Name() string      { return "RangeAnalysis" }
func (rangeAnalysisPass) Disableable() bool { return true }

func unknownRange() Range {
	return Range{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

func constRange(c float64) Range {
	return Range{Lo: c, Hi: c, NonNaN: !math.IsNaN(c), Integral: c == math.Trunc(c) && !math.IsNaN(c) && !math.IsInf(c, 0)}
}

func (rangeAnalysisPass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()
	buggyLe := ctx.Bugs.Has(CVE20199813)
	r := map[*mir.Instr]Range{}
	get := func(in *mir.Instr) Range {
		if rr, ok := r[in]; ok {
			return rr
		}
		return unknownRange()
	}

	// Induction variables first: they seed the intervals of everything
	// derived from them.
	for _, loop := range g.LoopBodies() {
		header := loop.Header
		ctl := header.Control()
		if ctl == nil || ctl.Op != mir.OpTest {
			continue
		}
		cond := ctl.Operands[0]
		if cond.Op != mir.OpCompare {
			continue
		}
		kind := mir.CompareKind(cond.Aux)
		if kind != mir.CmpLt && kind != mir.CmpLe {
			continue
		}
		// The loop continues through the true edge.
		if !loop.Contains(header.Succs[0]) || loop.Contains(header.Succs[1]) {
			continue
		}
		phi := cond.Operands[0]
		bound := cond.Operands[1]
		if phi.Op != mir.OpPhi || phi.Block != header || len(phi.Operands) != 2 {
			continue
		}
		// Identify init (from outside) vs step (from the back edge).
		var init, step *mir.Instr
		for i, p := range header.Preds {
			if loop.Contains(p) {
				step = phi.Operands[i]
			} else {
				init = phi.Operands[i]
			}
		}
		if init == nil || step == nil {
			continue
		}
		if step.Op != mir.OpAdd {
			continue
		}
		var inc *mir.Instr
		switch {
		case step.Operands[0] == phi:
			inc = step.Operands[1]
		case step.Operands[1] == phi:
			inc = step.Operands[0]
		default:
			continue
		}
		if inc.Op != mir.OpConstant || inc.Num <= 0 {
			continue
		}
		rng := unknownRange()
		rng.Integral = inc.Num == math.Trunc(inc.Num)
		rng.NonNaN = true
		if init.Op == mir.OpConstant {
			rng.Lo = init.Num
			rng.Integral = rng.Integral && init.Num == math.Trunc(init.Num)
		}
		switch {
		case bound.Op == mir.OpConstant:
			if kind == mir.CmpLt || buggyLe {
				rng.Hi = bound.Num - 1
			} else {
				rng.Hi = bound.Num
			}
		default:
			rng.Sym = bound
			if kind == mir.CmpLt || buggyLe { // BUG: <= treated as <
				rng.SymOff = -1
			} else {
				rng.SymOff = 0
			}
		}
		r[phi] = rng
	}

	// One forward sweep for derived values (enough for the patterns the
	// JIT subset produces; deeper chains just stay unknown).
	for _, b := range g.ReversePostorder() {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			if _, seeded := r[in]; seeded {
				continue
			}
			switch in.Op {
			case mir.OpConstant:
				r[in] = constRange(in.Num)
			case mir.OpInitializedLength, mir.OpArrayPush:
				rr := unknownRange()
				rr.Lo = 0
				rr.NonNaN = true
				rr.Integral = true
				r[in] = rr
			case mir.OpCompare, mir.OpNot:
				rr := Range{Lo: 0, Hi: 1, NonNaN: true, Integral: true}
				r[in] = rr
			case mir.OpAdd, mir.OpSub:
				x, y := get(in.Operands[0]), get(in.Operands[1])
				var rr Range
				if in.Op == mir.OpAdd {
					rr = Range{Lo: x.Lo + y.Lo, Hi: x.Hi + y.Hi}
					if x.Sym != nil && y.Lo == y.Hi && !math.IsInf(y.Lo, 0) {
						rr.Sym, rr.SymOff = x.Sym, x.SymOff+y.Lo
					}
				} else {
					rr = Range{Lo: x.Lo - y.Hi, Hi: x.Hi - y.Lo}
					if x.Sym != nil && y.Lo == y.Hi && !math.IsInf(y.Lo, 0) {
						rr.Sym, rr.SymOff = x.Sym, x.SymOff-y.Lo
					}
				}
				rr.NonNaN = x.NonNaN && y.NonNaN
				rr.Integral = x.Integral && y.Integral
				r[in] = rr
			case mir.OpMul:
				x, y := get(in.Operands[0]), get(in.Operands[1])
				if y.Sym != nil {
					x, y = y, x // canonical: symbolic side in x
				}
				if ctx.Bugs.Has(CVE202026952) && x.Sym != nil && y.Lo == y.Hi && y.Lo >= 1 {
					// BUG (CVE-2020-26952 model): the symbolic upper bound
					// is propagated through a multiplication *unscaled*, so
					// i*k is believed to stay below the same bound as i.
					// BCE then removes a check the scaled index overflows.
					rr := Range{Lo: x.Lo * y.Lo, Hi: x.Hi, Sym: x.Sym, SymOff: x.SymOff,
						NonNaN: x.NonNaN && y.NonNaN, Integral: x.Integral && y.Integral}
					r[in] = rr
					break
				}
				if x.Lo >= 0 && y.Lo >= 0 && !math.IsInf(x.Hi, 0) && !math.IsInf(y.Hi, 0) {
					r[in] = Range{Lo: x.Lo * y.Lo, Hi: x.Hi * y.Hi, NonNaN: true, Integral: x.Integral && y.Integral}
				}
			case mir.OpMathFunc:
				switch bytecode.Builtin(in.Aux) {
				case bytecode.BMathFloor, bytecode.BMathCeil, bytecode.BMathRound:
					x := get(in.Operands[0])
					rr := Range{Lo: math.Floor(x.Lo), Hi: math.Ceil(x.Hi), NonNaN: x.NonNaN, Integral: true}
					r[in] = rr
				case bytecode.BMathAbs:
					x := get(in.Operands[0])
					hi := math.Max(math.Abs(x.Lo), math.Abs(x.Hi))
					r[in] = Range{Lo: 0, Hi: hi, NonNaN: x.NonNaN, Integral: x.Integral}
				case bytecode.BMathRandom:
					r[in] = Range{Lo: 0, Hi: 1, NonNaN: true}
				}
			case mir.OpBitAnd:
				x, y := get(in.Operands[0]), get(in.Operands[1])
				hi := math.Inf(1)
				if x.Lo >= 0 && x.Hi < math.Inf(1) {
					hi = x.Hi
				}
				if y.Lo >= 0 && y.Hi < hi {
					hi = y.Hi
				}
				if !math.IsInf(hi, 0) {
					r[in] = Range{Lo: 0, Hi: hi, NonNaN: true, Integral: true}
				}
			case mir.OpUshr:
				r[in] = Range{Lo: 0, Hi: 4294967295, NonNaN: true, Integral: true}
			}
		}
	}
	ctx.Ranges = r
	return nil
}

// edgeCasePass refines ranges for edge cases the main analysis treats
// pessimistically (IonMonkey's EdgeCaseAnalysis handles NaN and negative
// zero; ours refines bit operations and modulo so
// RemoveUnnecessaryBitops has something to work with).
type edgeCasePass struct{}

func (edgeCasePass) Name() string      { return "EdgeCaseAnalysis" }
func (edgeCasePass) Disableable() bool { return true }

func (edgeCasePass) Run(g *mir.Graph, ctx *Context) error {
	if ctx.Ranges == nil {
		return nil
	}
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		switch in.Op {
		case mir.OpBitOr, mir.OpBitXor, mir.OpShl, mir.OpShr:
			if _, ok := ctx.Ranges[in]; !ok {
				ctx.Ranges[in] = Range{Lo: -2147483648, Hi: 2147483647, NonNaN: true, Integral: true}
			}
		case mir.OpMod:
			div := in.Operands[1]
			if div.Op == mir.OpConstant && div.Num != 0 && !math.IsNaN(div.Num) {
				m := math.Abs(div.Num)
				x := ctx.Ranges[in.Operands[0]]
				rr := Range{Lo: -m, Hi: m, Integral: x.Integral && m == math.Trunc(m)}
				if x.Lo >= 0 {
					rr.Lo = 0
					rr.NonNaN = x.NonNaN
				}
				ctx.Ranges[in] = rr
			}
		}
	})
	return nil
}

package passes

import "github.com/jitbull/jitbull/internal/mir"

// bcePass removes bounds checks proven redundant. A `boundscheck(idx, len)`
// is removable when both of the following hold:
//
//   - lower bound: idx is provably non-negative — its range says so, or a
//     dominating branch pins `idx >= 0` (or `idx > c` with c >= -1);
//   - upper bound: idx is provably below len — its symbolic range says
//     idx <= len-1, or a dominating branch pins `idx < len` for the *same
//     SSA* len value.
//
// This is the pass that makes `if (i >= 0 && i < a.length) a[i] = v` and
// `for (i = 0; i < a.length; i++) a[i]` run without per-access checks, and
// its removals are the most common benign entries in a function's JIT DNA.
//
// Injected bug (CVE-2019-11707 model, shared with FoldTests): the
// dominating-branch match accepts shape-congruent conditions instead of
// requiring SSA identity, so a branch on a *stale* length validates a
// check against the current (smaller) one.
type bcePass struct{}

func (bcePass) Name() string      { return "BoundsCheckElimination" }
func (bcePass) Disableable() bool { return true }

func (bcePass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()
	buggy := ctx.Bugs.Has(CVE201911707)
	ranges := ctx.Ranges
	if ranges == nil {
		ranges = map[*mir.Instr]Range{}
	}
	rangeOf := func(in *mir.Instr) Range {
		if r, ok := ranges[in]; ok {
			return r
		}
		return unknownRange()
	}

	// provedNonNeg reports whether value `in` is provably >= 0 given the
	// dominating tests, descending through additions of non-negative
	// constants (x >= 0 && c >= 0 ⇒ x+c >= 0, exact in IEEE-754).
	var provedNonNeg func(in *mir.Instr, tests []domTest, depth int) bool
	provedNonNeg = func(in *mir.Instr, tests []domTest, depth int) bool {
		if depth > 4 {
			return false
		}
		if r := rangeOf(in); r.Lo >= 0 {
			return true
		}
		if in.Op == mir.OpConstant {
			return in.Num >= 0
		}
		if in.Op == mir.OpAdd {
			x, y := in.Operands[0], in.Operands[1]
			if y.Op == mir.OpConstant && y.Num >= 0 {
				return provedNonNeg(x, tests, depth+1)
			}
			if x.Op == mir.OpConstant && x.Num >= 0 {
				return provedNonNeg(y, tests, depth+1)
			}
			return false
		}
		for _, dt := range tests {
			if !dt.taken || dt.cond.Op != mir.OpCompare {
				continue
			}
			kind := mir.CompareKind(dt.cond.Aux)
			a0, a1 := dt.cond.Operands[0], dt.cond.Operands[1]
			switch {
			case kind == mir.CmpGe && a0 == in && a1.Op == mir.OpConstant && a1.Num >= 0,
				kind == mir.CmpGt && a0 == in && a1.Op == mir.OpConstant && a1.Num >= -1,
				kind == mir.CmpLe && a1 == in && a0.Op == mir.OpConstant && a0.Num >= 0,
				kind == mir.CmpLt && a1 == in && a0.Op == mir.OpConstant && a0.Num >= -1:
				return true
			}
		}
		return false
	}

	changed := false
	for _, b := range g.ReversePostorder() {
		var tests []domTest
		testsComputed := false
		for _, in := range b.Instrs {
			if in.Dead || in.Op != mir.OpBoundsCheck {
				continue
			}
			idx, length := in.Operands[0], in.Operands[1]
			r := rangeOf(idx)

			lowerOK := r.Lo >= 0
			upperOK := r.Sym == length && r.SymOff <= -1 && r.NonNaN
			if length.Op == mir.OpConstant && r.Hi <= length.Num-1 && r.NonNaN {
				upperOK = true
			}

			if !lowerOK || !upperOK {
				if !testsComputed {
					tests = dominatingTests(b)
					testsComputed = true
				}
				if !lowerOK {
					lowerOK = provedNonNeg(idx, tests, 0)
				}
				for _, dt := range tests {
					if !dt.taken || dt.cond.Op != mir.OpCompare {
						continue
					}
					kind := mir.CompareKind(dt.cond.Aux)
					a0, a1 := dt.cond.Operands[0], dt.cond.Operands[1]
					// Upper bound: idx < len with the same SSA values for
					// both sides — or, with the bug, idx and len merely
					// shape-congruent to the tested ones.
					idxMatch := func(x *mir.Instr) bool {
						return x == idx || (buggy && shapeEqual(x, idx))
					}
					if !upperOK && kind == mir.CmpLt && idxMatch(a0) {
						if a1 == length || (buggy && shapeEqual(a1, length)) {
							upperOK = true
						}
					}
					if !upperOK && kind == mir.CmpGt && idxMatch(a1) {
						if a0 == length || (buggy && shapeEqual(a0, length)) {
							upperOK = true
						}
					}
				}
			}
			if lowerOK && upperOK {
				in.Dead = true
				changed = true
			}
		}
	}
	if changed {
		g.RemoveDead()
	}
	return nil
}

package passes

import "github.com/jitbull/jitbull/internal/mir"

// foldTestsPass folds away branch conditions whose outcome is already
// known:
//
//   - constant conditions (also handled by PruneUnusedBranches, kept here
//     for conditions that become constant after other folds);
//   - conditions whose exact SSA value was already tested by a dominating
//     branch, so the outcome on this path is pinned.
//
// Injected bug (CVE-2019-11707 model): the dominating-test match uses
// shapeEqual instead of SSA identity, so a test of a *stale* value (e.g. an
// array length reloaded after a shrinking call) is folded as if it were the
// old one.
type foldTestsPass struct{}

func (foldTestsPass) Name() string      { return "FoldTests" }
func (foldTestsPass) Disableable() bool { return true }

func (foldTestsPass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()
	buggy := ctx.Bugs.Has(CVE201911707)
	changed := false
	for _, b := range g.ReversePostorder() {
		ctl := b.Control()
		if ctl == nil || ctl.Op != mir.OpTest {
			continue
		}
		cond := ctl.Operands[0]
		if cond.Op == mir.OpConstant {
			taken := 0
			if cond.Num == 0 || cond.Num != cond.Num {
				taken = 1
			}
			foldTestToGoto(b, taken)
			changed = true
			continue
		}
		for _, dt := range dominatingTests(b) {
			match := dt.cond == cond
			if !match && buggy {
				match = shapeEqual(dt.cond, cond)
			}
			if !match {
				continue
			}
			taken := 0
			if !dt.taken {
				taken = 1
			}
			foldTestToGoto(b, taken)
			changed = true
			break
		}
	}
	if changed {
		g.PruneUnreachable()
		g.BuildDominators()
	}
	return nil
}

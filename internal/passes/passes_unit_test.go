package passes

// Per-pass unit tests complementing the pipeline-level tests in
// passes_test.go.

import (
	"testing"

	"github.com/jitbull/jitbull/internal/mir"
)

// runOne executes a single pass (plus its analysis prerequisites) on g.
func runOne(t *testing.T, g *mir.Graph, name string, bugs BugSet) {
	t.Helper()
	ctx := &Context{Bugs: bugs, Ranges: map[*mir.Instr]Range{}}
	for _, p := range Pipeline() {
		switch p.Name() {
		case "AliasAnalysis", "RangeAnalysis", name:
			if err := p.Run(g, ctx); err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
		}
		if p.Name() == name {
			return
		}
	}
	t.Fatalf("pass %q not in pipeline", name)
}

func TestPruneUnusedBranchesFoldsConstants(t *testing.T) {
	g := build(t, "function f(x) { if (1) { return x; } return 0; }", "f")
	runOne(t, g, "PruneUnusedBranches", nil)
	if n := count(g, mir.OpTest); n != 0 {
		t.Fatalf("constant branch survived:\n%s", g)
	}
}

func TestFoldTestsDominatingSameSSA(t *testing.T) {
	// The same SSA condition tested twice: the inner test folds (soundly).
	g := build(t, `
function f(x) {
  var c = x < 10;
  if (c) {
    if (c) { return 1; }
    return 2;
  }
  return 3;
}`, "f")
	runOne(t, g, "FoldTests", nil)
	if n := count(g, mir.OpTest); n != 1 {
		t.Fatalf("tests = %d, want 1 (inner fold is sound: same SSA value)\n%s", n, g)
	}
}

func TestEliminateEmptyBlocksSplices(t *testing.T) {
	g := build(t, "function f(c) { var x = 0; if (c) { x = 1; } else { x = 2; } return x; }", "f")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	// After the full pipeline, no goto-only single-pred/single-succ blocks
	// should remain unless they separate critical edges.
	for _, b := range g.ReversePostorder() {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == mir.OpGoto &&
			len(b.Preds) == 1 && len(b.Succs) == 1 {
			p, s := b.Preds[0], b.Succs[0]
			if !(len(p.Succs) > 1 && len(s.Preds) > 1) {
				t.Fatalf("splicable empty block%d survived\n%s", b.ID, g)
			}
		}
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	g := build(t, `
function f(c, n) {
  var x = 0;
  for (var i = 0; i < n; i++) {
    if (c < i) { x += 1; }
  }
  return x;
}`, "f")
	runOne(t, g, "SplitCriticalEdges", nil)
	for _, b := range g.ReversePostorder() {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) >= 2 {
				t.Fatalf("critical edge block%d->block%d survived\n%s", b.ID, s.ID, g)
			}
		}
	}
}

func TestReorderHoistsConstants(t *testing.T) {
	g := build(t, "function f(x) { var a = x + 1; var b = a * 2; return b + 3; }", "f")
	runOne(t, g, "ReorderInstructions", nil)
	entry := g.Entry()
	sawNonConst := false
	for _, in := range entry.Instrs {
		if in.Op == mir.OpPhi {
			continue
		}
		if in.Op == mir.OpConstant {
			if sawNonConst {
				t.Fatalf("constant after non-constant:\n%s", g)
			}
		} else {
			sawNonConst = true
		}
	}
}

func TestKeepAliveAddedPerElementsAccess(t *testing.T) {
	g := build(t, "function f(a, b) { return a[0] + b[1]; }", "f", "a", "b")
	runOne(t, g, "AddKeepAliveInstructions", nil)
	if n := count(g, mir.OpKeepAlive); n != 2 {
		t.Fatalf("keepalive count = %d, want 2\n%s", n, g)
	}
}

func TestScalarReplacementForwardsStores(t *testing.T) {
	g := build(t, "function f(a, i, v) { a[i] = v; return a[i]; }", "f", "a")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(g, mir.OpLoadElement); n != 0 {
		t.Fatalf("store-to-load not forwarded (%d loads left)\n%s", n, g)
	}
}

func TestScalarReplacementRespectsClobbers(t *testing.T) {
	src := `
function g2(a) { a[0] = 9; }
function f(a, i, v) { a[i] = v; g2(a); return a[i]; }`
	g := build(t, src, "f", "a")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(g, mir.OpLoadElement); n != 1 {
		t.Fatalf("load forwarded across a call (%d loads)\n%s", n, g)
	}
}

func TestEffectiveAddressFoldsDisplacement(t *testing.T) {
	g := build(t, "function f(a, i) { return a[i + 2]; }", "f", "a")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	found := false
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op == mir.OpLoadElement && in.Aux == 2 {
			found = true
		}
	})
	if !found {
		t.Fatalf("displacement not folded\n%s", g)
	}
}

func TestBitopsRemovesOrZeroOnIntegralValue(t *testing.T) {
	// (x & 255) is integral and int32-ranged; the following |0 is an
	// identity and must go away.
	g := build(t, "function f(x) { return ((x & 255) | 0) + 1; }", "f")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(g, mir.OpBitOr); n != 0 {
		t.Fatalf("identity |0 kept\n%s", g)
	}
}

func TestBitopsKeepsOrZeroOnUnknownValue(t *testing.T) {
	// x|0 performs ToInt32 on an arbitrary double: removing it would be
	// unsound, so it must stay.
	g := build(t, "function f(x) { return (x | 0) + 1; }", "f")
	if err := Run(g, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(g, mir.OpBitOr); n != 1 {
		t.Fatalf("|0 on unknown value removed (unsound)\n%s", g)
	}
}

func TestSinkMovesComputationIntoBranch(t *testing.T) {
	g := build(t, `
function f(x, c) {
  var heavy = x * x + x;
  if (c) { return heavy; }
  return 0;
}`, "f")
	g.BuildDominators()
	if err := (sinkPass{}).Run(g, &Context{}); err != nil {
		t.Fatal(err)
	}
	// The mul must have moved out of the entry block.
	for _, in := range g.Entry().Instrs {
		if in.Op == mir.OpMul {
			t.Fatalf("mul not sunk into its use branch\n%s", g)
		}
	}
}

func TestSinkNeverMovesLoads(t *testing.T) {
	g := build(t, `
function f(a, c) {
  var v = a[0];
  if (c) { return v; }
  return 0;
}`, "f", "a")
	g.BuildDominators()
	ctx := &Context{}
	if err := (aliasAnalysisPass{}).Run(g, ctx); err != nil {
		t.Fatal(err)
	}
	entryLoads := count(g, mir.OpLoadElement)
	if err := (sinkPass{}).Run(g, ctx); err != nil {
		t.Fatal(err)
	}
	inEntry := 0
	for _, in := range g.Entry().Instrs {
		if in.Op == mir.OpLoadElement {
			inEntry++
		}
	}
	if entryLoads != 1 || inEntry != 1 {
		t.Fatalf("sound sink moved a memory load\n%s", g)
	}
}

func TestGVNKeepsGuardsWithDifferentIndexes(t *testing.T) {
	g := build(t, "function f(a, i, j) { return a[i] + a[j]; }", "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpBoundsCheck); n != 2 {
		t.Fatalf("checks with different indexes merged (%d left)\n%s", n, g)
	}
}

func TestRangeAnalysisInductionRanges(t *testing.T) {
	g := build(t, `
function f(n) {
  var s = 0;
  for (var i = 3; i < n; i++) { s += i; }
  return s;
}`, "f")
	ctx := &Context{Bugs: nil, Ranges: map[*mir.Instr]Range{}}
	g.BuildDominators()
	if err := (rangeAnalysisPass{}).Run(g, ctx); err != nil {
		t.Fatal(err)
	}
	found := false
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op == mir.OpPhi {
			if r, ok := ctx.Ranges[in]; ok && r.Lo == 3 && r.Sym != nil && r.SymOff == -1 {
				found = true
			}
		}
	})
	if !found {
		t.Fatalf("induction range [3, n-1] not computed\n%s", g)
	}
}

func TestAliasAnalysisDependencies(t *testing.T) {
	g := build(t, "function f(a, i, v) { var x = a[i]; a[i] = v; return x + a[i]; }", "f", "a")
	ctx := &Context{Bugs: nil, Ranges: map[*mir.Instr]Range{}}
	if err := (aliasAnalysisPass{}).Run(g, ctx); err != nil {
		t.Fatal(err)
	}
	var loads []*mir.Instr
	var store *mir.Instr
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		switch in.Op {
		case mir.OpLoadElement:
			loads = append(loads, in)
		case mir.OpStoreElement:
			store = in
		}
	})
	if len(loads) != 2 || store == nil {
		t.Fatalf("unexpected shape: %d loads", len(loads))
	}
	if loads[0].Dependency != nil {
		t.Fatalf("first load's dep = %v, want nil (no prior store)", loads[0].Dependency)
	}
	if loads[1].Dependency != store {
		t.Fatalf("second load's dep = %v, want the store", loads[1].Dependency)
	}
}

func TestDCEKeepsGuardsAndEffects(t *testing.T) {
	g := build(t, "function f(a, i, v) { var unused = a[i]; a[0] = v; return v; }", "f", "a")
	runOne(t, g, "EliminateDeadCode", nil)
	if n := count(g, mir.OpBoundsCheck); n < 2 {
		t.Fatalf("DCE removed a guard (%d checks left)\n%s", n, g)
	}
	if n := count(g, mir.OpStoreElement); n != 1 {
		t.Fatalf("DCE removed an effectful store\n%s", g)
	}
	// But the unused load itself dies.
	if n := count(g, mir.OpLoadElement); n != 0 {
		t.Fatalf("unused load kept\n%s", g)
	}
}

package passes

import "github.com/jitbull/jitbull/internal/mir"

// shapeEqual reports whether two instructions are congruent *ignoring
// memory dependencies*: same opcode/aux and shape-equal operands. SSA-equal
// instructions are trivially shape-equal.
//
// This predicate only exists to express the CVE-2019-11707 bug class:
// correct dominating-test reasoning requires SSA identity, because two
// loads of the same location are different values when a clobbering store
// (or call) sits between them. The buggy paths in FoldTests and
// BoundsCheckElimination use shapeEqual instead, treating a stale length as
// interchangeable with a fresh one.
func shapeEqual(a, b *mir.Instr) bool {
	return shapeEqualDepth(a, b, 8)
}

func shapeEqualDepth(a, b *mir.Instr, depth int) bool {
	if a == b {
		return true
	}
	if depth == 0 || a == nil || b == nil {
		return false
	}
	if a.Op != b.Op || a.Aux != b.Aux || a.Type != b.Type {
		return false
	}
	switch a.Op {
	case mir.OpConstant:
		return a.Num == b.Num || (a.Num != a.Num && b.Num != b.Num)
	case mir.OpPhi, mir.OpCall, mir.OpNewArray, mir.OpArrayPop, mir.OpArrayPush:
		// Value identity required: these produce fresh values per execution.
		return false
	}
	if len(a.Operands) != len(b.Operands) {
		return false
	}
	for i := range a.Operands {
		if !shapeEqualDepth(a.Operands[i], b.Operands[i], depth-1) {
			return false
		}
	}
	return true
}

// domTest is a condition known to hold on entry to a block: the Test
// instruction's condition, and whether the path goes through its true edge.
type domTest struct {
	cond  *mir.Instr
	taken bool // true edge vs false edge
}

// dominatingTests walks the immediate-dominator chain of b and collects
// every branch condition whose outcome is pinned on all paths reaching b.
// Requires dominators to be up to date and critical edges split.
func dominatingTests(b *mir.Block) []domTest {
	var out []domTest
	prev := b
	for d := b.Idom(); d != nil; prev, d = d, d.Idom() {
		ctl := d.Control()
		if ctl == nil || ctl.Op != mir.OpTest {
			continue
		}
		// prev is pinned to one edge only if it is the unique successor
		// block on that edge (single predecessor guarantees no merge).
		if len(prev.Preds) != 1 {
			continue
		}
		switch {
		case d.Succs[0] == prev:
			out = append(out, domTest{cond: ctl.Operands[0], taken: true})
		case d.Succs[1] == prev:
			out = append(out, domTest{cond: ctl.Operands[0], taken: false})
		}
	}
	return out
}

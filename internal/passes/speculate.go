package passes

import "github.com/jitbull/jitbull/internal/mir"

// typeSpeculationPass turns profiled calls into guarded speculative calls.
//
// The MIR builder marks every eligible call-assignment statement with an
// OpSnapshot frame map ([call, locals in slot order]); this pass upgrades
// the marked call to OpCallSpec when the profile says the callee returns a
// number and the surrounding state is reconstructible. OpCallSpec is a
// strict guard at runtime: it accepts exactly a Number return and
// deoptimizes to the interpreter — rebuilding the frame from the snapshot's
// slots — on anything else (where plain OpCall would silently coerce
// booleans/undefined to a number).
//
// Speculation only pays inside loops (the deopt exit is the expensive
// path), so the pass requires the call's block to sit at loop depth ≥ 1.
// When the pass is disabled — including by the policy's per-pass go/no-go
// verdict after a deopt storm — every call stays OpCall and the snapshots
// lower to nothing, which restores bit-identical unspeculated code.
type typeSpeculationPass struct{}

func (typeSpeculationPass) Name() string      { return "TypeSpeculation" }
func (typeSpeculationPass) Disableable() bool { return true }

func (typeSpeculationPass) Run(g *mir.Graph, ctx *Context) error {
	// Without speculation sites (Options.Speculate off, or nothing was
	// eligible) the pass has no work; skip the dominator rebuild so the
	// default pipeline pays nothing for the feature being compiled in.
	any := false
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpSnapshot {
				any = true
				break
			}
		}
		if any {
			break
		}
	}
	if !any {
		return nil
	}
	g.BuildDominators() // refresh LoopDepth
	forEachLive(g, func(b *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpSnapshot || len(in.Operands) == 0 {
			return
		}
		call := in.Operands[0]
		if call.Op != mir.OpCall || call.Type != mir.TypeDouble || call.Dead {
			return
		}
		if call.Block == nil || call.Block.LoopDepth < 1 {
			return
		}
		// Every slot in the frame map must have a reconstructible kind.
		for _, slot := range in.Operands[1:] {
			switch slot.Type {
			case mir.TypeDouble, mir.TypeBoolean, mir.TypeObject:
			default:
				return
			}
		}
		call.Op = mir.OpCallSpec
	})
	return nil
}

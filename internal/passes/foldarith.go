package passes

import (
	"math"

	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/value"
)

// foldArithPass performs constant folding and the NaN-safe algebraic
// identities (x-0, x*1, x/1). x+0 and x*0 are deliberately NOT folded:
// they are observable in IEEE-754 (-0+0 == +0, NaN*0 == NaN).
type foldArithPass struct{}

func (foldArithPass) Name() string      { return "FoldLinearArithConstants" }
func (foldArithPass) Disableable() bool { return true }

func (foldArithPass) Run(g *mir.Graph, _ *Context) error {
	changed := false
	for _, b := range g.ReversePostorder() {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			if folded, ok := foldInstr(in); ok {
				if folded == nil {
					// Replace with a fresh constant in the same block.
					c := g.NewInstr(mir.OpConstant, mir.TypeDouble)
					c.Num = evalConst(in)
					insertAfterPhis(b, c)
					folded = c
				}
				g.ReplaceUses(in, folded)
				in.Dead = true
				changed = true
			}
		}
	}
	if changed {
		g.RemoveDead()
	}
	return nil
}

// foldInstr decides whether in can be folded. It returns (replacement, true)
// where a nil replacement means "fold to the constant evalConst(in)".
func foldInstr(in *mir.Instr) (*mir.Instr, bool) {
	switch in.Op {
	case mir.OpAdd, mir.OpSub, mir.OpMul, mir.OpDiv, mir.OpMod, mir.OpPow,
		mir.OpBitAnd, mir.OpBitOr, mir.OpBitXor, mir.OpShl, mir.OpShr, mir.OpUshr:
		x, y := in.Operands[0], in.Operands[1]
		if x.Op == mir.OpConstant && y.Op == mir.OpConstant {
			return nil, true
		}
		if y.Op == mir.OpConstant {
			switch {
			case in.Op == mir.OpSub && y.Num == 0,
				in.Op == mir.OpMul && y.Num == 1,
				in.Op == mir.OpDiv && y.Num == 1:
				return x, true
			}
		}
		if x.Op == mir.OpConstant && x.Num == 1 && in.Op == mir.OpMul {
			return y, true
		}
		return nil, false
	case mir.OpNeg:
		if in.Operands[0].Op == mir.OpConstant {
			return nil, true
		}
		return nil, false
	case mir.OpCompare:
		x, y := in.Operands[0], in.Operands[1]
		if x.Op == mir.OpConstant && y.Op == mir.OpConstant {
			return nil, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// evalConst evaluates a foldable instruction over constant operands.
func evalConst(in *mir.Instr) float64 {
	get := func(i int) float64 { return in.Operands[i].Num }
	switch in.Op {
	case mir.OpAdd:
		return get(0) + get(1)
	case mir.OpSub:
		return get(0) - get(1)
	case mir.OpMul:
		return get(0) * get(1)
	case mir.OpDiv:
		return get(0) / get(1)
	case mir.OpMod:
		return value.Mod(get(0), get(1))
	case mir.OpPow:
		return math.Pow(get(0), get(1))
	case mir.OpBitAnd:
		return float64(value.ToInt32(get(0)) & value.ToInt32(get(1)))
	case mir.OpBitOr:
		return float64(value.ToInt32(get(0)) | value.ToInt32(get(1)))
	case mir.OpBitXor:
		return float64(value.ToInt32(get(0)) ^ value.ToInt32(get(1)))
	case mir.OpShl:
		return float64(value.ToInt32(get(0)) << (value.ToUint32(get(1)) & 31))
	case mir.OpShr:
		return float64(value.ToInt32(get(0)) >> (value.ToUint32(get(1)) & 31))
	case mir.OpUshr:
		return float64(value.ToUint32(get(0)) >> (value.ToUint32(get(1)) & 31))
	case mir.OpNeg:
		return -get(0)
	case mir.OpCompare:
		x, y := get(0), get(1)
		var res bool
		switch mir.CompareKind(in.Aux) {
		case mir.CmpLt:
			res = x < y
		case mir.CmpLe:
			res = x <= y
		case mir.CmpGt:
			res = x > y
		case mir.CmpGe:
			res = x >= y
		case mir.CmpEq:
			res = x == y
		case mir.CmpNe:
			res = x != y
		}
		if res {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// insertAfterPhis places in after the leading phis of b.
func insertAfterPhis(b *mir.Block, in *mir.Instr) {
	in.Block = b
	nPhis := len(b.Phis())
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[nPhis+1:], b.Instrs[nPhis:])
	b.Instrs[nPhis] = in
}

// bitopsPass removes identity bit operations (`x | 0`, `x & -1`, `x ^ 0`)
// when x is already known to be an int32-ranged integral value, so the
// implicit ToInt32 they perform is a no-op.
type bitopsPass struct{}

func (bitopsPass) Name() string      { return "RemoveUnnecessaryBitops" }
func (bitopsPass) Disableable() bool { return true }

func (bitopsPass) Run(g *mir.Graph, ctx *Context) error {
	if ctx.Ranges == nil {
		return nil
	}
	changed := false
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		var x, c *mir.Instr
		switch in.Op {
		case mir.OpBitOr, mir.OpBitXor, mir.OpBitAnd:
			x, c = in.Operands[0], in.Operands[1]
			if x.Op == mir.OpConstant {
				x, c = c, x
			}
		default:
			return
		}
		if c.Op != mir.OpConstant {
			return
		}
		identity := (in.Op == mir.OpBitOr && c.Num == 0) ||
			(in.Op == mir.OpBitXor && c.Num == 0) ||
			(in.Op == mir.OpBitAnd && c.Num == -1)
		if !identity {
			return
		}
		r, ok := ctx.Ranges[x]
		if !ok || !r.Integral || !r.NonNaN || r.Lo < -2147483648 || r.Hi > 2147483647 {
			return
		}
		g.ReplaceUses(in, x)
		in.Dead = true
		changed = true
	})
	if changed {
		g.RemoveDead()
	}
	return nil
}

// effAddrPass folds constant index displacements into element accesses:
// `loadelement(e, add(i, c))` becomes a load at base i with displacement c
// (stored in Aux), which the code generator emits as a base+offset
// addressing mode — IonMonkey's EffectiveAddressAnalysis.
type effAddrPass struct{}

func (effAddrPass) Name() string      { return "EffectiveAddressAnalysis" }
func (effAddrPass) Disableable() bool { return true }

func (effAddrPass) Run(g *mir.Graph, _ *Context) error {
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpLoadElement && in.Op != mir.OpStoreElement {
			return
		}
		idx := in.Operands[1]
		if idx.Op != mir.OpAdd {
			return
		}
		var base, c *mir.Instr
		switch {
		case idx.Operands[1].Op == mir.OpConstant:
			base, c = idx.Operands[0], idx.Operands[1]
		case idx.Operands[0].Op == mir.OpConstant:
			base, c = idx.Operands[1], idx.Operands[0]
		default:
			return
		}
		if c.Num != math.Trunc(c.Num) || math.Abs(c.Num) > 1<<20 {
			return
		}
		// base must dominate the access (it does: it dominates the add).
		in.Operands[1] = base
		in.Aux += int(c.Num)
	})
	return nil
}

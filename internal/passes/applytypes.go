package passes

import "github.com/jitbull/jitbull/internal/mir"

// applyTypesPass finalizes type specialization decisions made from
// profiling feedback. The sound version keeps every unbox guard: type
// feedback is a *speculation* and the guard is what makes it safe.
//
// Injected bug (CVE-2019-9791 model): parameters whose feedback was
// monomorphic `object` are treated as infallibly typed and their unbox
// guards are deleted, so JITed code consumes the raw (attacker-controlled)
// value as an object pointer — the type-confusion class.
type applyTypesPass struct{}

func (applyTypesPass) Name() string      { return "ApplyTypes" }
func (applyTypesPass) Disableable() bool { return false }

func (applyTypesPass) Run(g *mir.Graph, ctx *Context) error {
	// Sound work: fold unbox of an already-typed value (can appear after
	// inlining-like rewrites; a no-op guard).
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op == mir.OpUnbox && in.Operands[0].Type == in.Type {
			g.ReplaceUses(in, in.Operands[0])
			in.Dead = true
		}
	})

	if ctx.Bugs.Has(CVE20199791) {
		forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
			if in.Op == mir.OpUnbox && in.Type == mir.TypeObject &&
				in.Operands[0].Op == mir.OpParameter {
				// BUG: the guard is dropped; uses see the raw boxed value.
				g.ReplaceUses(in, in.Operands[0])
				in.Dead = true
			}
		})
	}
	g.RemoveDead()
	return nil
}

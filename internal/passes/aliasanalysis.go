package passes

import "github.com/jitbull/jitbull/internal/mir"

// aliasAnalysisPass attaches a memory Dependency to every load: the most
// recent instruction that may have written the categories the load reads
// (nil means "nothing since entry"). GVN keys loads on this dependency, so
// two loads of the same location separated by a clobber are never merged.
//
// The analysis is a forward data-flow over the CFG with one lattice cell
// per alias category. At join points where predecessors disagree, the cell
// is set to a per-block merge marker (a synthetic instruction), which is
// deliberately conservative.
//
// Injected bug (CVE-2019-9795 model): `setlength` is miscategorized as
// writing only the Element category, not ObjectFields. Length loads
// (initializedlength) read ObjectFields, so GVN happily merges a length
// loaded before a shrink with one loaded after it — the stale-length class.
type aliasAnalysisPass struct{}

func (aliasAnalysisPass) Name() string      { return "AliasAnalysis" }
func (aliasAnalysisPass) Disableable() bool { return false }

const numAliasCats = 3

func catIndexes(s mir.AliasSet) []int {
	var idx []int
	if s.Intersects(mir.AliasElement) {
		idx = append(idx, 0)
	}
	if s.Intersects(mir.AliasObjectFields) {
		idx = append(idx, 1)
	}
	if s.Intersects(mir.AliasGlobal) {
		idx = append(idx, 2)
	}
	return idx
}

// storeSet returns the categories in clobbers, applying active bugs.
func storeSet(in *mir.Instr, bugs BugSet) mir.AliasSet {
	s := in.Op.Stores()
	if in.Op == mir.OpSetLength && bugs.Has(CVE20199795) {
		// BUG: drop the ObjectFields category.
		s = mir.AliasElement
	}
	return s
}

func (aliasAnalysisPass) Run(g *mir.Graph, ctx *Context) error {
	type state [numAliasCats]*mir.Instr
	rpo := g.ReversePostorder()
	out := make(map[*mir.Block]state, len(rpo))
	markers := make(map[*mir.Block]*mir.Instr, len(rpo))
	marker := func(b *mir.Block) *mir.Instr {
		if m, ok := markers[b]; ok {
			return m
		}
		m := g.NewInstr(mir.OpNop, mir.TypeNone)
		m.Block = b // never placed in the instruction list; identity only
		markers[b] = m
		return m
	}

	// Iterate to a fixpoint (loops need a second visit).
	for iter := 0; iter < len(rpo)+2; iter++ {
		changed := false
		for _, b := range rpo {
			var in state
			for i, p := range b.Preds {
				ps := out[p]
				if i == 0 {
					in = ps
					continue
				}
				for c := 0; c < numAliasCats; c++ {
					if in[c] != ps[c] {
						in[c] = marker(b)
					}
				}
			}
			cur := in
			for _, instr := range b.Instrs {
				if instr.Dead {
					continue
				}
				if loads := instr.Op.Loads(); loads != mir.AliasNone {
					var dep *mir.Instr
					for _, c := range catIndexes(loads) {
						if cur[c] != nil {
							dep = cur[c]
						}
					}
					instr.Dependency = dep
				}
				if stores := storeSet(instr, ctx.Bugs); stores != mir.AliasNone {
					for _, c := range catIndexes(stores) {
						cur[c] = instr
					}
				}
			}
			if out[b] != cur {
				out[b] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

package passes

import "github.com/jitbull/jitbull/internal/mir"

// scalarReplPass implements the store-to-load forwarding subset of scalar
// replacement: a `loadelement(e, i)` whose alias dependency is a
// `storeelement(e, i, v)` to the very same elements pointer and index is
// replaced by v — the array cell has been "scalarized" for that use.
// (Full escape-analysis-driven allocation removal is out of scope; this is
// the part with visible effect on the loop bodies our corpus produces.)
type scalarReplPass struct{}

func (scalarReplPass) Name() string      { return "ScalarReplacement" }
func (scalarReplPass) Disableable() bool { return true }

func (scalarReplPass) Run(g *mir.Graph, _ *Context) error {
	changed := false
	forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpLoadElement {
			return
		}
		dep := in.Dependency
		if dep == nil || dep.Dead || dep.Op != mir.OpStoreElement {
			return
		}
		// Same elements pointer, same index SSA value, same displacement.
		if dep.Operands[0] != in.Operands[0] || dep.Operands[1] != in.Operands[1] || dep.Aux != in.Aux {
			return
		}
		// The store must dominate the load for the forward to be sound.
		if !dep.Block.Dominates(in.Block) {
			return
		}
		g.ReplaceUses(in, dep.Operands[2])
		in.Dead = true
		changed = true
	})
	if changed {
		g.RemoveDead()
	}
	return nil
}

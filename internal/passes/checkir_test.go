package passes

import (
	"errors"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/mir"
)

// killOperandPass deliberately breaks SSA: it marks as dead the first
// instruction that still has a use, leaving a live instruction reading a
// dead definition. The verifier must reject the graph right after this
// pass and attribute the breakage to it by name.
type killOperandPass struct{}

func (killOperandPass) Name() string      { return "KillUsedDefinition" }
func (killOperandPass) Disableable() bool { return true }
func (killOperandPass) Run(g *mir.Graph, _ *Context) error {
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			for _, op := range in.Operands {
				if !op.Dead {
					op.Dead = true
					return nil
				}
			}
		}
	}
	return nil
}

const checkIRSrc = `
function f(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + a[i] * 2; }
  return s;
}
`

// TestCheckIRAttributesBrokenPass proves the per-pass verifier catches a
// corrupting pass and names it: a pipeline with a bad pass spliced into the
// middle must fail with an *IRError carrying that pass's name, while the
// unmodified pipeline over the same graph passes CheckIR cleanly.
func TestCheckIRAttributesBrokenPass(t *testing.T) {
	g := build(t, checkIRSrc, "f", "a")
	if err := RunWith(g, RunOptions{CheckIR: true}); err != nil {
		t.Fatalf("sound pipeline failed CheckIR: %v", err)
	}

	// Splice the corrupting pass after the type/alias prologue so the graph
	// it breaks is a realistic mid-pipeline one.
	var pl []Pass
	for _, p := range Pipeline() {
		pl = append(pl, p)
		if p.Name() == "AliasAnalysis" {
			pl = append(pl, killOperandPass{})
		}
	}
	g = build(t, checkIRSrc, "f", "a")
	err := RunWith(g, RunOptions{CheckIR: true, Pipeline: pl})
	if err == nil {
		t.Fatal("corrupting pass went undetected")
	}
	var ir *IRError
	if !errors.As(err, &ir) {
		t.Fatalf("error is not an *IRError: %v", err)
	}
	if ir.Pass != "KillUsedDefinition" {
		t.Fatalf("verifier blamed pass %q, want KillUsedDefinition (issues: %v)", ir.Pass, ir.Issues)
	}
	if len(ir.Issues) == 0 || !strings.Contains(ir.Issues[0], "dead") {
		t.Errorf("issues do not mention the dead operand: %v", ir.Issues)
	}
}

// TestCheckIRRejectsBrokenInput verifies the input-graph check: a graph
// corrupted before the pipeline is rejected with an empty Pass attribution.
func TestCheckIRRejectsBrokenInput(t *testing.T) {
	g := build(t, checkIRSrc, "f", "a")
	if err := (killOperandPass{}).Run(g, nil); err != nil {
		t.Fatal(err)
	}
	err := RunWith(g, RunOptions{CheckIR: true})
	var ir *IRError
	if !errors.As(err, &ir) {
		t.Fatalf("broken input graph not rejected as *IRError: %v", err)
	}
	if ir.Pass != "" {
		t.Fatalf("input-graph rejection attributed to pass %q, want input graph", ir.Pass)
	}
}

package passes

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/value"
)

// build constructs MIR for function name in src. Param types are inferred
// from the parameter names: names starting with "a" (arr/a/b/...) of the
// explicit arrays list are Array, everything else Number.
func build(t *testing.T, src, name string, arrays ...string) *mir.Graph {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	astProg := parser.MustParse(src)
	var fd *ast.FuncDecl
	for _, f := range astProg.Funcs() {
		if f.Name == name {
			fd = f
		}
	}
	if fd == nil {
		t.Fatalf("function %q not found", name)
	}
	isArray := map[string]bool{}
	for _, a := range arrays {
		isArray[a] = true
	}
	types := make([]value.Type, len(fd.Params))
	for i, p := range fd.Params {
		if isArray[p] {
			types[i] = value.Array
		} else {
			types[i] = value.Number
		}
	}
	g, err := mirbuild.Build(prog, fd, mirbuild.Options{
		ParamTypes: types,
		GlobalType: func(int) value.Type { return value.Number },
		ReturnType: func(int) value.Type { return value.Number },
	})
	if err != nil {
		t.Fatalf("mirbuild: %v", err)
	}
	return g
}

func runPipeline(t *testing.T, g *mir.Graph, bugs BugSet, disabled map[string]bool) {
	t.Helper()
	if err := Run(g, bugs, disabled, nil); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
}

func count(g *mir.Graph, op mir.Op) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if !in.Dead && in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestPipelineNamesAndMandatory(t *testing.T) {
	names := PassNames()
	if len(names) != 23 {
		t.Fatalf("pipeline has %d passes, want 23: %v", len(names), names)
	}
	mandatory := []string{"SplitCriticalEdges", "PhiAnalysis", "ApplyTypes", "AliasAnalysis"}
	for _, m := range mandatory {
		if Disableable(m) {
			t.Errorf("%s must be mandatory", m)
		}
	}
	for _, d := range []string{"GVN", "LICM", "RangeAnalysis", "BoundsCheckElimination", "FoldTests", "Sink"} {
		if !Disableable(d) {
			t.Errorf("%s must be disableable", d)
		}
	}
}

func TestDisablingMandatoryPassFails(t *testing.T) {
	g := build(t, "function f(x) { return x + 1; }", "f")
	err := Run(g, nil, map[string]bool{"AliasAnalysis": true}, nil)
	if err == nil || !strings.Contains(err.Error(), "mandatory") {
		t.Fatalf("want mandatory-pass error, got %v", err)
	}
}

func TestGVNDedupsRedundantLoads(t *testing.T) {
	g := build(t, "function f(a, i) { return a[i] + a[i]; }", "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpInitializedLength); n != 1 {
		t.Errorf("initializedlength count = %d, want 1\n%s", n, g)
	}
	if n := count(g, mir.OpLoadElement); n != 1 {
		t.Errorf("loadelement count = %d, want 1\n%s", n, g)
	}
	if n := count(g, mir.OpBoundsCheck); n != 1 {
		t.Errorf("boundscheck count = %d, want 1\n%s", n, g)
	}
}

func TestGVNRespectsSetLengthClobber(t *testing.T) {
	g := build(t, "function f(a, i) { var x = a[i]; a.length = 4; return x + a[i]; }", "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpInitializedLength); n < 2 {
		t.Errorf("lengths merged across setlength: count = %d\n%s", n, g)
	}
	if n := count(g, mir.OpBoundsCheck); n != 2 {
		t.Errorf("boundscheck count = %d, want 2\n%s", n, g)
	}
}

func TestGVNRespectsCallClobber(t *testing.T) {
	src := `
function g(a) { a.length = 4; }
function f(a, i) { var x = a[i]; g(a); return x + a[i]; }`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpInitializedLength); n < 2 {
		t.Errorf("lengths merged across call: count = %d\n%s", n, g)
	}
}

func TestGVNBugMergesLengthsAcrossObjects(t *testing.T) {
	src := "function f(a, b, i, v) { var t = b[i]; a[i] = v; return t; }"
	sound := build(t, src, "f", "a", "b")
	runPipeline(t, sound, nil, nil)
	if n := count(sound, mir.OpBoundsCheck); n != 2 {
		t.Fatalf("sound pipeline: boundscheck = %d, want 2\n%s", n, sound)
	}
	buggy := build(t, src, "f", "a", "b")
	runPipeline(t, buggy, BugSet{CVE201717026: true}, nil)
	if n := count(buggy, mir.OpBoundsCheck); n != 1 {
		t.Fatalf("CVE-2019-17026 pipeline: boundscheck = %d, want 1 (check merged across arrays)\n%s", n, buggy)
	}
	if n := count(buggy, mir.OpInitializedLength); n != 1 {
		t.Fatalf("CVE-2019-17026 pipeline: initializedlength = %d, want 1\n%s", n, buggy)
	}
	// Disabling GVN neutralizes the bug even when it is active.
	fixed := build(t, src, "f", "a", "b")
	runPipeline(t, fixed, BugSet{CVE201717026: true}, map[string]bool{"GVN": true})
	if n := count(fixed, mir.OpBoundsCheck); n != 2 {
		t.Fatalf("GVN disabled: boundscheck = %d, want 2", n)
	}
}

func TestLICMHoistsInvariantLength(t *testing.T) {
	src := `
function f(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + a[0]; }
  return s;
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	// The length/elements loads must end up outside the loop.
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			if (in.Op == mir.OpInitializedLength || in.Op == mir.OpElements) && b.LoopDepth > 0 {
				t.Errorf("%s left inside loop\n%s", in.Op, g)
			}
		}
	}
}

func TestLICMRespectsCallInLoop(t *testing.T) {
	src := `
function shrink(a) { a.length = 4; }
function f(a, n, v) {
  for (var i = 0; i < n; i++) {
    if (i == 2) { shrink(a); }
    a[i] = v;
  }
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	inLoop := 0
	for _, b := range g.Blocks {
		if b.LoopDepth == 0 {
			continue
		}
		for _, in := range b.Instrs {
			if !in.Dead && in.Op == mir.OpInitializedLength {
				inLoop++
			}
		}
	}
	if inLoop == 0 {
		t.Fatalf("length load hoisted across a clobbering call\n%s", g)
	}
}

func TestLICMBugHoistsAcrossCall(t *testing.T) {
	src := `
function shrink(a) { a.length = 4; }
function f(a, n, v) {
  for (var i = 0; i < n; i++) {
    if (i == 2) { shrink(a); }
    a[i] = v;
  }
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, BugSet{CVE202026952: true}, nil)
	for _, b := range g.Blocks {
		if b.LoopDepth == 0 {
			continue
		}
		for _, in := range b.Instrs {
			if !in.Dead && in.Op == mir.OpInitializedLength {
				t.Fatalf("CVE-2020-26952: length load not hoisted\n%s", g)
			}
		}
	}
}

func TestInductionBCERemovesCheck(t *testing.T) {
	src := `
function f(a) {
  var s = 0;
  for (var i = 0; i < a.length; i++) { s = s + a[i]; }
  return s;
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpBoundsCheck); n != 0 {
		t.Fatalf("induction-proved check not removed (%d left)\n%s", n, g)
	}
}

func TestBCEKeepsCheckOnLeLoop(t *testing.T) {
	src := `
function f(a) {
  var s = 0;
  for (var i = 0; i <= a.length; i++) { s = s + a[i]; }
  return s;
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpBoundsCheck); n != 1 {
		t.Fatalf("sound BCE must keep the check on <= loop (%d left)\n%s", n, g)
	}
	buggy := build(t, src, "f", "a")
	runPipeline(t, buggy, BugSet{CVE20199813: true}, nil)
	if n := count(buggy, mir.OpBoundsCheck); n != 0 {
		t.Fatalf("CVE-2019-9813: off-by-one check not removed (%d left)\n%s", n, buggy)
	}
}

func TestBCEDominatingTest(t *testing.T) {
	src := `
function f(a, i, v) {
  if (i >= 0) {
    if (i < a.length) { a[i] = v; }
  }
}`
	g := build(t, src, "f", "a")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpBoundsCheck); n != 0 {
		t.Fatalf("branch-guarded check not removed (%d left)\n%s", n, g)
	}
}

func TestFoldTestsStaleLengthBug(t *testing.T) {
	// The second test nests inside the first one's true arm, so its
	// outcome is pinned by the (stale) first test when shape-matching.
	src := `
function shrink(a) { a.length = 4; }
function f(a, i, v) {
  if (i >= 0) {
    if (i < a.length) {
      a[i] = v;
      shrink(a);
      if (i < a.length) { a[i] = v; }
    }
  }
}`
	sound := build(t, src, "f", "a")
	runPipeline(t, sound, nil, nil)
	// Sound: both bounds checks may go away — each store is guarded by its
	// own branch on a *fresh* length, so safety lives in the branch tests,
	// which must all survive (i>=0, i<len #1, i<len #2).
	if n := count(sound, mir.OpTest); n != 3 {
		t.Fatalf("sound: test count = %d, want 3 (stale test must not fold)\n%s", n, sound)
	}

	buggy := build(t, src, "f", "a")
	runPipeline(t, buggy, BugSet{CVE201911707: true}, nil)
	if n := count(buggy, mir.OpTest); n != 2 {
		t.Fatalf("CVE-2019-11707: test count = %d, want 2 (second branch folded on stale length)\n%s", n, buggy)
	}
	if n := count(buggy, mir.OpBoundsCheck); n != 0 {
		t.Fatalf("CVE-2019-11707: checks left = %d, want 0\n%s", n, buggy)
	}
}

func TestApplyTypesBugRemovesUnbox(t *testing.T) {
	src := "function f(a, b, c) { return a[0] + b[0] + c[0]; }"
	sound := build(t, src, "f", "a", "b", "c")
	runPipeline(t, sound, nil, nil)
	if n := count(sound, mir.OpUnbox); n != 3 {
		t.Fatalf("sound: unbox = %d, want 3\n%s", n, sound)
	}
	buggy := build(t, src, "f", "a", "b", "c")
	runPipeline(t, buggy, BugSet{CVE20199791: true}, nil)
	if n := count(buggy, mir.OpUnbox); n != 0 {
		t.Fatalf("CVE-2019-9791: unbox = %d, want 0\n%s", n, buggy)
	}
}

func TestSinkBugLeaksMagic(t *testing.T) {
	src := `
function f(a, flag, idx) {
  var n = a.length;
  if (flag) { return n; }
  return a[idx];
}`
	sound := build(t, src, "f", "a")
	runPipeline(t, sound, nil, nil)
	if n := count(sound, mir.OpMagic); n != 0 {
		t.Fatalf("sound: magic leaked\n%s", sound)
	}
	buggy := build(t, src, "f", "a")
	runPipeline(t, buggy, BugSet{CVE20199792: true}, nil)
	if n := count(buggy, mir.OpMagic); n == 0 {
		t.Fatalf("CVE-2019-9792: no magic introduced\n%s", buggy)
	}
}

func TestAliasBugStaleLength(t *testing.T) {
	src := "function f(a, i, v) { var t = a[i]; a.length = 4; a[i] = v; return t; }"
	sound := build(t, src, "f", "a")
	runPipeline(t, sound, nil, nil)
	if n := count(sound, mir.OpBoundsCheck); n != 2 {
		t.Fatalf("sound: boundscheck = %d, want 2\n%s", n, sound)
	}
	buggy := build(t, src, "f", "a")
	runPipeline(t, buggy, BugSet{CVE20199795: true}, nil)
	if n := count(buggy, mir.OpBoundsCheck); n != 1 {
		t.Fatalf("CVE-2019-9795: boundscheck = %d, want 1 (stale length reused)\n%s", n, buggy)
	}
}

func TestDCERemovesUnusedArith(t *testing.T) {
	g := build(t, "function f(x) { var unused = x * 3 + 7; return x; }", "f")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpMul); n != 0 {
		t.Errorf("dead mul kept\n%s", g)
	}
}

func TestConstantFolding(t *testing.T) {
	g := build(t, "function f(x) { return x + (2 * 3 + 4); }", "f")
	runPipeline(t, g, nil, nil)
	if n := count(g, mir.OpMul); n != 0 {
		t.Errorf("constant mul not folded\n%s", g)
	}
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpConstant && in.Num == 10 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("folded constant 10 missing\n%s", g)
	}
}

func TestObserverSeesEveryPass(t *testing.T) {
	g := build(t, "function f(a, i) { return a[i]; }", "f", "a")
	var names []string
	var nonNil int
	err := Run(g, nil, map[string]bool{"Sink": true}, func(i int, name string, before, after *mir.Snapshot) {
		names = append(names, name)
		if before != nil && after != nil {
			nonNil++
		} else if name != "Sink" {
			t.Errorf("pass %s got nil snapshots", name)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 23 {
		t.Fatalf("observer saw %d passes, want 23", len(names))
	}
	if nonNil != 22 {
		t.Fatalf("non-nil snapshot pairs = %d, want 22", nonNil)
	}
}

func TestPipelineOutputAlwaysVerifies(t *testing.T) {
	srcs := []struct {
		src    string
		name   string
		arrays []string
	}{
		{"function f(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } return s; }", "f", []string{"a"}},
		{"function f(a, b, i) { if (i >= 0 && i < a.length) { a[i] = b[i % b.length]; } return a[0]; }", "f", []string{"a", "b"}},
		{"function f(n) { var x = 0; do { x += n; n--; } while (n > 0); return x; }", "f", nil},
		{"function f(a, n) { for (var i = 0; i < n; i++) { for (var j = 0; j < n; j++) { a[0] = i * j; } } }", "f", []string{"a"}},
		{"function f(x, y) { return (x < y ? x : y) + (x && y); }", "f", nil},
	}
	bugsets := []BugSet{nil, {CVE201717026: true}, {CVE201911707: true}, {CVE20199791: true},
		{CVE20199792: true}, {CVE20199795: true}, {CVE20199813: true}, {CVE202026952: true},
		{CVE201717026: true, CVE201911707: true, CVE20199813: true}}
	for _, s := range srcs {
		for _, bugs := range bugsets {
			g := build(t, s.src, s.name, s.arrays...)
			if err := Run(g, bugs, nil, nil); err != nil {
				t.Errorf("src %q bugs %v: %v", s.src, bugs, err)
			}
		}
	}
}

func TestDisabledPassesAreSkipped(t *testing.T) {
	src := "function f(a, i) { return a[i] + a[i]; }"
	g := build(t, src, "f", "a")
	disabled := map[string]bool{"GVN": true, "EliminateDeadCode": true, "LICM": true}
	runPipeline(t, g, nil, disabled)
	if n := count(g, mir.OpInitializedLength); n != 2 {
		t.Fatalf("GVN ran although disabled (il = %d)", n)
	}
}

package passes

import (
	"sort"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/mir"
)

// licmPass hoists loop-invariant instructions into the loop preheader. An
// instruction is hoistable when it is movable and non-guard, all of its
// operands are defined outside the loop, and — for memory loads — nothing
// inside the loop may clobber the categories it reads. Calls clobber
// everything, so a call anywhere in the loop pins every load.
//
// Injected bug (CVE-2020-26952 model): the in-loop clobber scan skips
// calls. A length loaded in a loop whose body calls a function that
// shrinks the array is hoisted, so every later iteration checks against
// the stale pre-shrink length.
type licmPass struct{}

func (licmPass) Name() string      { return "LICM" }
func (licmPass) Disableable() bool { return true }

func (licmPass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()
	ignoreCalls := ctx.Bugs.Has(CVE202026952)

	loops := g.LoopBodies()
	// Innermost first, so hoisted instructions can be hoisted again by the
	// enclosing loop.
	sort.Slice(loops, func(i, j int) bool { return len(loops[i].Body) < len(loops[j].Body) })

	for _, loop := range loops {
		pre := preheader(loop)
		if pre == nil {
			continue
		}
		// Clobber summary of the loop body. The CVE-2020-26952 facet only
		// mis-models calls with respect to object headers (length/elements),
		// not globals: the buggy engine still reloads globals after calls.
		var clobbers, clobbersBuggy mir.AliasSet
		for b := range loop.Body {
			for _, in := range b.Instrs {
				if in.Dead {
					continue
				}
				s := storeSet(in, ctx.Bugs)
				clobbers |= s
				if in.Op == mir.OpCall {
					s &^= mir.AliasObjectFields // BUG: call's header side effects ignored
				}
				clobbersBuggy |= s
			}
		}
		for changed := true; changed; {
			changed = false
			var toHoist []*mir.Instr
			for b := range loop.Body {
				for _, in := range b.Instrs {
					effective := clobbers
					if ignoreCalls {
						effective = clobbersBuggy
					}
					if !in.Dead && hoistable(in, loop, effective) {
						toHoist = append(toHoist, in)
					}
				}
			}
			// Deterministic order despite map iteration over loop.Body.
			sort.Slice(toHoist, func(i, j int) bool { return toHoist[i].ID < toHoist[j].ID })
			for _, in := range toHoist {
				removeFromBlock(in)
				pre.InsertBeforeControl(in)
				changed = true
			}
		}
	}
	return nil
}

// preheader returns the unique predecessor of the loop header outside the
// loop, or nil if the loop has no usable preheader.
func preheader(loop mir.Loop) *mir.Block {
	var pre *mir.Block
	for _, p := range loop.Header.Preds {
		if loop.Contains(p) {
			continue
		}
		if pre != nil {
			return nil // multiple entries
		}
		pre = p
	}
	return pre
}

func hoistable(in *mir.Instr, loop mir.Loop, clobbers mir.AliasSet) bool {
	if !in.Op.IsMovable() || in.Op.IsGuard() || in.Op == mir.OpPhi || in.Op.IsControl() {
		return false
	}
	if in.Op == mir.OpLoadElement {
		// An element load is only safe under its bounds check, and we do
		// not hoist guards; hoisting the load alone would move it above
		// the check.
		return false
	}
	if in.Op == mir.OpMathFunc && bytecode.Builtin(in.Aux) == bytecode.BMathRandom {
		return false
	}
	if in.Op.Loads().Intersects(clobbers) {
		return false
	}
	for _, op := range in.Operands {
		if loop.Contains(op.Block) {
			return false
		}
	}
	return true
}

func removeFromBlock(in *mir.Instr) {
	b := in.Block
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}

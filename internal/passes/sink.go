package passes

import (
	"sort"

	"github.com/jitbull/jitbull/internal/mir"
)

// sinkPass moves pure computations into the single branch that uses them,
// so the other path does not pay for them. The sound version only sinks
// non-load, non-guard, effect-free instructions whose uses all sit in one
// block dominated by the definition, and never into a deeper loop.
//
// Injected bug (CVE-2019-9792 model): a length load used by *both* arms of
// a branch is sunk into one arm anyway; the other arm's uses are patched
// with a `magic` placeholder — SpiderMonkey's JS_OPTIMIZED_OUT value
// leaking into compiled code. The magic value is large, so a bounds check
// comparing against it passes for any index.
type sinkPass struct{}

func (sinkPass) Name() string      { return "Sink" }
func (sinkPass) Disableable() bool { return true }

func (sinkPass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()

	// Sound sinking, iterated to a fixpoint so whole dependency chains
	// follow their single use into the branch.
	var moved bool
	for round := 0; round < 8; round++ {
		g.ComputeUses()
		type move struct {
			in     *mir.Instr
			target *mir.Block
		}
		var moves []move
		forEachLive(g, func(b *mir.Block, in *mir.Instr) {
			if !in.Op.IsMovable() || in.Op.IsGuard() || in.Op == mir.OpPhi ||
				in.Op == mir.OpConstant || in.Op.IsControl() || in.Op.Loads() != mir.AliasNone {
				return
			}
			if len(in.Uses) == 0 {
				return
			}
			target := in.Uses[0].Block
			for _, u := range in.Uses {
				if u.Block != target || u.Op == mir.OpPhi {
					return
				}
			}
			if target == b || !b.Dominates(target) || target.LoopDepth > b.LoopDepth {
				return
			}
			moves = append(moves, move{in: in, target: target})
		})
		roundMoved := false
		// Apply in reverse program order: when an operand and its user sink
		// to the same block, the operand is inserted last and therefore ends
		// up first (insertAfterPhis prepends), preserving def-before-use.
		for i := len(moves) - 1; i >= 0; i-- {
			m := moves[i]
			// Skip if an operand was itself queued to sink into a different
			// block (ordering could then break dominance); conservative.
			ok := true
			for _, op := range m.in.Operands {
				for _, m2 := range moves {
					if m2.in == op && m2.target != m.target {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			removeFromBlock(m.in)
			insertAfterPhis(m.target, m.in)
			roundMoved = true
		}
		if !roundMoved {
			break
		}
		moved = true
	}

	if ctx.Bugs.Has(CVE20199792) {
		g.ComputeUses()
		var candidates []*mir.Instr
		forEachLive(g, func(_ *mir.Block, in *mir.Instr) {
			if in.Op == mir.OpInitializedLength {
				candidates = append(candidates, in)
			}
		})
		for _, in := range candidates {
			blocks := map[*mir.Block][]*mir.Instr{}
			usedByCheck := false
			for _, u := range in.Uses {
				if u.Op == mir.OpPhi {
					blocks = nil
					break
				}
				if u.Op == mir.OpBoundsCheck {
					usedByCheck = true
				}
				blocks[u.Block] = append(blocks[u.Block], u)
			}
			// The bug manifests on guard data: only lengths feeding a
			// bounds check are mishandled (keeps the blast radius of the
			// injected bug faithful to the CVE's narrow trigger).
			if len(blocks) != 2 || !usedByCheck {
				continue
			}
			var bs []*mir.Block
			for blk := range blocks {
				bs = append(bs, blk)
			}
			sort.Slice(bs, func(i, j int) bool { return bs[i].ID < bs[j].ID })
			b1, b2 := bs[0], bs[1]
			// Only cross-branch pairs: neither dominates the other, and
			// both are dominated by the definition block.
			if b1.Dominates(b2) || b2.Dominates(b1) ||
				!in.Block.Dominates(b1) || !in.Block.Dominates(b2) || in.Block == b1 || in.Block == b2 {
				continue
			}
			// BUG: sink into b1; b2's uses get the magic placeholder.
			removeFromBlock(in)
			insertAfterPhis(b1, in)
			magic := g.NewInstr(mir.OpMagic, mir.TypeDouble)
			magic.Num = mir.MagicSentinel
			insertAfterPhis(b2, magic)
			for _, u := range blocks[b2] {
				for i, op := range u.Operands {
					if op == in {
						u.Operands[i] = magic
					}
				}
			}
			moved = true
		}
	}
	_ = moved
	return nil
}

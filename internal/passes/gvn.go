package passes

import (
	"fmt"
	"strings"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/mir"
)

// gvnPass is dominator-scoped global value numbering. An instruction is
// replaced by an earlier congruent one when the earlier one's block
// dominates it. Congruence keys include:
//
//   - opcode, aux payload and result type;
//   - operand identities (after canonicalization of earlier replacements);
//   - for memory loads, the alias-analysis Dependency, so loads separated
//     by a clobber are never congruent.
//
// Redundant guards (boundscheck, unbox, guardtype) are eliminated the same
// way: a dominating congruent guard already proved the property.
//
// Injected bug (CVE-2019-17026 / CVE-2019-9810 model — the paper notes the
// two CVEs share one root flaw): the congruence key of `initializedlength`
// omits its elements operand, i.e. lengths are keyed only by memory epoch,
// not by *which array* they belong to. A bounds check against array A then
// merges with one against array B, and GVN removes it — exactly the class
// of "incorrect dependency analysis leading to bounds check elimination"
// the paper describes for CVE-2019-17026.
type gvnPass struct{}

func (gvnPass) Name() string      { return "GVN" }
func (gvnPass) Disableable() bool { return true }

func (gvnPass) Run(g *mir.Graph, ctx *Context) error {
	g.BuildDominators()
	lengthKeyIgnoresObject := ctx.Bugs.Has(CVE201717026) || ctx.Bugs.Has(CVE20199810)

	table := map[string][]*mir.Instr{}
	changed := false
	for _, b := range g.ReversePostorder() {
		for _, in := range b.Instrs {
			if in.Dead || !gvnEligible(in) {
				continue
			}
			key := gvnKey(in, lengthKeyIgnoresObject)
			var leader *mir.Instr
			for _, cand := range table[key] {
				if cand.Dead {
					continue
				}
				if cand.Block.Dominates(b) {
					leader = cand
					break
				}
			}
			if leader != nil && leader != in {
				g.ReplaceUses(in, leader)
				in.Dead = true
				changed = true
				continue
			}
			table[key] = append(table[key], in)
		}
	}
	if changed {
		g.RemoveDead()
	}
	return nil
}

// gvnEligible reports whether the instruction participates in value
// numbering.
func gvnEligible(in *mir.Instr) bool {
	switch in.Op {
	case mir.OpPhi, mir.OpParameter, mir.OpCall, mir.OpNewArray,
		mir.OpArrayPush, mir.OpArrayPop, mir.OpStoreElement, mir.OpSetLength,
		mir.OpStoreGlobal, mir.OpKeepAlive, mir.OpNop, mir.OpMagic:
		return false
	case mir.OpMathFunc:
		// Math.random mutates RNG state: never congruent with itself.
		return bytecode.Builtin(in.Aux) != bytecode.BMathRandom
	}
	if in.Op.IsControl() {
		return false
	}
	return true
}

func gvnKey(in *mir.Instr, lengthKeyIgnoresObject bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%d", in.Op, in.Aux, in.Type)
	if in.Op == mir.OpConstant {
		fmt.Fprintf(&sb, "|c%x", in.Num)
		return sb.String()
	}
	if in.Op.Loads() != mir.AliasNone {
		if in.Dependency != nil {
			fmt.Fprintf(&sb, "|d%p", in.Dependency)
		} else {
			sb.WriteString("|d-")
		}
	}
	if in.Op == mir.OpInitializedLength && lengthKeyIgnoresObject {
		// BUG: the elements operand is not part of the key.
		return sb.String()
	}
	for _, op := range in.Operands {
		fmt.Fprintf(&sb, "|%d", op.ID)
	}
	return sb.String()
}

// Package compiler translates nanojs ASTs into bytecode (internal/bytecode)
// for the interpreter tier. The optimizing tier compiles the same AST into
// MIR via internal/mirbuild.
package compiler

import (
	"errors"
	"fmt"
	"math"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/token"
	"github.com/jitbull/jitbull/internal/value"
)

// Error is a compile-time error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("compile %s: %s", e.Pos, e.Msg) }

// mathBuiltins maps Math method names to builtin ids.
var mathBuiltins = map[string]bytecode.Builtin{
	"abs":    bytecode.BMathAbs,
	"floor":  bytecode.BMathFloor,
	"ceil":   bytecode.BMathCeil,
	"round":  bytecode.BMathRound,
	"sqrt":   bytecode.BMathSqrt,
	"min":    bytecode.BMathMin,
	"max":    bytecode.BMathMax,
	"pow":    bytecode.BMathPow,
	"sin":    bytecode.BMathSin,
	"cos":    bytecode.BMathCos,
	"tan":    bytecode.BMathTan,
	"atan":   bytecode.BMathAtan,
	"atan2":  bytecode.BMathAtan2,
	"exp":    bytecode.BMathExp,
	"log":    bytecode.BMathLog,
	"random": bytecode.BMathRandom,
}

// globalBuiltins maps free function names to builtin ids.
var globalBuiltins = map[string]bytecode.Builtin{
	"print":      bytecode.BPrint,
	"__addrof":   bytecode.BAddrOf,
	"__codebase": bytecode.BCodeBase,
}

// methodBuiltins maps method names (receiver pushed as first arg) to
// builtin ids.
var methodBuiltins = map[string]bytecode.Builtin{
	"push":       bytecode.BArrayPush,
	"pop":        bytecode.BArrayPop,
	"charCodeAt": bytecode.BCharCodeAt,
}

// Compile parses and compiles a nanojs source string.
func Compile(src string) (*bytecode.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	bp, err := CompileProgram(prog)
	if err != nil {
		return nil, err
	}
	bp.Source = src
	return bp, nil
}

// CompileProgram compiles a parsed program.
func CompileProgram(prog *ast.Program) (*bytecode.Program, error) {
	c := &compiler{
		prog:    &bytecode.Program{FuncByName: map[string]int{}},
		globals: map[string]int32{},
	}
	// Pass 1: function indices (main is 0) and top-level var names.
	c.prog.Funcs = append(c.prog.Funcs, &bytecode.Function{Name: "(main)", Index: 0})
	for _, fd := range prog.Funcs() {
		if _, dup := c.prog.FuncByName[fd.Name]; dup {
			c.errorf(fd.Pos(), "duplicate function %q", fd.Name)
			continue
		}
		idx := len(c.prog.Funcs)
		c.prog.FuncByName[fd.Name] = idx
		c.prog.Funcs = append(c.prog.Funcs, &bytecode.Function{Name: fd.Name, Index: idx})
	}
	for _, s := range prog.Stmts {
		if vd, ok := s.(*ast.VarDecl); ok {
			for _, name := range vd.Names {
				c.globalSlot(name)
			}
		}
	}
	// Pass 2: compile each function, then main.
	for _, fd := range prog.Funcs() {
		c.compileFunc(c.prog.Funcs[c.prog.FuncByName[fd.Name]], fd)
	}
	c.compileMain(prog)
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return c.prog, nil
}

type loopCtx struct {
	breaks    []int // pcs of jumps to patch to loop exit
	continues []int // pcs of jumps to patch to loop post/condition
}

type compiler struct {
	prog    *bytecode.Program
	globals map[string]int32
	errs    []error

	// Per-function state.
	fn       *bytecode.Function
	locals   map[string]int32
	consts   map[constKey]int32
	loops    []*loopCtx
	tempSlot int32 // lazily allocated scratch local; -1 when unallocated
	inMain   bool
	loopOrd  int // loop-statement ordinal (OSR site numbering)
	specOrd  int // speculation-site ordinal
}

type constKey struct {
	typ value.Type
	num float64
	str string
}

func (c *compiler) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *compiler) globalSlot(name string) int32 {
	if slot, ok := c.globals[name]; ok {
		return slot
	}
	slot := int32(len(c.prog.GlobalNames))
	c.prog.GlobalNames = append(c.prog.GlobalNames, name)
	c.globals[name] = slot
	return slot
}

func (c *compiler) emit(op bytecode.Op) int {
	c.fn.Code = append(c.fn.Code, bytecode.Instr{Op: op})
	return len(c.fn.Code) - 1
}

func (c *compiler) emitA(op bytecode.Op, a int32) int {
	c.fn.Code = append(c.fn.Code, bytecode.Instr{Op: op, A: a})
	return len(c.fn.Code) - 1
}

func (c *compiler) emitAB(op bytecode.Op, a, b int32) int {
	c.fn.Code = append(c.fn.Code, bytecode.Instr{Op: op, A: a, B: b})
	return len(c.fn.Code) - 1
}

func (c *compiler) patch(pc int) { c.fn.Code[pc].A = int32(len(c.fn.Code)) }

func (c *compiler) constIndex(v value.Value) int32 {
	key := constKey{typ: v.Type()}
	switch v.Type() {
	case value.Number, value.Boolean:
		key.num = v.AsNumber()
	case value.String:
		key.str = v.AsString()
	}
	if idx, ok := c.consts[key]; ok {
		return idx
	}
	idx := int32(len(c.fn.Consts))
	c.fn.Consts = append(c.fn.Consts, v)
	c.consts[key] = idx
	return idx
}

func (c *compiler) emitConst(v value.Value) { c.emitA(bytecode.OpConst, c.constIndex(v)) }

func (c *compiler) emitNumber(f float64) { c.emitConst(value.Num(f)) }

func (c *compiler) temp() int32 {
	if c.tempSlot < 0 {
		c.tempSlot = int32(c.fn.NumLocals)
		c.fn.NumLocals++
	}
	return c.tempSlot
}

func (c *compiler) beginFunc(fn *bytecode.Function, inMain bool) {
	c.fn = fn
	c.locals = map[string]int32{}
	c.consts = map[constKey]int32{}
	c.loops = nil
	c.tempSlot = -1
	c.inMain = inMain
	c.loopOrd = 0
	c.specOrd = 0
}

// specEligible reports whether assigning v to the named variable is a
// speculation site: a direct call to a declared nanojs function whose
// result lands in a function-local slot. The MIR builder applies the
// identical predicate at the identical traversal points, which keeps the
// two sides' ordinal numbering in lockstep without sharing any state.
func (c *compiler) specEligible(name string, v ast.Expr) bool {
	if c.inMain || v == nil {
		return false
	}
	if _, isLocal := c.locals[name]; !isLocal {
		return false
	}
	call, ok := v.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee, ok := call.Callee.(*ast.Ident)
	if !ok {
		return false
	}
	_, declared := c.prog.FuncByName[callee.Name]
	return declared
}

// recordSpecSite registers the speculation site that codegen just finished
// (the OpStoreLocal for the assigned local is the last emitted op).
func (c *compiler) recordSpecSite(name string) {
	ord := c.specOrd
	c.specOrd++
	c.fn.SpecSites = append(c.fn.SpecSites, bytecode.SpecSite{
		Ordinal:   ord,
		ResumePC:  len(c.fn.Code),
		StoreSlot: int(c.locals[name]),
	})
}

func (c *compiler) compileFunc(fn *bytecode.Function, fd *ast.FuncDecl) {
	c.beginFunc(fn, false)
	fn.NumParams = len(fd.Params)
	for i, p := range fd.Params {
		c.locals[p] = int32(i)
	}
	fn.NumLocals = len(fd.Params)
	// Hoist var declarations to function scope.
	ast.Walk(fd.Body, func(n ast.Node) bool {
		if vd, ok := n.(*ast.VarDecl); ok {
			for _, name := range vd.Names {
				if _, exists := c.locals[name]; !exists {
					c.locals[name] = int32(fn.NumLocals)
					fn.NumLocals++
				}
			}
		}
		return true
	})
	c.compileStmt(fd.Body)
	c.emit(bytecode.OpReturnUndef)
}

func (c *compiler) compileMain(prog *ast.Program) {
	c.beginFunc(c.prog.Funcs[0], true)
	for _, s := range prog.Stmts {
		if _, isFn := s.(*ast.FuncDecl); isFn {
			continue
		}
		c.compileStmt(s)
	}
	c.emit(bytecode.OpReturnUndef)
}

// ---- Statements ----

func (c *compiler) compileStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.VarDecl:
		c.compileVarDecl(s)
	case *ast.ExprStmt:
		c.compileExprForEffect(s.X)
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			c.compileStmt(st)
		}
	case *ast.IfStmt:
		c.compileExpr(s.Cond)
		jElse := c.emitA(bytecode.OpJumpIfFalse, 0)
		c.compileStmt(s.Then)
		if s.Else != nil {
			jEnd := c.emitA(bytecode.OpJump, 0)
			c.patch(jElse)
			c.compileStmt(s.Else)
			c.patch(jEnd)
		} else {
			c.patch(jElse)
		}
	case *ast.WhileStmt:
		top := len(c.fn.Code)
		c.fn.OSRSites = append(c.fn.OSRSites, bytecode.OSRSite{Ordinal: c.loopOrd, HeaderPC: top})
		c.loopOrd++
		c.compileExpr(s.Cond)
		jExit := c.emitA(bytecode.OpJumpIfFalse, 0)
		c.pushLoop()
		c.compileStmt(s.Body)
		c.patchContinues(top)
		c.emitA(bytecode.OpJump, int32(top))
		c.patch(jExit)
		c.patchBreaks()
	case *ast.DoWhileStmt:
		// Do-while loops consume a loop ordinal (the MIR builder numbers
		// every loop statement) but get no OSR site: their back edge is a
		// conditional jump, not the unconditional OpJump the interpreter's
		// OSR hook watches.
		c.loopOrd++
		top := len(c.fn.Code)
		c.pushLoop()
		c.compileStmt(s.Body)
		condPC := len(c.fn.Code)
		c.patchContinues(condPC)
		c.compileExpr(s.Cond)
		c.emitA(bytecode.OpJumpIfTrue, int32(top))
		c.patchBreaks()
	case *ast.ForStmt:
		if s.Init != nil {
			c.compileStmt(s.Init)
		}
		top := len(c.fn.Code)
		c.fn.OSRSites = append(c.fn.OSRSites, bytecode.OSRSite{Ordinal: c.loopOrd, HeaderPC: top})
		c.loopOrd++
		var jExit int = -1
		if s.Cond != nil {
			c.compileExpr(s.Cond)
			jExit = c.emitA(bytecode.OpJumpIfFalse, 0)
		}
		c.pushLoop()
		c.compileStmt(s.Body)
		postPC := len(c.fn.Code)
		c.patchContinues(postPC)
		if s.Post != nil {
			c.compileExprForEffect(s.Post)
		}
		c.emitA(bytecode.OpJump, int32(top))
		if jExit >= 0 {
			c.patch(jExit)
		}
		c.patchBreaks()
	case *ast.BreakStmt:
		if len(c.loops) == 0 {
			c.errorf(s.Pos(), "break outside loop")
			return
		}
		lc := c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emitA(bytecode.OpJump, 0))
	case *ast.ContinueStmt:
		if len(c.loops) == 0 {
			c.errorf(s.Pos(), "continue outside loop")
			return
		}
		lc := c.loops[len(c.loops)-1]
		lc.continues = append(lc.continues, c.emitA(bytecode.OpJump, 0))
	case *ast.ReturnStmt:
		if s.Value != nil {
			c.compileExpr(s.Value)
			c.emit(bytecode.OpReturn)
		} else {
			c.emit(bytecode.OpReturnUndef)
		}
	case *ast.FuncDecl:
		c.errorf(s.Pos(), "nested function declarations are not supported")
	default:
		c.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

func (c *compiler) pushLoop() { c.loops = append(c.loops, &loopCtx{}) }

func (c *compiler) patchBreaks() {
	lc := c.loops[len(c.loops)-1]
	for _, pc := range lc.breaks {
		c.patch(pc)
	}
	c.loops = c.loops[:len(c.loops)-1]
}

func (c *compiler) patchContinues(target int) {
	lc := c.loops[len(c.loops)-1]
	for _, pc := range lc.continues {
		c.fn.Code[pc].A = int32(target)
	}
}

func (c *compiler) compileVarDecl(d *ast.VarDecl) {
	for i, name := range d.Names {
		if d.Inits[i] == nil {
			continue
		}
		c.compileExpr(d.Inits[i])
		c.emitStore(name)
		if c.specEligible(name, d.Inits[i]) {
			c.recordSpecSite(name)
		}
	}
}

// emitStore stores the top of stack into the named variable (popping it).
func (c *compiler) emitStore(name string) {
	if !c.inMain {
		if slot, ok := c.locals[name]; ok {
			c.emitA(bytecode.OpStoreLocal, slot)
			return
		}
	}
	c.emitA(bytecode.OpStoreGlobal, c.globalSlot(name))
}

func (c *compiler) emitLoad(pos token.Pos, name string) {
	if !c.inMain {
		if slot, ok := c.locals[name]; ok {
			c.emitA(bytecode.OpLoadLocal, slot)
			return
		}
	}
	if _, isFn := c.prog.FuncByName[name]; isFn {
		c.errorf(pos, "function %q used as a value (nanojs functions are not first-class)", name)
	}
	c.emitA(bytecode.OpLoadGlobal, c.globalSlot(name))
}

// ---- Expressions ----

// compileExprForEffect compiles x discarding its result, avoiding
// dup/pop churn for the common statement forms.
func (c *compiler) compileExprForEffect(x ast.Expr) {
	switch x := x.(type) {
	case *ast.AssignExpr:
		c.compileAssign(x, false)
		// Statement-level `x = f(...)` with a direct call: a speculation
		// site (nested assignment expressions are deliberately not —
		// deoptimization resumes at statement boundaries only).
		if target, ok := x.Target.(*ast.Ident); ok && x.Op == token.Assign && c.specEligible(target.Name, x.Value) {
			c.recordSpecSite(target.Name)
		}
	case *ast.UpdateExpr:
		c.compileUpdate(x, false)
	default:
		c.compileExpr(x)
		c.emit(bytecode.OpPop)
	}
}

func (c *compiler) compileExpr(x ast.Expr) {
	switch x := x.(type) {
	case *ast.NumberLit:
		c.emitNumber(x.Value)
	case *ast.StringLit:
		c.emitConst(value.Str(x.Value))
	case *ast.BoolLit:
		if x.Value {
			c.emit(bytecode.OpTrue)
		} else {
			c.emit(bytecode.OpFalse)
		}
	case *ast.NullLit:
		c.emit(bytecode.OpNull)
	case *ast.UndefinedLit:
		c.emit(bytecode.OpUndef)
	case *ast.Ident:
		c.emitLoad(x.Pos(), x.Name)
	case *ast.ArrayLit:
		for _, e := range x.Elems {
			c.compileExpr(e)
		}
		c.emitA(bytecode.OpArrayLit, int32(len(x.Elems)))
	case *ast.NewArray:
		c.compileExpr(x.Len)
		c.emit(bytecode.OpNewArray)
	case *ast.IndexExpr:
		c.compileExpr(x.X)
		c.compileExpr(x.Index)
		c.emit(bytecode.OpGetElem)
	case *ast.MemberExpr:
		c.compileMember(x)
	case *ast.CallExpr:
		c.compileCall(x)
	case *ast.UnaryExpr:
		c.compileUnary(x)
	case *ast.BinaryExpr:
		c.compileExpr(x.X)
		c.compileExpr(x.Y)
		c.emitBinary(x.Pos(), x.Op)
	case *ast.LogicalExpr:
		c.compileExpr(x.X)
		c.emit(bytecode.OpDup)
		var j int
		if x.Op == token.AmpAmp {
			j = c.emitA(bytecode.OpJumpIfFalse, 0)
		} else {
			j = c.emitA(bytecode.OpJumpIfTrue, 0)
		}
		c.emit(bytecode.OpPop)
		c.compileExpr(x.Y)
		c.patch(j)
	case *ast.CondExpr:
		c.compileExpr(x.Cond)
		jElse := c.emitA(bytecode.OpJumpIfFalse, 0)
		c.compileExpr(x.Then)
		jEnd := c.emitA(bytecode.OpJump, 0)
		c.patch(jElse)
		c.compileExpr(x.Else)
		c.patch(jEnd)
	case *ast.AssignExpr:
		c.compileAssign(x, true)
	case *ast.UpdateExpr:
		c.compileUpdate(x, true)
	default:
		c.errorf(x.Pos(), "unsupported expression %T", x)
		c.emit(bytecode.OpUndef)
	}
}

func (c *compiler) compileMember(x *ast.MemberExpr) {
	if base, ok := x.X.(*ast.Ident); ok && base.Name == "Math" {
		switch x.Name {
		case "PI":
			c.emitNumber(math.Pi)
			return
		case "E":
			c.emitNumber(math.E)
			return
		}
		c.errorf(x.Pos(), "unknown Math property %q (did you mean to call Math.%s(...)?)", x.Name, x.Name)
		c.emit(bytecode.OpUndef)
		return
	}
	if x.Name == "length" {
		c.compileExpr(x.X)
		c.emit(bytecode.OpGetLength)
		return
	}
	c.errorf(x.Pos(), "unknown property %q", x.Name)
	c.emit(bytecode.OpUndef)
}

func (c *compiler) compileCall(x *ast.CallExpr) {
	switch callee := x.Callee.(type) {
	case *ast.Ident:
		if b, ok := globalBuiltins[callee.Name]; ok {
			for _, a := range x.Args {
				c.compileExpr(a)
			}
			c.emitAB(bytecode.OpCallBuiltin, int32(b), int32(len(x.Args)))
			return
		}
		idx, ok := c.prog.FuncByName[callee.Name]
		if !ok {
			c.errorf(callee.Pos(), "call to undeclared function %q", callee.Name)
			c.emit(bytecode.OpUndef)
			return
		}
		for _, a := range x.Args {
			c.compileExpr(a)
		}
		c.emitAB(bytecode.OpCall, int32(idx), int32(len(x.Args)))
	case *ast.MemberExpr:
		if base, ok := callee.X.(*ast.Ident); ok {
			if base.Name == "Math" {
				b, ok := mathBuiltins[callee.Name]
				if !ok {
					c.errorf(callee.Pos(), "unknown Math function %q", callee.Name)
					c.emit(bytecode.OpUndef)
					return
				}
				for _, a := range x.Args {
					c.compileExpr(a)
				}
				c.emitAB(bytecode.OpCallBuiltin, int32(b), int32(len(x.Args)))
				return
			}
			if base.Name == "String" && callee.Name == "fromCharCode" {
				for _, a := range x.Args {
					c.compileExpr(a)
				}
				c.emitAB(bytecode.OpCallBuiltin, int32(bytecode.BFromCharCode), int32(len(x.Args)))
				return
			}
		}
		b, ok := methodBuiltins[callee.Name]
		if !ok {
			c.errorf(callee.Pos(), "unknown method %q", callee.Name)
			c.emit(bytecode.OpUndef)
			return
		}
		c.compileExpr(callee.X) // receiver as first argument
		for _, a := range x.Args {
			c.compileExpr(a)
		}
		c.emitAB(bytecode.OpCallBuiltin, int32(b), int32(len(x.Args)+1))
	default:
		c.errorf(x.Pos(), "invalid call target %T", x.Callee)
		c.emit(bytecode.OpUndef)
	}
}

func (c *compiler) compileUnary(x *ast.UnaryExpr) {
	c.compileExpr(x.X)
	switch x.Op {
	case token.Minus:
		c.emit(bytecode.OpNeg)
	case token.Bang:
		c.emit(bytecode.OpNot)
	case token.Tilde:
		c.emit(bytecode.OpBitNot)
	case token.Typeof:
		c.emit(bytecode.OpTypeof)
	default:
		c.errorf(x.Pos(), "unsupported unary operator %s", x.Op)
	}
}

func (c *compiler) emitBinary(pos token.Pos, op token.Kind) {
	switch op {
	case token.Plus:
		c.emit(bytecode.OpAdd)
	case token.Minus:
		c.emit(bytecode.OpSub)
	case token.Star:
		c.emit(bytecode.OpMul)
	case token.Slash:
		c.emit(bytecode.OpDiv)
	case token.Percent:
		c.emit(bytecode.OpMod)
	case token.StarStar:
		c.emit(bytecode.OpPow)
	case token.Amp:
		c.emit(bytecode.OpBitAnd)
	case token.Pipe:
		c.emit(bytecode.OpBitOr)
	case token.Caret:
		c.emit(bytecode.OpBitXor)
	case token.Shl:
		c.emit(bytecode.OpShl)
	case token.Shr:
		c.emit(bytecode.OpShr)
	case token.Ushr:
		c.emit(bytecode.OpUshr)
	case token.Eq:
		c.emit(bytecode.OpEq)
	case token.NotEq:
		c.emit(bytecode.OpNe)
	case token.StrictEq:
		c.emit(bytecode.OpStrictEq)
	case token.StrictNe:
		c.emit(bytecode.OpStrictNe)
	case token.Lt:
		c.emit(bytecode.OpLt)
	case token.Le:
		c.emit(bytecode.OpLe)
	case token.Gt:
		c.emit(bytecode.OpGt)
	case token.Ge:
		c.emit(bytecode.OpGe)
	default:
		c.errorf(pos, "unsupported binary operator %s", op)
	}
}

// compileAssign compiles target op= value; if wantValue, the assigned value
// is left on the stack.
func (c *compiler) compileAssign(x *ast.AssignExpr, wantValue bool) {
	switch target := x.Target.(type) {
	case *ast.Ident:
		if x.Op == token.Assign {
			c.compileExpr(x.Value)
		} else {
			c.emitLoad(target.Pos(), target.Name)
			c.compileExpr(x.Value)
			c.emitBinary(x.Pos(), x.Op.CompoundOp())
		}
		if wantValue {
			c.emit(bytecode.OpDup)
		}
		c.emitStore(target.Name)
	case *ast.IndexExpr:
		c.compileExpr(target.X)
		c.compileExpr(target.Index)
		if x.Op == token.Assign {
			c.compileExpr(x.Value)
		} else {
			c.emit(bytecode.OpDup2)
			c.emit(bytecode.OpGetElem)
			c.compileExpr(x.Value)
			c.emitBinary(x.Pos(), x.Op.CompoundOp())
		}
		c.emit(bytecode.OpSetElem)
		if !wantValue {
			c.emit(bytecode.OpPop)
		}
	case *ast.MemberExpr:
		if target.Name != "length" {
			c.errorf(target.Pos(), "cannot assign to property %q", target.Name)
			return
		}
		c.compileExpr(target.X)
		if x.Op == token.Assign {
			c.compileExpr(x.Value)
		} else {
			c.emit(bytecode.OpDup)
			c.emit(bytecode.OpGetLength)
			c.compileExpr(x.Value)
			c.emitBinary(x.Pos(), x.Op.CompoundOp())
		}
		c.emit(bytecode.OpSetLength)
		if !wantValue {
			c.emit(bytecode.OpPop)
		}
	default:
		c.errorf(x.Pos(), "invalid assignment target %T", x.Target)
	}
}

// compileUpdate compiles ++/--; if wantValue the expression result (old
// value for postfix, new value for prefix) is left on the stack.
func (c *compiler) compileUpdate(x *ast.UpdateExpr, wantValue bool) {
	delta := bytecode.OpAdd
	if x.Op == token.MinusMinus {
		delta = bytecode.OpSub
	}
	switch target := x.Target.(type) {
	case *ast.Ident:
		c.emitLoad(target.Pos(), target.Name)
		if wantValue && !x.Prefix {
			c.emit(bytecode.OpDup) // old value as result
		}
		c.emitNumber(1)
		c.emit(delta)
		if wantValue && x.Prefix {
			c.emit(bytecode.OpDup) // new value as result
		}
		c.emitStore(target.Name)
	case *ast.IndexExpr:
		c.compileExpr(target.X)
		c.compileExpr(target.Index)
		c.emit(bytecode.OpDup2)
		c.emit(bytecode.OpGetElem)
		if wantValue && !x.Prefix {
			// Save the old value in the scratch local.
			tmp := c.temp()
			c.emit(bytecode.OpDup)
			c.emitA(bytecode.OpStoreLocal, tmp)
		}
		c.emitNumber(1)
		c.emit(delta)
		c.emit(bytecode.OpSetElem)
		if !wantValue {
			c.emit(bytecode.OpPop)
			return
		}
		if !x.Prefix {
			c.emit(bytecode.OpPop)
			c.emitA(bytecode.OpLoadLocal, c.temp())
		}
	default:
		c.errorf(x.Pos(), "invalid update target %T", x.Target)
	}
}

package compiler

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/bytecode"
)

func compileOK(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestFunctionIndexing(t *testing.T) {
	p := compileOK(t, "function a() {} function b() {} a(); b();")
	if len(p.Funcs) != 3 {
		t.Fatalf("funcs = %d, want 3 (main + 2)", len(p.Funcs))
	}
	if p.FuncByName["a"] != 1 || p.FuncByName["b"] != 2 {
		t.Fatalf("indexes: %v", p.FuncByName)
	}
	if p.Main().Name != "(main)" {
		t.Fatal("main missing")
	}
}

func TestGlobalSlots(t *testing.T) {
	p := compileOK(t, "var x = 1; var y = 2; z = 3;")
	want := map[string]bool{"x": true, "y": true, "z": true}
	for _, n := range p.GlobalNames {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing globals %v in %v", want, p.GlobalNames)
	}
}

func TestLocalsAndParams(t *testing.T) {
	p := compileOK(t, "function f(a, b) { var c = a; var d = b; return c + d; }")
	f := p.Funcs[1]
	if f.NumParams != 2 {
		t.Fatalf("params = %d", f.NumParams)
	}
	if f.NumLocals != 4 {
		t.Fatalf("locals = %d, want 4", f.NumLocals)
	}
}

func TestHoisting(t *testing.T) {
	// `var` in nested blocks is function-scoped.
	p := compileOK(t, "function f(c) { if (c) { var inner = 1; } return inner; }")
	f := p.Funcs[1]
	if f.NumLocals != 2 {
		t.Fatalf("locals = %d, want 2 (c + inner)", f.NumLocals)
	}
	// The read of `inner` must be a local load, not a global one.
	for _, in := range f.Code {
		if in.Op == bytecode.OpLoadGlobal {
			t.Fatal("hoisted var compiled as global")
		}
	}
}

func TestConstPoolDedup(t *testing.T) {
	p := compileOK(t, "function f() { return 7 + 7 + 7; }")
	f := p.Funcs[1]
	if len(f.Consts) != 1 {
		t.Fatalf("consts = %d, want 1 (deduped)", len(f.Consts))
	}
}

func TestStatementModeAvoidsDupPop(t *testing.T) {
	// `x = 1;` as a statement should not emit Dup (expression-value mode).
	p := compileOK(t, "function f() { var x = 0; x = 1; x += 2; }")
	f := p.Funcs[1]
	for _, in := range f.Code {
		if in.Op == bytecode.OpDup {
			t.Fatalf("statement-mode assignment emitted dup:\n%s", f.Disassemble())
		}
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"nope();", "undeclared function"},
		{"function f() {} var g = f;", "not first-class"},
		{"break;", "break outside loop"},
		{"continue;", "continue outside loop"},
		{"function f() { function g() {} }", "nested function"},
		{"function f() {} function f() {}", "duplicate function"},
		{"var x = Math.nothere(1);", "unknown Math function"},
		{"var x = [1].bogus();", `unknown method "bogus"`},
		{"var x = ({}).length;", ""}, // parse error is fine too
	}
	for _, tt := range tests {
		_, err := Compile(tt.src)
		if err == nil {
			t.Errorf("%q: expected error", tt.src)
			continue
		}
		if tt.want != "" && !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%q: error %q does not mention %q", tt.src, err, tt.want)
		}
	}
}

func TestBuiltinResolution(t *testing.T) {
	p := compileOK(t, `
var a = [1];
a.push(2);
a.pop();
print("x");
var c = "s".charCodeAt(0);
var f = Math.floor(1.5);
var addr = __addrof(a);
`)
	var builtins []bytecode.Builtin
	for _, in := range p.Main().Code {
		if in.Op == bytecode.OpCallBuiltin {
			builtins = append(builtins, bytecode.Builtin(in.A))
		}
	}
	want := []bytecode.Builtin{
		bytecode.BArrayPush, bytecode.BArrayPop, bytecode.BPrint,
		bytecode.BCharCodeAt, bytecode.BMathFloor, bytecode.BAddrOf,
	}
	if len(builtins) != len(want) {
		t.Fatalf("builtins = %v, want %v", builtins, want)
	}
	for i := range want {
		if builtins[i] != want[i] {
			t.Errorf("builtin %d = %v, want %v", i, builtins[i], want[i])
		}
	}
}

func TestLoopJumpTargetsInRange(t *testing.T) {
	p := compileOK(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    if (i == 2) { continue; }
    if (i == 5) { break; }
    while (s < 10) { s++; }
    do { s--; } while (s > 5);
  }
  return s;
}`)
	f := p.Funcs[1]
	for pc, in := range f.Code {
		switch in.Op {
		case bytecode.OpJump, bytecode.OpJumpIfFalse, bytecode.OpJumpIfTrue:
			if in.A < 0 || int(in.A) > len(f.Code) {
				t.Fatalf("pc %d: jump target %d out of range", pc, in.A)
			}
		}
	}
}

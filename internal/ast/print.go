package ast

import (
	"fmt"
	"io"
	"strings"

	"github.com/jitbull/jitbull/internal/token"
)

// PrintConfig controls source rendering.
type PrintConfig struct {
	// Minify drops all optional whitespace and newlines.
	Minify bool
	// Rename maps identifier names (variables, parameters, functions) to
	// replacement names. Missing entries keep their original name.
	Rename map[string]string
}

// Print renders the program back to nanojs source.
func Print(prog *Program, cfg PrintConfig) string {
	var sb strings.Builder
	p := &printer{w: &sb, cfg: cfg}
	for i, s := range prog.Stmts {
		p.stmt(s, 0)
		if !cfg.Minify && i < len(prog.Stmts)-1 {
			p.ws("\n")
		}
	}
	return sb.String()
}

type printer struct {
	w    io.Writer
	cfg  PrintConfig
	last byte
}

func (p *printer) emit(s string) {
	if s == "" {
		return
	}
	io.WriteString(p.w, s)
	p.last = s[len(s)-1]
}

func (p *printer) emitf(f string, a ...any) {
	out := fmt.Sprintf(f, a...)
	p.emit(out)
}

// emitOp emits an operator, inserting a space when gluing it to the
// previous byte would form a different token (e.g. `y++ + ++y` must not
// minify to `y+++++y`).
func (p *printer) emitOp(s string) {
	if len(s) > 0 && (p.last == '+' || p.last == '-') && s[0] == p.last {
		p.emit(" ")
	}
	p.emit(s)
}

// ws emits whitespace only when not minifying.
func (p *printer) ws(s string) {
	if !p.cfg.Minify {
		p.emit(s)
	}
}

func (p *printer) indent(n int) {
	if !p.cfg.Minify {
		p.emit(strings.Repeat("  ", n))
	}
}

func (p *printer) name(n string) string {
	if r, ok := p.cfg.Rename[n]; ok {
		return r
	}
	return n
}

func (p *printer) stmt(s Stmt, depth int) {
	switch s := s.(type) {
	case *VarDecl:
		p.indent(depth)
		p.emit(s.Kind.String())
		p.emit(" ")
		for i, name := range s.Names {
			if i > 0 {
				p.emit(",")
				p.ws(" ")
			}
			p.emit(p.name(name))
			if s.Inits[i] != nil {
				p.ws(" ")
				p.emit("=")
				p.ws(" ")
				p.expr(s.Inits[i], precLowest)
			}
		}
		p.emit(";")
		p.ws("\n")
	case *ExprStmt:
		p.indent(depth)
		p.expr(s.X, precLowest)
		p.emit(";")
		p.ws("\n")
	case *BlockStmt:
		p.indent(depth)
		p.emit("{")
		p.ws("\n")
		for _, st := range s.Stmts {
			p.stmt(st, depth+1)
		}
		p.indent(depth)
		p.emit("}")
		p.ws("\n")
	case *IfStmt:
		p.indent(depth)
		p.emit("if")
		p.ws(" ")
		p.emit("(")
		p.expr(s.Cond, precLowest)
		p.emit(")")
		p.blockOrStmt(s.Then, depth)
		if s.Else != nil {
			p.indent(depth)
			p.emit("else")
			if _, isIf := s.Else.(*IfStmt); isIf && p.cfg.Minify {
				p.emit(" ")
			}
			p.blockOrStmt(s.Else, depth)
		}
	case *WhileStmt:
		p.indent(depth)
		p.emit("while")
		p.ws(" ")
		p.emit("(")
		p.expr(s.Cond, precLowest)
		p.emit(")")
		p.blockOrStmt(s.Body, depth)
	case *DoWhileStmt:
		p.indent(depth)
		p.emit("do")
		p.blockOrStmt(s.Body, depth)
		p.indent(depth)
		p.emit("while")
		p.ws(" ")
		p.emit("(")
		p.expr(s.Cond, precLowest)
		p.emit(");")
		p.ws("\n")
	case *ForStmt:
		p.indent(depth)
		p.emit("for")
		p.ws(" ")
		p.emit("(")
		if s.Init != nil {
			p.inlineInit(s.Init)
		}
		p.emit(";")
		if s.Cond != nil {
			p.ws(" ")
			p.expr(s.Cond, precLowest)
		}
		p.emit(";")
		if s.Post != nil {
			p.ws(" ")
			p.expr(s.Post, precLowest)
		}
		p.emit(")")
		p.blockOrStmt(s.Body, depth)
	case *BreakStmt:
		p.indent(depth)
		p.emit("break;")
		p.ws("\n")
	case *ContinueStmt:
		p.indent(depth)
		p.emit("continue;")
		p.ws("\n")
	case *ReturnStmt:
		p.indent(depth)
		p.emit("return")
		if s.Value != nil {
			p.emit(" ")
			p.expr(s.Value, precLowest)
		}
		p.emit(";")
		p.ws("\n")
	case *FuncDecl:
		p.indent(depth)
		p.emit("function ")
		p.emit(p.name(s.Name))
		p.emit("(")
		for i, param := range s.Params {
			if i > 0 {
				p.emit(",")
				p.ws(" ")
			}
			p.emit(p.name(param))
		}
		p.emit(")")
		p.blockOrStmt(s.Body, depth)
	}
}

// inlineInit prints a for-init clause without trailing semicolon/newline.
func (p *printer) inlineInit(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		p.emit(s.Kind.String())
		p.emit(" ")
		for i, name := range s.Names {
			if i > 0 {
				p.emit(",")
				p.ws(" ")
			}
			p.emit(p.name(name))
			if s.Inits[i] != nil {
				p.ws(" ")
				p.emit("=")
				p.ws(" ")
				p.expr(s.Inits[i], precLowest)
			}
		}
	case *ExprStmt:
		p.expr(s.X, precLowest)
	}
}

func (p *printer) blockOrStmt(s Stmt, depth int) {
	if blk, ok := s.(*BlockStmt); ok {
		p.ws(" ")
		p.emit("{")
		p.ws("\n")
		for _, st := range blk.Stmts {
			p.stmt(st, depth+1)
		}
		p.indent(depth)
		p.emit("}")
		p.ws("\n")
		return
	}
	if p.cfg.Minify {
		p.stmt(s, 0)
		return
	}
	p.emit("\n")
	p.stmt(s, depth+1)
}

// Operator precedence levels for parenthesization (higher binds tighter).
const (
	precLowest = iota
	precAssign
	precCond
	precOr
	precAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precPow
	precUnary
	precPostfix
)

func binPrec(op token.Kind) int {
	switch op {
	case token.Pipe:
		return precBitOr
	case token.Caret:
		return precBitXor
	case token.Amp:
		return precBitAnd
	case token.Eq, token.NotEq, token.StrictEq, token.StrictNe:
		return precEq
	case token.Lt, token.Gt, token.Le, token.Ge:
		return precRel
	case token.Shl, token.Shr, token.Ushr:
		return precShift
	case token.Plus, token.Minus:
		return precAdd
	case token.Star, token.Slash, token.Percent:
		return precMul
	case token.StarStar:
		return precPow
	default:
		return precLowest
	}
}

func (p *printer) expr(x Expr, parentPrec int) {
	prec := exprPrec(x)
	if prec < parentPrec {
		p.emit("(")
		defer p.emit(")")
	}
	switch x := x.(type) {
	case *NumberLit:
		if x.Raw != "" {
			p.emit(x.Raw)
		} else {
			p.emitf("%v", x.Value)
		}
	case *StringLit:
		p.emitf("%q", x.Value)
	case *BoolLit:
		if x.Value {
			p.emit("true")
		} else {
			p.emit("false")
		}
	case *NullLit:
		p.emit("null")
	case *UndefinedLit:
		p.emit("undefined")
	case *Ident:
		p.emit(p.name(x.Name))
	case *ArrayLit:
		p.emit("[")
		for i, e := range x.Elems {
			if i > 0 {
				p.emit(",")
				p.ws(" ")
			}
			p.expr(e, precAssign)
		}
		p.emit("]")
	case *NewArray:
		p.emit("new Array(")
		p.expr(x.Len, precLowest)
		p.emit(")")
	case *IndexExpr:
		p.expr(x.X, precPostfix)
		p.emit("[")
		p.expr(x.Index, precLowest)
		p.emit("]")
	case *MemberExpr:
		p.expr(x.X, precPostfix)
		p.emit(".")
		p.emit(x.Name)
	case *CallExpr:
		p.expr(x.Callee, precPostfix)
		p.emit("(")
		for i, a := range x.Args {
			if i > 0 {
				p.emit(",")
				p.ws(" ")
			}
			p.expr(a, precAssign)
		}
		p.emit(")")
	case *UnaryExpr:
		p.emitOp(x.Op.String())
		if x.Op == token.Typeof {
			p.emit(" ")
		}
		p.expr(x.X, precUnary)
	case *BinaryExpr:
		bp := binPrec(x.Op)
		// Left-associative operators need parens around a same-precedence
		// right child; the right-associative ** needs them around a
		// same-precedence left child instead.
		lp, rp := bp, bp+1
		if x.Op == token.StarStar {
			lp, rp = bp+1, bp
		}
		p.expr(x.X, lp)
		p.ws(" ")
		p.emitOp(x.Op.String())
		p.ws(" ")
		p.expr(x.Y, rp)
	case *LogicalExpr:
		bp := precAnd
		if x.Op == token.PipePipe {
			bp = precOr
		}
		p.expr(x.X, bp)
		p.ws(" ")
		p.emitOp(x.Op.String())
		p.ws(" ")
		p.expr(x.Y, bp+1)
	case *CondExpr:
		p.expr(x.Cond, precOr)
		p.ws(" ")
		p.emit("?")
		p.ws(" ")
		p.expr(x.Then, precAssign)
		p.ws(" ")
		p.emit(":")
		p.ws(" ")
		p.expr(x.Else, precAssign)
	case *AssignExpr:
		p.expr(x.Target, precPostfix)
		p.ws(" ")
		p.emit(x.Op.String())
		p.ws(" ")
		p.expr(x.Value, precAssign)
	case *UpdateExpr:
		if x.Prefix {
			p.emitOp(x.Op.String())
			p.expr(x.Target, precUnary)
		} else {
			p.expr(x.Target, precPostfix)
			p.emitOp(x.Op.String())
		}
	}
}

func exprPrec(x Expr) int {
	switch x := x.(type) {
	case *BinaryExpr:
		return binPrec(x.Op)
	case *LogicalExpr:
		if x.Op == token.PipePipe {
			return precOr
		}
		return precAnd
	case *CondExpr:
		return precCond
	case *AssignExpr:
		return precAssign
	case *UnaryExpr:
		return precUnary
	case *UpdateExpr:
		return precPostfix
	default:
		return precPostfix + 1
	}
}

package ast_test

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/interp"
	"github.com/jitbull/jitbull/internal/parser"
)

// evalResult interprets src and returns the printed output (sources end
// with print(...)).
func evalResult(t *testing.T, src string) string {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	var out strings.Builder
	vm := interp.New(prog, heap.New(0), &out)
	if _, err := vm.Run(); err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out.String()
}

// roundTrip prints the parsed program and checks the output still parses
// and evaluates identically.
func roundTrip(t *testing.T, src string, minify bool) {
	t.Helper()
	prog := parser.MustParse(src)
	printed := ast.Print(prog, ast.PrintConfig{Minify: minify})
	if _, err := parser.Parse(printed); err != nil {
		t.Fatalf("printed source does not parse: %v\n%s", err, printed)
	}
	if got, want := evalResult(t, printed), evalResult(t, src); got != want {
		t.Fatalf("round-trip changed semantics (minify=%v):\nsrc: %s\nout: %s\nwant %q got %q",
			minify, src, printed, want, got)
	}
}

// TestPrinterPrecedence covers the parenthesization decisions: each case
// evaluates an expression whose tree shape must survive printing.
func TestPrinterPrecedence(t *testing.T) {
	cases := []string{
		"print((1 + 2) * 3);",
		"print(1 + 2 * 3);",
		"print(10 - (4 - 3));",
		"print((10 - 4) - 3);",
		"print(2 ** 3 ** 2);",
		"print((2 ** 3) ** 2);",
		"print(-(1 + 2));",
		"print((1 < 2) == true);",
		"print(1 & (3 == 3 ? 1 : 0));",
		"print((1 | 2) & 3);",
		"print(1 | (2 & 3));",
		"print(8 >> (1 + 1));",
		"print((8 >> 1) + 1);",
		"print((1 && 0) || 1);",
		"print(1 && (0 || 1));",
		"print(!(1 < 2));",
		"print(~(5 | 2));",
		"print((1 ? 2 : 3) ? 4 : 5);",
		"print(typeof (1 + 2));",
		"var a = [1, 2]; print(a[1 + 0] * 2);",
		"var x = 5; x += 2 * 3; print(x);",
		"var y = 1; print(y++ + ++y);",
		"print((2 % 3) * 4);",
		"print(2 % (3 * 4));",
	}
	for _, src := range cases {
		roundTrip(t, src, false)
		roundTrip(t, src, true)
	}
}

func TestPrinterStatements(t *testing.T) {
	srcs := []string{
		`
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    s += i;
  }
  do { s--; } while (s > 10);
  while (s < 20) { s = s + 3; }
  return s;
}
print(f(12));`,
		`
var a = new Array(4);
a[0] = 1; a.length = 2; a.push(9);
print(a.length, a[0], a.pop());`,
		`
function g(x) {
  if (x < 0) { return -x; }
  else if (x == 0) { return 100; }
  else { return x; }
}
print(g(-5) + g(0) + g(5));`,
		`
var s = "he\"llo\n";
print(s.length, s.charCodeAt(0), String.fromCharCode(33));`,
		"var e; print(e === undefined, null == undefined, typeof null);",
	}
	for _, src := range srcs {
		roundTrip(t, src, false)
		roundTrip(t, src, true)
	}
}

func TestPrinterRenameConsistency(t *testing.T) {
	src := "function f(a) { var b = a + 1; return b; } print(f(2));"
	prog := parser.MustParse(src)
	out := ast.Print(prog, ast.PrintConfig{Rename: map[string]string{
		"f": "q", "a": "r", "b": "s",
	}})
	for _, want := range []string{"function q(r)", "var s = r + 1", "return s", "print(q(2))"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rename output missing %q:\n%s", want, out)
		}
	}
	if got := evalResult(t, out); got != "3\n" {
		t.Fatalf("renamed program output = %q", got)
	}
}

func TestWalkSkipsChildrenWhenFalse(t *testing.T) {
	prog := parser.MustParse("function f(a) { return a + g(a); } ")
	count := 0
	ast.Walk(prog, func(n ast.Node) bool {
		count++
		_, isFn := n.(*ast.FuncDecl)
		return !isFn // do not descend into the function
	})
	if count != 2 { // Program + FuncDecl
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

// Package ast defines the abstract syntax tree of the nanojs language.
package ast

import (
	"strings"

	"github.com/jitbull/jitbull/internal/token"
)

// Node is the common interface of all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Program is a whole parsed script: a sequence of top-level statements,
// including function declarations.
type Program struct {
	Stmts []Stmt
}

// Funcs returns the top-level function declarations of the program in source
// order.
func (p *Program) Funcs() []*FuncDecl {
	var fns []*FuncDecl
	for _, s := range p.Stmts {
		if fd, ok := s.(*FuncDecl); ok {
			fns = append(fns, fd)
		}
	}
	return fns
}

// ---- Expressions ----

// NumberLit is a numeric literal; Value holds the parsed float64.
type NumberLit struct {
	ValuePos token.Pos
	Value    float64
	Raw      string
}

// StringLit is a string literal (unescaped value).
type StringLit struct {
	ValuePos token.Pos
	Value    string
}

// BoolLit is true or false.
type BoolLit struct {
	ValuePos token.Pos
	Value    bool
}

// NullLit is the null literal.
type NullLit struct{ ValuePos token.Pos }

// UndefinedLit is the undefined literal.
type UndefinedLit struct{ ValuePos token.Pos }

// Ident is a variable or function reference.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// ArrayLit is an array literal [a, b, c].
type ArrayLit struct {
	Lbrack token.Pos
	Elems  []Expr
}

// NewArray is `new Array(n)`.
type NewArray struct {
	NewPos token.Pos
	Len    Expr
}

// IndexExpr is arr[i].
type IndexExpr struct {
	X     Expr
	Index Expr
}

// MemberExpr is x.name (property read, e.g. arr.length, Math.PI).
type MemberExpr struct {
	X    Expr
	Name string
}

// CallExpr is callee(args...). Callee is an Ident (global function call) or a
// MemberExpr (builtin method such as arr.push(v) or Math.sqrt(x)).
type CallExpr struct {
	Callee Expr
	Args   []Expr
}

// UnaryExpr is op X for prefix -, !, ~, typeof.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// BinaryExpr is X op Y for arithmetic, comparison and bitwise operators.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// LogicalExpr is X && Y or X || Y (short-circuiting).
type LogicalExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// CondExpr is cond ? then : else.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// AssignExpr is target op= value, where Op is token.Assign or a compound
// assignment. Target is an Ident, IndexExpr, or MemberExpr (arr.length).
type AssignExpr struct {
	Target Expr
	Op     token.Kind
	Value  Expr
}

// UpdateExpr is ++x, --x, x++ or x-- on an Ident or IndexExpr.
type UpdateExpr struct {
	OpPos  token.Pos
	Op     token.Kind // PlusPlus or MinusMinus
	Prefix bool
	Target Expr
}

func (x *NumberLit) Pos() token.Pos    { return x.ValuePos }
func (x *StringLit) Pos() token.Pos    { return x.ValuePos }
func (x *BoolLit) Pos() token.Pos      { return x.ValuePos }
func (x *NullLit) Pos() token.Pos      { return x.ValuePos }
func (x *UndefinedLit) Pos() token.Pos { return x.ValuePos }
func (x *Ident) Pos() token.Pos        { return x.NamePos }
func (x *ArrayLit) Pos() token.Pos     { return x.Lbrack }
func (x *NewArray) Pos() token.Pos     { return x.NewPos }
func (x *IndexExpr) Pos() token.Pos    { return x.X.Pos() }
func (x *MemberExpr) Pos() token.Pos   { return x.X.Pos() }
func (x *CallExpr) Pos() token.Pos     { return x.Callee.Pos() }
func (x *UnaryExpr) Pos() token.Pos    { return x.OpPos }
func (x *BinaryExpr) Pos() token.Pos   { return x.X.Pos() }
func (x *LogicalExpr) Pos() token.Pos  { return x.X.Pos() }
func (x *CondExpr) Pos() token.Pos     { return x.Cond.Pos() }
func (x *AssignExpr) Pos() token.Pos   { return x.Target.Pos() }
func (x *UpdateExpr) Pos() token.Pos   { return x.OpPos }

func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*Ident) exprNode()        {}
func (*ArrayLit) exprNode()     {}
func (*NewArray) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*MemberExpr) exprNode()   {}
func (*CallExpr) exprNode()     {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*LogicalExpr) exprNode()  {}
func (*CondExpr) exprNode()     {}
func (*AssignExpr) exprNode()   {}
func (*UpdateExpr) exprNode()   {}

// ---- Statements ----

// VarDecl declares one or more variables: `var x = 1, y;`. Kind is Var, Let
// or Const (nanojs treats all three as function-scoped variables).
type VarDecl struct {
	DeclPos token.Pos
	Kind    token.Kind
	Names   []string
	Inits   []Expr // parallel to Names; nil entries mean undefined
}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	X Expr
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Lbrace token.Pos
	Stmts  []Stmt
}

// IfStmt is if (cond) then [else else].
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

// DoWhileStmt is do body while (cond);.
type DoWhileStmt struct {
	DoPos token.Pos
	Body  Stmt
	Cond  Expr
}

// ForStmt is for (init; cond; post) body. Any of the three clauses may be
// nil.
type ForStmt struct {
	ForPos token.Pos
	Init   Stmt // VarDecl or ExprStmt, or nil
	Cond   Expr // or nil (infinite)
	Post   Expr // or nil
	Body   Stmt
}

// BreakStmt is break;.
type BreakStmt struct{ BreakPos token.Pos }

// ContinueStmt is continue;.
type ContinueStmt struct{ ContinuePos token.Pos }

// ReturnStmt is return [expr];.
type ReturnStmt struct {
	ReturnPos token.Pos
	Value     Expr // may be nil
}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	FuncPos token.Pos
	Name    string
	Params  []string
	Body    *BlockStmt
}

func (s *VarDecl) Pos() token.Pos      { return s.DeclPos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *BlockStmt) Pos() token.Pos    { return s.Lbrace }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *DoWhileStmt) Pos() token.Pos  { return s.DoPos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *BreakStmt) Pos() token.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() token.Pos { return s.ContinuePos }
func (s *ReturnStmt) Pos() token.Pos   { return s.ReturnPos }
func (s *FuncDecl) Pos() token.Pos     { return s.FuncPos }

func (*VarDecl) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*FuncDecl) stmtNode()     {}

// Walk calls fn for node and every child node, pre-order. If fn returns
// false, children of node are not visited.
func Walk(node Node, fn func(Node) bool) {
	if node == nil || !fn(node) {
		return
	}
	switch n := node.(type) {
	case *Program:
		for _, s := range n.Stmts {
			Walk(s, fn)
		}
	case *ArrayLit:
		for _, e := range n.Elems {
			Walk(e, fn)
		}
	case *NewArray:
		Walk(n.Len, fn)
	case *IndexExpr:
		Walk(n.X, fn)
		Walk(n.Index, fn)
	case *MemberExpr:
		Walk(n.X, fn)
	case *CallExpr:
		Walk(n.Callee, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *UnaryExpr:
		Walk(n.X, fn)
	case *BinaryExpr:
		Walk(n.X, fn)
		Walk(n.Y, fn)
	case *LogicalExpr:
		Walk(n.X, fn)
		Walk(n.Y, fn)
	case *CondExpr:
		Walk(n.Cond, fn)
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *AssignExpr:
		Walk(n.Target, fn)
		Walk(n.Value, fn)
	case *UpdateExpr:
		Walk(n.Target, fn)
	case *VarDecl:
		for _, e := range n.Inits {
			if e != nil {
				Walk(e, fn)
			}
		}
	case *ExprStmt:
		Walk(n.X, fn)
	case *BlockStmt:
		for _, s := range n.Stmts {
			Walk(s, fn)
		}
	case *IfStmt:
		Walk(n.Cond, fn)
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *WhileStmt:
		Walk(n.Cond, fn)
		Walk(n.Body, fn)
	case *DoWhileStmt:
		Walk(n.Body, fn)
		Walk(n.Cond, fn)
	case *ForStmt:
		Walk(n.Init, fn)
		Walk(n.Cond, fn)
		Walk(n.Post, fn)
		Walk(n.Body, fn)
	case *ReturnStmt:
		Walk(n.Value, fn)
	case *FuncDecl:
		Walk(n.Body, fn)
	}
}

// (Program satisfies Node so it can be Walked.)
func (p *Program) Pos() token.Pos { return token.Pos{Line: 1, Col: 1} }

// FuncNames returns a comma-separated list of the program's top-level
// function names, useful in diagnostics.
func (p *Program) FuncNames() string {
	var names []string
	for _, f := range p.Funcs() {
		names = append(names, f.Name)
	}
	return strings.Join(names, ",")
}

package mirbuild

import (
	"errors"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/value"
)

// buildFn compiles src, then builds MIR for the function named name with
// the given observed param types. Globals and callee return types default
// to Number.
func buildFn(t *testing.T, src, name string, paramTypes ...value.Type) (*mir.Graph, error) {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	astProg := parser.MustParse(src)
	var fd *ast.FuncDecl
	for _, f := range astProg.Funcs() {
		if f.Name == name {
			fd = f
		}
	}
	if fd == nil {
		t.Fatalf("function %q not found", name)
	}
	return Build(prog, fd, Options{
		ParamTypes: paramTypes,
		GlobalType: func(int) value.Type { return value.Number },
		ReturnType: func(int) value.Type { return value.Number },
	})
}

func mustBuild(t *testing.T, src, name string, paramTypes ...value.Type) *mir.Graph {
	t.Helper()
	g, err := buildFn(t, src, name, paramTypes...)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	if errs := g.Verify(); len(errs) > 0 {
		t.Fatalf("invalid graph: %v\n%s", errs, g)
	}
	return g
}

func countOps(g *mir.Graph, op mir.Op) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if !in.Dead && in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestStraightLineArith(t *testing.T) {
	g := mustBuild(t, "function f(a, b) { return a * b + 2; }", "f",
		value.Number, value.Number)
	if countOps(g, mir.OpMul) != 1 || countOps(g, mir.OpAdd) != 1 {
		t.Fatalf("missing arith ops:\n%s", g)
	}
	if countOps(g, mir.OpUnbox) != 2 {
		t.Fatalf("want 2 unbox guards:\n%s", g)
	}
	if countOps(g, mir.OpReturn) != 1 {
		t.Fatalf("want 1 return:\n%s", g)
	}
}

func TestArrayAccessEmitsGuardChain(t *testing.T) {
	g := mustBuild(t, "function f(a, i) { return a[i]; }", "f",
		value.Array, value.Number)
	for _, op := range []mir.Op{mir.OpElements, mir.OpInitializedLength, mir.OpBoundsCheck, mir.OpLoadElement} {
		if countOps(g, op) != 1 {
			t.Fatalf("want exactly one %s:\n%s", op, g)
		}
	}
}

func TestStoreEmitsGuardChain(t *testing.T) {
	g := mustBuild(t, "function f(a, i, v) { a[i] = v; }", "f",
		value.Array, value.Number, value.Number)
	if countOps(g, mir.OpStoreElement) != 1 || countOps(g, mir.OpBoundsCheck) != 1 {
		t.Fatalf("store chain missing:\n%s", g)
	}
}

func TestLoopBuildsPhi(t *testing.T) {
	g := mustBuild(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + i; }
  return s;
}`, "f", value.Number)
	if countOps(g, mir.OpPhi) < 2 {
		t.Fatalf("want phis for s and i:\n%s", g)
	}
	// The loop must be detected.
	depth := 0
	for _, b := range g.Blocks {
		if b.LoopDepth > depth {
			depth = b.LoopDepth
		}
	}
	if depth != 1 {
		t.Fatalf("max loop depth = %d, want 1:\n%s", depth, g)
	}
}

func TestNestedLoopDepth(t *testing.T) {
	g := mustBuild(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    for (var j = 0; j < n; j++) { s++; }
  }
  return s;
}`, "f", value.Number)
	depth := 0
	for _, b := range g.Blocks {
		if b.LoopDepth > depth {
			depth = b.LoopDepth
		}
	}
	if depth != 2 {
		t.Fatalf("max loop depth = %d, want 2", depth)
	}
}

func TestIfPhi(t *testing.T) {
	g := mustBuild(t, `
function f(c) {
  var x = 1;
  if (c) { x = 2; } else { x = 3; }
  return x;
}`, "f", value.Number)
	if countOps(g, mir.OpPhi) != 1 {
		t.Fatalf("want one phi:\n%s", g)
	}
	if countOps(g, mir.OpTest) != 1 {
		t.Fatalf("want one test:\n%s", g)
	}
}

func TestNoPhiWhenUnchanged(t *testing.T) {
	g := mustBuild(t, `
function f(c) {
  var x = 1;
  if (c) { }
  return x;
}`, "f", value.Number)
	if n := countOps(g, mir.OpPhi); n != 0 {
		t.Fatalf("trivial phi not removed (%d phis):\n%s", n, g)
	}
}

func TestGlobalAccess(t *testing.T) {
	g := mustBuild(t, `
var state = 0;
function f(x) { state = state + x; return state; }`, "f", value.Number)
	if countOps(g, mir.OpLoadGlobal) < 1 || countOps(g, mir.OpStoreGlobal) != 1 {
		t.Fatalf("global ops missing:\n%s", g)
	}
	if countOps(g, mir.OpGuardType) < 1 {
		t.Fatalf("global loads must be guarded:\n%s", g)
	}
}

func TestCalls(t *testing.T) {
	g := mustBuild(t, `
function g(x) { return x + 1; }
function f(x) { return g(x) * 2; }`, "f", value.Number)
	if countOps(g, mir.OpCall) != 1 {
		t.Fatalf("call missing:\n%s", g)
	}
}

func TestMathFuncs(t *testing.T) {
	g := mustBuild(t, "function f(x) { return Math.sqrt(x) + Math.pow(x, 2); }", "f", value.Number)
	if countOps(g, mir.OpMathFunc) != 2 {
		t.Fatalf("mathfunc count:\n%s", g)
	}
}

func TestSetLengthAndPush(t *testing.T) {
	g := mustBuild(t, "function f(a, n) { a.length = n; a.push(n); return a.pop(); }", "f",
		value.Array, value.Number)
	if countOps(g, mir.OpSetLength) != 1 || countOps(g, mir.OpArrayPush) != 1 || countOps(g, mir.OpArrayPop) != 1 {
		t.Fatalf("array mutation ops missing:\n%s", g)
	}
}

func TestLogicalAndConditional(t *testing.T) {
	g := mustBuild(t, "function f(a, b) { return (a && b) + (a < b ? a : b); }", "f",
		value.Number, value.Number)
	if countOps(g, mir.OpPhi) != 2 {
		t.Fatalf("want 2 phis (&& and ?:):\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := mustBuild(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    if (i == 3) { continue; }
    if (i == 7) { break; }
    s += i;
  }
  return s;
}`, "f", value.Number)
	if errs := g.Verify(); len(errs) > 0 {
		t.Fatalf("invalid: %v", errs)
	}
}

func TestDoWhile(t *testing.T) {
	g := mustBuild(t, `
function f(n) {
  var s = 0;
  do { s += n; n--; } while (n > 0);
  return s;
}`, "f", value.Number)
	depth := 0
	for _, b := range g.Blocks {
		if b.LoopDepth > depth {
			depth = b.LoopDepth
		}
	}
	if depth != 1 {
		t.Fatalf("do-while loop not detected:\n%s", g)
	}
}

func TestUnsupportedConstructs(t *testing.T) {
	tests := []struct {
		src   string
		types []value.Type
	}{
		{`function f(x) { return "s" + x; }`, []value.Type{value.Number}},
		{`function f(x) { print(x); }`, []value.Type{value.Number}},
		{`function f(x) { return typeof x; }`, []value.Type{value.Number}},
		{`function f(x) { return x; }`, []value.Type{value.String}},
		{`function f(x) { return x; }`, []value.Type{value.Undefined}},
		{`function f(x) { var y; if (x) { y = 1; } else { y = [1]; } return y; }`, []value.Type{value.Number}},
	}
	for _, tt := range tests {
		_, err := buildFn(t, tt.src, "f", tt.types...)
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q: got %v, want ErrUnsupported", tt.src, err)
		}
	}
}

func TestUninitializedVarReadsNaN(t *testing.T) {
	g := mustBuild(t, "function f() { var s; return s; }", "f")
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpConstant && in.Num != in.Num { // NaN
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("uninitialized read should produce NaN constant:\n%s", g)
	}
}

func TestRenumberProducesDenseIDs(t *testing.T) {
	g := mustBuild(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s += i; }
  return s;
}`, "f", value.Number)
	g.Renumber()
	seen := map[int]bool{}
	max := -1
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if seen[in.ID] {
				t.Fatalf("duplicate ID %d", in.ID)
			}
			seen[in.ID] = true
			if in.ID > max {
				max = in.ID
			}
		}
	}
	if len(seen) != max+1 {
		t.Fatalf("IDs not dense: %d ids, max %d", len(seen), max)
	}
}

func TestSnapshotFormat(t *testing.T) {
	g := mustBuild(t, "function f(a, i) { return a[i]; }", "f",
		value.Array, value.Number)
	snap := g.Snap()
	if snap.FuncName != "f" || len(snap.Instrs) == 0 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	var hasCheck bool
	for _, si := range snap.Instrs {
		if si.Opcode == "boundscheck" {
			hasCheck = true
			if len(si.Operands) != 2 {
				t.Fatalf("boundscheck operands = %v", si.Operands)
			}
		}
	}
	if !hasCheck {
		t.Fatal("snapshot missing boundscheck")
	}
}

func TestDominators(t *testing.T) {
	g := mustBuild(t, `
function f(c) {
  var x = 0;
  if (c) { x = 1; } else { x = 2; }
  return x;
}`, "f", value.Number)
	entry := g.Entry()
	for _, b := range g.Blocks {
		if !entry.Dominates(b) {
			t.Errorf("entry must dominate block%d", b.ID)
		}
	}
	// The join block is not dominated by either branch arm.
	rpo := g.ReversePostorder()
	join := rpo[len(rpo)-1]
	for _, p := range join.Preds {
		if p.Dominates(join) && p != entry {
			t.Errorf("branch arm block%d must not dominate join", p.ID)
		}
	}
}

func TestGraphStringDump(t *testing.T) {
	g := mustBuild(t, "function f(a, i) { return a[i]; }", "f",
		value.Array, value.Number)
	dump := g.String()
	for _, want := range []string{"boundscheck", "initializedlength", "unbox", "loadelement"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

// Package mirbuild constructs MIR (internal/mir) from a function's AST,
// using on-the-fly SSA construction (Braun et al., "Simple and Efficient
// Construction of Static Single Assignment Form") with sealed blocks and
// incomplete phis.
//
// The builder is type-speculative, like WarpBuilder/IonBuilder: parameter
// and global types observed by the profiling interpreter tier decide the
// unbox/guard instructions emitted. Functions using features outside the
// JIT-able subset (strings, typeof, print, mixed types...) fail to build
// with ErrUnsupported and simply stay on the interpreter tier.
package mirbuild

import (
	"errors"
	"fmt"
	"math"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/token"
	"github.com/jitbull/jitbull/internal/value"
)

// ErrUnsupported marks functions outside the JIT-able subset; the engine
// keeps them on the interpreter tier.
var ErrUnsupported = errors.New("not JIT-able")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// Options supplies the type speculation inputs gathered by the profiling
// tier.
type Options struct {
	// ParamTypes holds the observed type of each parameter.
	ParamTypes []value.Type
	// GlobalType reports the current type of a global slot.
	GlobalType func(slot int) value.Type
	// ReturnType reports the observed return type of a function index.
	ReturnType func(fnIdx int) value.Type
	// Faults is the compile supervisor's context (step budget + fault
	// injection); nil is valid and free.
	Faults *faults.CompileCtx

	// OSR marks loop headers with OpOSREntry frame maps (locals → MIR
	// values) so the engine can transfer mid-loop into native code.
	// Speculate emits OpSnapshot frame maps after eligible call-assignment
	// statements so the TypeSpeculation pass can turn calls into guarded
	// OpCallSpec. Both default off, in which case the built MIR is
	// bit-identical to a build without the feature.
	OSR       bool
	Speculate bool
}

// Build compiles fd into a fresh MIR graph. prog supplies name resolution
// (global slots and function indices) and must be the bytecode program the
// interpreter runs.
func Build(prog *bytecode.Program, fd *ast.FuncDecl, opts Options) (*mir.Graph, error) {
	sp := opts.Faults.Span(obs.CatCompile, "mirbuild")
	if opts.Faults != nil {
		if err := opts.Faults.Step(faults.PointMIRBuild, fd.Name, int64(1+len(fd.Body.Stmts))); err != nil {
			sp.EndErr(err)
			return nil, err
		}
	}
	fnIdx, ok := prog.FuncByName[fd.Name]
	if !ok {
		err := fmt.Errorf("function %q not in program", fd.Name)
		sp.EndErr(err)
		return nil, err
	}
	if len(opts.ParamTypes) < len(fd.Params) {
		err := unsupportedf("missing type feedback for %q", fd.Name)
		sp.EndErr(err)
		return nil, err
	}
	globalSlots := make(map[string]int, len(prog.GlobalNames))
	for i, n := range prog.GlobalNames {
		globalSlots[n] = i
	}
	b := &builder{
		prog:        prog,
		fd:          fd,
		opts:        opts,
		g:           mir.NewGraph(fd.Name, fnIdx, len(fd.Params)),
		globalSlots: globalSlots,
		currentDef:  map[string]map[*mir.Block]*mir.Instr{},
		sealed:      map[*mir.Block]bool{},
		incomplete:  map[*mir.Block]map[string]*mir.Instr{},
		locals:      map[string]bool{},
	}
	if err := b.build(); err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.End(obs.S("fn", fd.Name), obs.I("instrs", int64(b.g.InstrCount())))
	return b.g, nil
}

type builder struct {
	prog        *bytecode.Program
	fd          *ast.FuncDecl
	opts        Options
	g           *mir.Graph
	globalSlots map[string]int

	cur        *mir.Block
	terminated bool // current block already ended in return/break/continue

	// Braun SSA state.
	currentDef map[string]map[*mir.Block]*mir.Instr
	sealed     map[*mir.Block]bool
	incomplete map[*mir.Block]map[string]*mir.Instr

	locals map[string]bool // param + hoisted var names (function scope)

	// slotNames lists the locals in bytecode slot order (params first, then
	// hoisted vars in first-encounter walk order) — the same assignment the
	// bytecode compiler performs, so OSR/deopt frame maps index interpreter
	// frames correctly.
	slotNames []string
	// loopOrd/specOrd number loop statements and speculation sites in
	// lockstep with the bytecode compiler's identical counters.
	loopOrd int
	specOrd int

	// Loop context stack for break/continue.
	loops []*loopBlocks
}

type loopBlocks struct {
	continueTarget *mir.Block
	exit           *mir.Block
}

func (b *builder) build() error {
	entry := b.g.NewBlock()
	b.sealed[entry] = true
	b.cur = entry

	// Hoist locals (params + every var declared anywhere in the body),
	// recording slot order exactly as the bytecode compiler assigns it.
	for _, p := range b.fd.Params {
		b.locals[p] = true
	}
	b.slotNames = append(b.slotNames, b.fd.Params...)
	ast.Walk(b.fd.Body, func(n ast.Node) bool {
		if vd, ok := n.(*ast.VarDecl); ok {
			for _, name := range vd.Names {
				if !b.locals[name] {
					b.locals[name] = true
					b.slotNames = append(b.slotNames, name)
				}
			}
		}
		return true
	})

	// Parameters: emit parameter + unbox according to observed types.
	for i, p := range b.fd.Params {
		param := b.g.NewInstr(mir.OpParameter, mir.TypeValue)
		param.Aux = i
		b.cur.Append(param)
		var unboxed *mir.Instr
		switch b.opts.ParamTypes[i] {
		case value.Number, value.Boolean:
			unboxed = b.g.NewInstr(mir.OpUnbox, mir.TypeDouble, param)
		case value.Array:
			unboxed = b.g.NewInstr(mir.OpUnbox, mir.TypeObject, param)
		default:
			return unsupportedf("parameter %q has observed type %s", p, b.opts.ParamTypes[i])
		}
		b.cur.Append(unboxed)
		b.writeVar(p, b.cur, unboxed)
	}

	if err := b.stmt(b.fd.Body); err != nil {
		return err
	}
	if !b.terminated {
		b.cur.Append(b.g.NewInstr(mir.OpReturnUndef, mir.TypeNone))
	}
	b.g.PruneUnreachable()
	if err := b.finalizeTypes(); err != nil {
		return err
	}
	b.g.BuildDominators()
	if errs := b.g.Verify(); len(errs) > 0 {
		return fmt.Errorf("mirbuild produced invalid graph for %s: %v", b.fd.Name, errs)
	}
	return nil
}

// finalizeTypes resolves the types of loop phis by fixpoint and then
// type-checks every instruction's operands. Functions that mix arrays and
// numbers in one SSA value are rejected as not JIT-able.
func (b *builder) finalizeTypes() error {
	for changed := true; changed; {
		changed = false
		for _, blk := range b.g.Blocks {
			for _, in := range blk.Instrs {
				if in.Dead || in.Op != mir.OpPhi {
					continue
				}
				t := in.Type
				for _, op := range in.Operands {
					if op == in || op.Type == mir.TypeNone {
						continue
					}
					t = unifyTypes(t, op.Type)
				}
				if t != in.Type {
					in.Type = t
					changed = true
				}
			}
		}
	}
	for _, blk := range b.g.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			if in.Op == mir.OpPhi {
				if in.Type == mir.TypeValue {
					return unsupportedf("phi %d mixes arrays and numbers", in.ID)
				}
				if in.Type == mir.TypeNone {
					in.Type = mir.TypeDouble // degenerate phi (dead loop)
				}
				continue
			}
			if err := checkOperandTypes(in); err != nil {
				return err
			}
		}
	}
	return nil
}

func unifyTypes(a, t mir.Type) mir.Type {
	switch {
	case a == mir.TypeNone:
		return t
	case a == t:
		return a
	case isNumeric(a) && isNumeric(t):
		return mir.TypeDouble
	default:
		return mir.TypeValue
	}
}

// checkOperandTypes validates operand types for ops whose operands could
// have been untyped phis during construction.
func checkOperandTypes(in *mir.Instr) error {
	numeric := func(o *mir.Instr, what string) error {
		if !isNumeric(o.Type) {
			return unsupportedf("instr %d (%s): %s operand has type %s, need number", in.ID, in.Op, what, o.Type)
		}
		return nil
	}
	object := func(o *mir.Instr, what string) error {
		if o.Type != mir.TypeObject {
			return unsupportedf("instr %d (%s): %s operand has type %s, need array", in.ID, in.Op, what, o.Type)
		}
		return nil
	}
	switch in.Op {
	case mir.OpAdd, mir.OpSub, mir.OpMul, mir.OpDiv, mir.OpMod, mir.OpPow,
		mir.OpBitAnd, mir.OpBitOr, mir.OpBitXor, mir.OpShl, mir.OpShr, mir.OpUshr,
		mir.OpCompare, mir.OpMathFunc, mir.OpNeg, mir.OpNot, mir.OpTest, mir.OpNewArray:
		for _, op := range in.Operands {
			if err := numeric(op, "numeric"); err != nil {
				return err
			}
		}
	case mir.OpElements, mir.OpAddrOf, mir.OpArrayPop:
		return object(in.Operands[0], "array")
	case mir.OpBoundsCheck:
		if err := numeric(in.Operands[0], "index"); err != nil {
			return err
		}
		return numeric(in.Operands[1], "length")
	case mir.OpLoadElement:
		return numeric(in.Operands[1], "index")
	case mir.OpStoreElement:
		if err := numeric(in.Operands[1], "index"); err != nil {
			return err
		}
		return numeric(in.Operands[2], "value")
	case mir.OpSetLength, mir.OpArrayPush:
		if err := object(in.Operands[0], "array"); err != nil {
			return err
		}
		return numeric(in.Operands[1], "value")
	case mir.OpReturn, mir.OpStoreGlobal, mir.OpCall:
		for _, op := range in.Operands {
			if op.Type != mir.TypeObject && !isNumeric(op.Type) {
				return unsupportedf("instr %d (%s): operand type %s", in.ID, in.Op, op.Type)
			}
		}
	}
	return nil
}

// ---- SSA plumbing ----

func (b *builder) writeVar(name string, blk *mir.Block, v *mir.Instr) {
	m := b.currentDef[name]
	if m == nil {
		m = map[*mir.Block]*mir.Instr{}
		b.currentDef[name] = m
	}
	m[blk] = v
}

func (b *builder) readVar(name string, blk *mir.Block) *mir.Instr {
	if v, ok := b.currentDef[name][blk]; ok {
		return v
	}
	return b.readVarRecursive(name, blk)
}

func (b *builder) readVarRecursive(name string, blk *mir.Block) *mir.Instr {
	var v *mir.Instr
	switch {
	case !b.sealed[blk]:
		phi := b.g.NewInstr(mir.OpPhi, mir.TypeNone)
		blk.AddPhi(phi)
		if b.incomplete[blk] == nil {
			b.incomplete[blk] = map[string]*mir.Instr{}
		}
		b.incomplete[blk][name] = phi
		v = phi
	case len(blk.Preds) == 0:
		// Reading a variable never assigned on this path: JS yields
		// undefined; in the numeric JIT subset this is a NaN constant.
		c := b.g.NewInstr(mir.OpConstant, mir.TypeDouble)
		c.Num = nan()
		blk.AddPhi(c) // prepend so it precedes any control instruction
		v = c
	case len(blk.Preds) == 1:
		v = b.readVar(name, blk.Preds[0])
	default:
		phi := b.g.NewInstr(mir.OpPhi, mir.TypeNone)
		blk.AddPhi(phi)
		b.writeVar(name, blk, phi)
		v = b.addPhiOperands(name, phi)
	}
	b.writeVar(name, blk, v)
	return v
}

func (b *builder) addPhiOperands(name string, phi *mir.Instr) *mir.Instr {
	blk := phi.Block
	for _, pred := range blk.Preds {
		phi.Operands = append(phi.Operands, b.readVar(name, pred))
	}
	b.unifyPhiType(phi)
	return b.tryRemoveTrivialPhi(phi)
}

func (b *builder) unifyPhiType(phi *mir.Instr) {
	t := mir.TypeNone
	for _, op := range phi.Operands {
		if op == phi || op.Type == mir.TypeNone {
			// Self-references and not-yet-typed loop phis carry no type
			// information; finalizeTypes resolves them by fixpoint.
			continue
		}
		ot := op.Type
		switch {
		case t == mir.TypeNone:
			t = ot
		case t == ot:
		case t == mir.TypeBoolean && ot == mir.TypeDouble,
			t == mir.TypeDouble && ot == mir.TypeBoolean:
			t = mir.TypeDouble
		default:
			t = mir.TypeValue // mixed; consumers will reject
		}
	}
	phi.Type = t
}

func (b *builder) tryRemoveTrivialPhi(phi *mir.Instr) *mir.Instr {
	var same *mir.Instr
	for _, op := range phi.Operands {
		if op == phi || op == same {
			continue
		}
		if same != nil {
			return phi // not trivial
		}
		same = op
	}
	if same == nil {
		return phi // unreachable phi referencing only itself
	}
	// Collect phi users before rewriting.
	var phiUsers []*mir.Instr
	for _, blk := range b.g.Blocks {
		for _, in := range blk.Instrs {
			if in == phi {
				continue
			}
			for _, op := range in.Operands {
				if op == phi {
					phiUsers = append(phiUsers, in)
					break
				}
			}
		}
	}
	b.g.ReplaceUses(phi, same)
	phi.Dead = true
	removeFromBlock(phi)
	// Rewire variable definitions that pointed at the phi.
	for _, m := range b.currentDef {
		for blk, def := range m {
			if def == phi {
				m[blk] = same
			}
		}
	}
	for _, u := range phiUsers {
		if u.Op == mir.OpPhi && !u.Dead {
			b.tryRemoveTrivialPhi(u)
		}
	}
	return same
}

func removeFromBlock(in *mir.Instr) {
	blk := in.Block
	for i, x := range blk.Instrs {
		if x == in {
			blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
			return
		}
	}
}

func (b *builder) sealBlock(blk *mir.Block) {
	if b.sealed[blk] {
		return
	}
	b.sealed[blk] = true
	for name, phi := range b.incomplete[blk] {
		b.addPhiOperands(name, phi)
	}
	delete(b.incomplete, blk)
}

func nan() float64 { return math.NaN() }

// ---- control-flow helpers ----

func (b *builder) gotoBlock(to *mir.Block) {
	b.cur.Append(b.g.NewInstr(mir.OpGoto, mir.TypeNone))
	mir.AddEdge(b.cur, to)
}

func (b *builder) branch(cond *mir.Instr, ifTrue, ifFalse *mir.Block) {
	b.cur.Append(b.g.NewInstr(mir.OpTest, mir.TypeNone, cond))
	mir.AddEdge(b.cur, ifTrue)
	mir.AddEdge(b.cur, ifFalse)
}

func (b *builder) startBlock(blk *mir.Block) {
	b.cur = blk
	b.terminated = false
}

// emit appends an instruction to the current block.
func (b *builder) emit(in *mir.Instr) *mir.Instr { return b.cur.Append(in) }

// ---- statements ----

func (b *builder) stmt(s ast.Stmt) error {
	if b.terminated {
		// Unreachable code after return/break/continue: skip, but keep the
		// ordinal counters in lockstep — the bytecode compiler emits (and
		// numbers) unreachable statements.
		b.countOrdinals(s)
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			if err := b.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *ast.VarDecl:
		for i, name := range s.Names {
			if s.Inits[i] == nil {
				continue
			}
			v, err := b.expr(s.Inits[i])
			if err != nil {
				return err
			}
			if err := b.assignName(name, v); err != nil {
				return err
			}
			b.maybeSnapshot(name, s.Inits[i], v)
		}
		return nil
	case *ast.ExprStmt:
		v, err := b.expr(s.X)
		if err != nil {
			return err
		}
		if x, ok := s.X.(*ast.AssignExpr); ok {
			if t, ok := x.Target.(*ast.Ident); ok && x.Op == token.Assign {
				// Statement-level `x = f(...)` only: deoptimization resumes
				// at statement boundaries, so nested assignment expressions
				// are deliberately not speculation sites (same rule as the
				// bytecode compiler).
				b.maybeSnapshot(t.Name, x.Value, v)
			}
		}
		return nil
	case *ast.ReturnStmt:
		if s.Value == nil {
			b.emit(b.g.NewInstr(mir.OpReturnUndef, mir.TypeNone))
		} else {
			v, err := b.expr(s.Value)
			if err != nil {
				return err
			}
			b.emit(b.g.NewInstr(mir.OpReturn, mir.TypeNone, v))
		}
		b.terminated = true
		return nil
	case *ast.IfStmt:
		return b.ifStmt(s)
	case *ast.WhileStmt:
		return b.loop(nil, s.Cond, nil, s.Body, false)
	case *ast.DoWhileStmt:
		return b.loop(nil, s.Cond, nil, s.Body, true)
	case *ast.ForStmt:
		return b.loop(s.Init, s.Cond, s.Post, s.Body, false)
	case *ast.BreakStmt:
		if len(b.loops) == 0 {
			return unsupportedf("break outside loop")
		}
		b.gotoBlock(b.loops[len(b.loops)-1].exit)
		b.terminated = true
		return nil
	case *ast.ContinueStmt:
		if len(b.loops) == 0 {
			return unsupportedf("continue outside loop")
		}
		b.gotoBlock(b.loops[len(b.loops)-1].continueTarget)
		b.terminated = true
		return nil
	default:
		return unsupportedf("statement %T", s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) error {
	cond, err := b.expr(s.Cond)
	if err != nil {
		return err
	}
	thenB := b.g.NewBlock()
	elseB := b.g.NewBlock()
	b.branch(cond, thenB, elseB)
	b.sealed[thenB] = true
	b.sealed[elseB] = true

	join := b.g.NewBlock()
	b.startBlock(thenB)
	if err := b.stmt(s.Then); err != nil {
		return err
	}
	thenReaches := !b.terminated
	if thenReaches {
		b.gotoBlock(join)
	}
	b.startBlock(elseB)
	if s.Else != nil {
		if err := b.stmt(s.Else); err != nil {
			return err
		}
	}
	elseReaches := !b.terminated
	if elseReaches {
		b.gotoBlock(join)
	}
	b.sealBlock(join)
	if !thenReaches && !elseReaches {
		b.terminated = true
		b.cur = join // dead block; will be pruned
		return nil
	}
	b.startBlock(join)
	return nil
}

// loop builds while / do-while / for loops. For do-while, bodyFirst is
// true (the body executes before the first condition check).
func (b *builder) loop(init ast.Stmt, cond ast.Expr, post ast.Expr, body ast.Stmt, bodyFirst bool) error {
	if init != nil {
		if err := b.stmt(init); err != nil {
			return err
		}
	}
	// Consume this loop statement's ordinal (do-while included, matching
	// the compiler's numbering) before descending into nested loops.
	loopOrd := b.loopOrd
	b.loopOrd++

	header := b.g.NewBlock() // loop header: condition re-evaluation point
	exit := b.g.NewBlock()
	bodyB := b.g.NewBlock()

	b.gotoBlock(header)
	// header is unsealed until the back edge is added.
	b.startBlock(header)
	if bodyFirst {
		// do-while: header is the body start itself; we model it as
		// header -> body unconditionally, condition checked at the latch.
		// No OSR entry: the bytecode back edge is a conditional jump the
		// interpreter's OSR hook does not watch.
		b.gotoBlock(bodyB)
	} else {
		if b.opts.OSR {
			// OSR entry point: the frame map reads every local at the top
			// of the header (unsealed, so reads become loop phis merged
			// over the back edge), in bytecode slot order.
			entry := b.g.NewInstr(mir.OpOSREntry, mir.TypeNone)
			entry.Aux = loopOrd
			for _, name := range b.slotNames {
				entry.Operands = append(entry.Operands, b.readVar(name, header))
			}
			b.emit(entry)
		}
		var c *mir.Instr
		var err error
		if cond != nil {
			c, err = b.expr(cond)
			if err != nil {
				return err
			}
		} else {
			c = b.constant(1)
		}
		b.branch(c, bodyB, exit)
	}
	b.sealed[bodyB] = true

	latch := b.g.NewBlock() // continue target: post expression + back edge
	b.loops = append(b.loops, &loopBlocks{continueTarget: latch, exit: exit})
	b.startBlock(bodyB)
	if err := b.stmt(body); err != nil {
		return err
	}
	if !b.terminated {
		b.gotoBlock(latch)
	}
	b.loops = b.loops[:len(b.loops)-1]

	b.sealBlock(latch)
	b.startBlock(latch)
	if post != nil {
		if _, err := b.expr(post); err != nil {
			return err
		}
	}
	if bodyFirst {
		c, err := b.expr(cond)
		if err != nil {
			return err
		}
		b.branch(c, header, exit)
	} else {
		b.gotoBlock(header)
	}
	b.sealBlock(header)
	b.sealBlock(exit)
	b.startBlock(exit)
	return nil
}

// ---- OSR / speculation sites ----

// specEligible mirrors the bytecode compiler's predicate for speculation
// sites: a direct call to a declared nanojs function assigned to a local.
// Keeping the predicates identical keeps the two sides' ordinal numbering in
// lockstep without sharing any state.
func (b *builder) specEligible(name string, v ast.Expr) bool {
	if v == nil || !b.locals[name] {
		return false
	}
	call, ok := v.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee, ok := call.Callee.(*ast.Ident)
	if !ok {
		return false
	}
	_, declared := b.prog.FuncByName[callee.Name]
	return declared
}

// maybeSnapshot records a speculation site after a statement-level
// call-assignment: the ordinal is always consumed (compiler parity); the
// OpSnapshot frame map — [assigned value, locals in slot order] — is only
// emitted when speculation is enabled.
func (b *builder) maybeSnapshot(name string, init ast.Expr, v *mir.Instr) {
	if !b.specEligible(name, init) {
		return
	}
	ord := b.specOrd
	b.specOrd++
	if !b.opts.Speculate {
		return
	}
	snap := b.g.NewInstr(mir.OpSnapshot, mir.TypeNone)
	snap.Num = float64(ord + 1) // +1: zero means "no ordinal"
	snap.Operands = append(snap.Operands, v)
	for _, n := range b.slotNames {
		snap.Operands = append(snap.Operands, b.readVar(n, b.cur))
	}
	b.emit(snap)
}

// countOrdinals walks an unreachable statement, consuming the loop and
// speculation ordinals the bytecode compiler (which emits dead code) would
// consume, so later reachable sites stay aligned.
func (b *builder) countOrdinals(s ast.Stmt) {
	if s == nil {
		return
	}
	ast.Walk(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.WhileStmt, *ast.DoWhileStmt, *ast.ForStmt:
			b.loopOrd++
		case *ast.VarDecl:
			for i, name := range n.Names {
				if b.specEligible(name, n.Inits[i]) {
					b.specOrd++
				}
			}
		case *ast.ExprStmt:
			if x, ok := n.X.(*ast.AssignExpr); ok {
				if t, ok := x.Target.(*ast.Ident); ok && x.Op == token.Assign &&
					b.specEligible(t.Name, x.Value) {
					b.specOrd++
				}
			}
		}
		return true
	})
}

// ---- expressions ----

func (b *builder) constant(v float64) *mir.Instr {
	c := b.g.NewInstr(mir.OpConstant, mir.TypeDouble)
	c.Num = v
	return b.emit(c)
}

func (b *builder) requireDouble(v *mir.Instr, what string) (*mir.Instr, error) {
	switch v.Type {
	case mir.TypeDouble, mir.TypeBoolean:
		return v, nil
	case mir.TypeNone:
		if v.Op == mir.OpPhi {
			// Incomplete loop phi: its type is resolved by finalizeTypes.
			return v, nil
		}
	}
	return nil, unsupportedf("%s has type %s, need number", what, v.Type)
}

func (b *builder) requireObject(v *mir.Instr, what string) (*mir.Instr, error) {
	if v.Type == mir.TypeObject || (v.Type == mir.TypeNone && v.Op == mir.OpPhi) {
		return v, nil
	}
	return nil, unsupportedf("%s has type %s, need array", what, v.Type)
}

func (b *builder) expr(x ast.Expr) (*mir.Instr, error) {
	switch x := x.(type) {
	case *ast.NumberLit:
		return b.constant(x.Value), nil
	case *ast.BoolLit:
		c := b.g.NewInstr(mir.OpConstant, mir.TypeBoolean)
		if x.Value {
			c.Num = 1
		}
		return b.emit(c), nil
	case *ast.Ident:
		return b.readName(x)
	case *ast.NewArray:
		n, err := b.expr(x.Len)
		if err != nil {
			return nil, err
		}
		if n, err = b.requireDouble(n, "array length"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(mir.OpNewArray, mir.TypeObject, n)), nil
	case *ast.IndexExpr:
		return b.indexLoad(x)
	case *ast.MemberExpr:
		return b.member(x)
	case *ast.CallExpr:
		return b.call(x)
	case *ast.UnaryExpr:
		return b.unary(x)
	case *ast.BinaryExpr:
		return b.binary(x)
	case *ast.LogicalExpr:
		return b.logical(x)
	case *ast.CondExpr:
		return b.conditional(x)
	case *ast.AssignExpr:
		return b.assign(x)
	case *ast.UpdateExpr:
		return b.update(x)
	default:
		return nil, unsupportedf("expression %T", x)
	}
}

func (b *builder) readName(x *ast.Ident) (*mir.Instr, error) {
	if b.locals[x.Name] {
		v := b.readVar(x.Name, b.cur)
		if v.Type == mir.TypeValue {
			return nil, unsupportedf("variable %q has mixed types", x.Name)
		}
		return v, nil
	}
	slot, ok := b.globalSlots[x.Name]
	if !ok {
		return nil, unsupportedf("unknown global %q", x.Name)
	}
	load := b.g.NewInstr(mir.OpLoadGlobal, mir.TypeValue)
	load.Aux = slot
	b.emit(load)
	var t mir.Type
	switch b.opts.GlobalType(slot) {
	case value.Number, value.Boolean:
		t = mir.TypeDouble
	case value.Array:
		t = mir.TypeObject
	default:
		return nil, unsupportedf("global %q has type %s", x.Name, b.opts.GlobalType(slot))
	}
	guard := b.g.NewInstr(mir.OpGuardType, t, load)
	guard.Aux = int(t)
	return b.emit(guard), nil
}

func (b *builder) assignName(name string, v *mir.Instr) error {
	if b.locals[name] {
		b.writeVar(name, b.cur, v)
		return nil
	}
	slot, ok := b.globalSlots[name]
	if !ok {
		return unsupportedf("unknown global %q", name)
	}
	st := b.g.NewInstr(mir.OpStoreGlobal, mir.TypeNone, v)
	st.Aux = slot
	b.emit(st)
	return nil
}

// elementsOf emits elements + initializedlength for an array value and
// returns both.
func (b *builder) elementsOf(obj *mir.Instr) (elems, length *mir.Instr) {
	elems = b.emit(b.g.NewInstr(mir.OpElements, mir.TypeElements, obj))
	length = b.emit(b.g.NewInstr(mir.OpInitializedLength, mir.TypeDouble, elems))
	return elems, length
}

func (b *builder) indexLoad(x *ast.IndexExpr) (*mir.Instr, error) {
	obj, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	if obj, err = b.requireObject(obj, "indexed value"); err != nil {
		return nil, err
	}
	idx, err := b.expr(x.Index)
	if err != nil {
		return nil, err
	}
	if idx, err = b.requireDouble(idx, "array index"); err != nil {
		return nil, err
	}
	elems, length := b.elementsOf(obj)
	b.emit(b.g.NewInstr(mir.OpBoundsCheck, mir.TypeNone, idx, length))
	return b.emit(b.g.NewInstr(mir.OpLoadElement, mir.TypeDouble, elems, idx)), nil
}

func (b *builder) indexStore(x *ast.IndexExpr, v *mir.Instr) error {
	obj, err := b.expr(x.X)
	if err != nil {
		return err
	}
	if obj, err = b.requireObject(obj, "indexed value"); err != nil {
		return err
	}
	idx, err := b.expr(x.Index)
	if err != nil {
		return err
	}
	if idx, err = b.requireDouble(idx, "array index"); err != nil {
		return err
	}
	if _, err = b.requireDouble(v, "stored value"); err != nil {
		return err
	}
	elems, length := b.elementsOf(obj)
	b.emit(b.g.NewInstr(mir.OpBoundsCheck, mir.TypeNone, idx, length))
	b.emit(b.g.NewInstr(mir.OpStoreElement, mir.TypeNone, elems, idx, v))
	return nil
}

func (b *builder) member(x *ast.MemberExpr) (*mir.Instr, error) {
	if base, ok := x.X.(*ast.Ident); ok && base.Name == "Math" {
		switch x.Name {
		case "PI":
			return b.constant(3.141592653589793), nil
		case "E":
			return b.constant(2.718281828459045), nil
		}
		return nil, unsupportedf("Math.%s", x.Name)
	}
	if x.Name != "length" {
		return nil, unsupportedf("property %q", x.Name)
	}
	obj, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	if obj, err = b.requireObject(obj, ".length receiver"); err != nil {
		return nil, err
	}
	_, length := b.elementsOf(obj)
	return length, nil
}

func (b *builder) call(x *ast.CallExpr) (*mir.Instr, error) {
	switch callee := x.Callee.(type) {
	case *ast.Ident:
		switch callee.Name {
		case "__addrof":
			if len(x.Args) != 1 {
				return nil, unsupportedf("__addrof arity")
			}
			obj, err := b.expr(x.Args[0])
			if err != nil {
				return nil, err
			}
			if obj, err = b.requireObject(obj, "__addrof argument"); err != nil {
				return nil, err
			}
			return b.emit(b.g.NewInstr(mir.OpAddrOf, mir.TypeDouble, obj)), nil
		case "__codebase":
			return b.emit(b.g.NewInstr(mir.OpCodeBase, mir.TypeDouble)), nil
		case "print":
			return nil, unsupportedf("print")
		}
		fnIdx, ok := b.prog.FuncByName[callee.Name]
		if !ok {
			return nil, unsupportedf("call to %q", callee.Name)
		}
		args := make([]*mir.Instr, 0, len(x.Args))
		for _, a := range x.Args {
			v, err := b.expr(a)
			if err != nil {
				return nil, err
			}
			if v.Type == mir.TypeValue || v.Type == mir.TypeElements {
				return nil, unsupportedf("call argument type %s", v.Type)
			}
			args = append(args, v)
		}
		var t mir.Type
		switch b.opts.ReturnType(fnIdx) {
		case value.Number, value.Boolean, value.Undefined:
			t = mir.TypeDouble // undefined flows as NaN
		case value.Array:
			t = mir.TypeObject
		default:
			return nil, unsupportedf("callee %q returns %s", callee.Name, b.opts.ReturnType(fnIdx))
		}
		callIn := b.g.NewInstr(mir.OpCall, t, args...)
		callIn.Aux = fnIdx
		return b.emit(callIn), nil
	case *ast.MemberExpr:
		return b.methodCall(callee, x.Args)
	default:
		return nil, unsupportedf("call target %T", x.Callee)
	}
}

// pureMathBuiltins are Math functions the JIT compiles to OpMathFunc.
var pureMathBuiltins = map[string]bytecode.Builtin{
	"abs": bytecode.BMathAbs, "floor": bytecode.BMathFloor,
	"ceil": bytecode.BMathCeil, "round": bytecode.BMathRound,
	"sqrt": bytecode.BMathSqrt, "pow": bytecode.BMathPow,
	"sin": bytecode.BMathSin, "cos": bytecode.BMathCos,
	"tan": bytecode.BMathTan, "atan": bytecode.BMathAtan,
	"atan2": bytecode.BMathAtan2, "exp": bytecode.BMathExp,
	"log": bytecode.BMathLog, "min": bytecode.BMathMin,
	"max": bytecode.BMathMax, "random": bytecode.BMathRandom,
}

func (b *builder) methodCall(callee *ast.MemberExpr, argExprs []ast.Expr) (*mir.Instr, error) {
	if base, ok := callee.X.(*ast.Ident); ok && base.Name == "Math" {
		bi, ok := pureMathBuiltins[callee.Name]
		if !ok {
			return nil, unsupportedf("Math.%s", callee.Name)
		}
		want := 1
		switch bi {
		case bytecode.BMathMin, bytecode.BMathMax, bytecode.BMathPow, bytecode.BMathAtan2:
			want = 2
		case bytecode.BMathRandom:
			want = 0
		}
		if len(argExprs) != want {
			return nil, unsupportedf("Math.%s with %d args (JIT supports %d)", callee.Name, len(argExprs), want)
		}
		args := make([]*mir.Instr, 0, len(argExprs))
		for _, a := range argExprs {
			v, err := b.expr(a)
			if err != nil {
				return nil, err
			}
			if v, err = b.requireDouble(v, "Math argument"); err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		in := b.g.NewInstr(mir.OpMathFunc, mir.TypeDouble, args...)
		in.Aux = int(bi)
		return b.emit(in), nil
	}
	switch callee.Name {
	case "push":
		if len(argExprs) != 1 {
			return nil, unsupportedf("push with %d args", len(argExprs))
		}
		obj, err := b.expr(callee.X)
		if err != nil {
			return nil, err
		}
		if obj, err = b.requireObject(obj, "push receiver"); err != nil {
			return nil, err
		}
		v, err := b.expr(argExprs[0])
		if err != nil {
			return nil, err
		}
		if v, err = b.requireDouble(v, "pushed value"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(mir.OpArrayPush, mir.TypeDouble, obj, v)), nil
	case "pop":
		obj, err := b.expr(callee.X)
		if err != nil {
			return nil, err
		}
		if obj, err = b.requireObject(obj, "pop receiver"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(mir.OpArrayPop, mir.TypeDouble, obj)), nil
	default:
		return nil, unsupportedf("method %q", callee.Name)
	}
}

func (b *builder) unary(x *ast.UnaryExpr) (*mir.Instr, error) {
	v, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case token.Minus:
		if v, err = b.requireDouble(v, "negation operand"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(mir.OpNeg, mir.TypeDouble, v)), nil
	case token.Bang:
		if v, err = b.requireDouble(v, "! operand"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(mir.OpNot, mir.TypeBoolean, v)), nil
	case token.Tilde:
		if v, err = b.requireDouble(v, "~ operand"); err != nil {
			return nil, err
		}
		m1 := b.constant(-1)
		return b.emit(b.g.NewInstr(mir.OpBitXor, mir.TypeDouble, v, m1)), nil
	default:
		return nil, unsupportedf("unary %s", x.Op)
	}
}

var binOps = map[token.Kind]mir.Op{
	token.Plus: mir.OpAdd, token.Minus: mir.OpSub, token.Star: mir.OpMul,
	token.Slash: mir.OpDiv, token.Percent: mir.OpMod, token.StarStar: mir.OpPow,
	token.Amp: mir.OpBitAnd, token.Pipe: mir.OpBitOr, token.Caret: mir.OpBitXor,
	token.Shl: mir.OpShl, token.Shr: mir.OpShr, token.Ushr: mir.OpUshr,
}

var cmpOps = map[token.Kind]mir.CompareKind{
	token.Lt: mir.CmpLt, token.Le: mir.CmpLe, token.Gt: mir.CmpGt,
	token.Ge: mir.CmpGe, token.Eq: mir.CmpEq, token.NotEq: mir.CmpNe,
	token.StrictEq: mir.CmpEq, token.StrictNe: mir.CmpNe,
}

func (b *builder) binary(x *ast.BinaryExpr) (*mir.Instr, error) {
	lhs, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	rhs, err := b.expr(x.Y)
	if err != nil {
		return nil, err
	}
	if op, ok := binOps[x.Op]; ok {
		if lhs, err = b.requireDouble(lhs, "left operand"); err != nil {
			return nil, err
		}
		if rhs, err = b.requireDouble(rhs, "right operand"); err != nil {
			return nil, err
		}
		return b.emit(b.g.NewInstr(op, mir.TypeDouble, lhs, rhs)), nil
	}
	if kind, ok := cmpOps[x.Op]; ok {
		if lhs, err = b.requireDouble(lhs, "left operand"); err != nil {
			return nil, err
		}
		if rhs, err = b.requireDouble(rhs, "right operand"); err != nil {
			return nil, err
		}
		cmp := b.g.NewInstr(mir.OpCompare, mir.TypeBoolean, lhs, rhs)
		cmp.Aux = int(kind)
		return b.emit(cmp), nil
	}
	return nil, unsupportedf("binary %s", x.Op)
}

// logical lowers && and || via control flow and a phi, preserving JS
// value semantics (the result is one of the operands).
func (b *builder) logical(x *ast.LogicalExpr) (*mir.Instr, error) {
	lhs, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	if lhs, err = b.requireDouble(lhs, "logical operand"); err != nil {
		return nil, err
	}
	rhsB := b.g.NewBlock()
	join := b.g.NewBlock()
	if x.Op == token.AmpAmp {
		b.branch(lhs, rhsB, join)
	} else {
		b.branch(lhs, join, rhsB)
	}
	b.sealed[rhsB] = true
	lhsPred := b.cur

	b.startBlock(rhsB)
	rhs, err := b.expr(x.Y)
	if err != nil {
		return nil, err
	}
	if rhs, err = b.requireDouble(rhs, "logical operand"); err != nil {
		return nil, err
	}
	b.gotoBlock(join)
	rhsPred := b.cur
	b.sealBlock(join)
	b.startBlock(join)
	phi := b.g.NewInstr(mir.OpPhi, mir.TypeDouble)
	// Order phi inputs to match join.Preds.
	for _, p := range join.Preds {
		if p == lhsPred {
			phi.Operands = append(phi.Operands, lhs)
		} else if p == rhsPred {
			phi.Operands = append(phi.Operands, rhs)
		}
	}
	join.AddPhi(phi)
	return phi, nil
}

func (b *builder) conditional(x *ast.CondExpr) (*mir.Instr, error) {
	cond, err := b.expr(x.Cond)
	if err != nil {
		return nil, err
	}
	if cond, err = b.requireDouble(cond, "?: condition"); err != nil {
		return nil, err
	}
	thenB := b.g.NewBlock()
	elseB := b.g.NewBlock()
	join := b.g.NewBlock()
	b.branch(cond, thenB, elseB)
	b.sealed[thenB] = true
	b.sealed[elseB] = true

	b.startBlock(thenB)
	tv, err := b.expr(x.Then)
	if err != nil {
		return nil, err
	}
	b.gotoBlock(join)
	thenPred := b.cur

	b.startBlock(elseB)
	ev, err := b.expr(x.Else)
	if err != nil {
		return nil, err
	}
	b.gotoBlock(join)
	elsePred := b.cur

	b.sealBlock(join)
	b.startBlock(join)
	if tv.Type != ev.Type &&
		!(isNumeric(tv.Type) && isNumeric(ev.Type)) {
		return nil, unsupportedf("?: branches have types %s and %s", tv.Type, ev.Type)
	}
	t := tv.Type
	if isNumeric(tv.Type) && isNumeric(ev.Type) && tv.Type != ev.Type {
		t = mir.TypeDouble
	}
	phi := b.g.NewInstr(mir.OpPhi, t)
	for _, p := range join.Preds {
		if p == thenPred {
			phi.Operands = append(phi.Operands, tv)
		} else if p == elsePred {
			phi.Operands = append(phi.Operands, ev)
		}
	}
	join.AddPhi(phi)
	return phi, nil
}

func isNumeric(t mir.Type) bool { return t == mir.TypeDouble || t == mir.TypeBoolean }

func (b *builder) assign(x *ast.AssignExpr) (*mir.Instr, error) {
	// Compute the value (for compound ops, read target first).
	var compute func(cur *mir.Instr) (*mir.Instr, error)
	if x.Op == token.Assign {
		compute = func(*mir.Instr) (*mir.Instr, error) { return b.expr(x.Value) }
	} else {
		binOp, ok := binOps[x.Op.CompoundOp()]
		if !ok {
			return nil, unsupportedf("compound assignment %s", x.Op)
		}
		compute = func(cur *mir.Instr) (*mir.Instr, error) {
			rhs, err := b.expr(x.Value)
			if err != nil {
				return nil, err
			}
			if rhs, err = b.requireDouble(rhs, "right operand"); err != nil {
				return nil, err
			}
			if cur, err = b.requireDouble(cur, "assignment target"); err != nil {
				return nil, err
			}
			return b.emit(b.g.NewInstr(binOp, mir.TypeDouble, cur, rhs)), nil
		}
	}

	switch target := x.Target.(type) {
	case *ast.Ident:
		var cur *mir.Instr
		if x.Op != token.Assign {
			var err error
			cur, err = b.readName(target)
			if err != nil {
				return nil, err
			}
		}
		v, err := compute(cur)
		if err != nil {
			return nil, err
		}
		if err := b.assignName(target.Name, v); err != nil {
			return nil, err
		}
		return v, nil
	case *ast.IndexExpr:
		if x.Op == token.Assign {
			v, err := b.expr(x.Value)
			if err != nil {
				return nil, err
			}
			if v, err = b.requireDouble(v, "stored value"); err != nil {
				return nil, err
			}
			if err := b.indexStore(target, v); err != nil {
				return nil, err
			}
			return v, nil
		}
		cur, err := b.indexLoad(target)
		if err != nil {
			return nil, err
		}
		v, err := compute(cur)
		if err != nil {
			return nil, err
		}
		if err := b.indexStore(target, v); err != nil {
			return nil, err
		}
		return v, nil
	case *ast.MemberExpr:
		if target.Name != "length" {
			return nil, unsupportedf("assignment to property %q", target.Name)
		}
		obj, err := b.expr(target.X)
		if err != nil {
			return nil, err
		}
		if obj, err = b.requireObject(obj, ".length receiver"); err != nil {
			return nil, err
		}
		var cur *mir.Instr
		if x.Op != token.Assign {
			_, cur = b.elementsOf(obj)
		}
		v, err := compute(cur)
		if err != nil {
			return nil, err
		}
		if v, err = b.requireDouble(v, "length value"); err != nil {
			return nil, err
		}
		b.emit(b.g.NewInstr(mir.OpSetLength, mir.TypeNone, obj, v))
		return v, nil
	default:
		return nil, unsupportedf("assignment target %T", x.Target)
	}
}

func (b *builder) update(x *ast.UpdateExpr) (*mir.Instr, error) {
	op := mir.OpAdd
	if x.Op == token.MinusMinus {
		op = mir.OpSub
	}
	switch target := x.Target.(type) {
	case *ast.Ident:
		cur, err := b.readName(target)
		if err != nil {
			return nil, err
		}
		if cur, err = b.requireDouble(cur, "update target"); err != nil {
			return nil, err
		}
		one := b.constant(1)
		next := b.emit(b.g.NewInstr(op, mir.TypeDouble, cur, one))
		if err := b.assignName(target.Name, next); err != nil {
			return nil, err
		}
		if x.Prefix {
			return next, nil
		}
		return cur, nil
	case *ast.IndexExpr:
		cur, err := b.indexLoad(target)
		if err != nil {
			return nil, err
		}
		one := b.constant(1)
		next := b.emit(b.g.NewInstr(op, mir.TypeDouble, cur, one))
		if err := b.indexStore(target, next); err != nil {
			return nil, err
		}
		if x.Prefix {
			return next, nil
		}
		return cur, nil
	default:
		return nil, unsupportedf("update target %T", x.Target)
	}
}

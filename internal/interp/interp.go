// Package interp implements the bytecode interpreter tier of the jitbull
// runtime. It executes internal/bytecode programs over the shared heap
// arena. Tier selection (interpreter vs JIT) is the job of internal/engine:
// the VM routes every function call through a Dispatcher so the engine can
// interpose.
package interp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/value"
)

// RuntimeError is a script-level runtime error (type errors, invalid
// lengths, exceeding the step budget, ...).
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// ErrBudget is wrapped by the error returned when execution exceeds the
// configured step budget.
var ErrBudget = errors.New("step budget exhausted")

// Dispatcher routes nanojs function calls; internal/engine implements it to
// interpose tiering, profiling and JITBULL policy.
type Dispatcher interface {
	CallFunction(idx int, args []value.Value) (value.Value, error)
}

// OSRHook is invoked at interpreter loop back edges (backward OpJump with
// an empty operand stack — a statement boundary). The engine implements it
// to perform on-stack replacement: transferring the activation into native
// code mid-loop. The hook returns (result, done, err): done=false means the
// transfer was declined and interpretation continues at the jump target;
// done=true means native code ran the activation to completion (result, or
// err) and the interpreter frame must be abandoned.
type OSRHook func(fn *bytecode.Function, targetPC int, locals []value.Value) (value.Value, bool, error)

// VM executes bytecode functions. It is not safe for concurrent use.
type VM struct {
	Prog     *bytecode.Program
	Arena    *heap.Arena
	Globals  []value.Value
	Out      io.Writer
	Dispatch Dispatcher
	MaxSteps int64
	// OSR, when non-nil, is consulted at loop back edges. Nil (the default)
	// keeps the interpreter's per-op behavior byte-identical to a build
	// without OSR support.
	OSR OSRHook

	steps int64
	rng   uint64

	// framePool recycles locals/stack slices across activations; argStack
	// is a LIFO arena for call arguments (calls nest strictly).
	framePool [][]value.Value
	argStack  []value.Value
}

// New creates a VM for prog over arena, writing print output to out (or
// discarding it when out is nil). The VM dispatches calls to itself until a
// different Dispatcher is installed.
func New(prog *bytecode.Program, arena *heap.Arena, out io.Writer) *VM {
	vm := &VM{
		Prog:     prog,
		Arena:    arena,
		Globals:  make([]value.Value, len(prog.GlobalNames)),
		Out:      out,
		MaxSteps: 2_000_000_000,
		rng:      0x9E3779B97F4A7C15, // fixed seed: runs are deterministic
	}
	vm.Dispatch = vm
	return vm
}

// Steps returns the number of bytecode instructions executed so far.
func (vm *VM) Steps() int64 { return vm.steps }

// ResetSteps clears the step counter (the budget applies per run).
func (vm *VM) ResetSteps() { vm.steps = 0 }

// AddSteps charges externally-executed work (native LIR ops) against the
// shared step budget.
func (vm *VM) AddSteps(n int64) { vm.steps += n }

// Run executes the top-level code of the program.
func (vm *VM) Run() (value.Value, error) {
	return vm.Exec(vm.Prog.Main(), nil)
}

// CallFunction implements Dispatcher by interpreting the function.
func (vm *VM) CallFunction(idx int, args []value.Value) (value.Value, error) {
	if idx < 0 || idx >= len(vm.Prog.Funcs) {
		return value.Undef(), &RuntimeError{Msg: fmt.Sprintf("call to unknown function index %d", idx)}
	}
	return vm.Exec(vm.Prog.Funcs[idx], args)
}

// Random returns the next value of the deterministic script RNG
// (xorshift64*), in [0, 1).
func (vm *VM) Random() float64 {
	x := vm.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vm.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// getFrame returns a zeroed slice of length n from the frame pool.
func (vm *VM) getFrame(n int) []value.Value {
	if len(vm.framePool) > 0 {
		f := vm.framePool[len(vm.framePool)-1]
		vm.framePool = vm.framePool[:len(vm.framePool)-1]
		if cap(f) >= n {
			f = f[:n]
			for i := range f {
				f[i] = value.Value{}
			}
			return f
		}
	}
	if n < 16 {
		return make([]value.Value, n, 16)
	}
	return make([]value.Value, n)
}

func (vm *VM) putFrame(f []value.Value) {
	if cap(f) > 0 && len(vm.framePool) < 64 {
		vm.framePool = append(vm.framePool, f[:0])
	}
}

// Exec interprets one function activation.
func (vm *VM) Exec(fn *bytecode.Function, args []value.Value) (value.Value, error) {
	locals := vm.getFrame(fn.NumLocals)
	defer vm.putFrame(locals)
	n := len(args)
	if n > fn.NumParams {
		n = fn.NumParams
	}
	copy(locals, args[:n])
	return vm.run(fn, locals, 0, true)
}

// ExecFrom resumes interpreting fn at pc0 over caller-owned locals — the
// engine uses it to continue an activation after a deoptimization rebuilt
// the frame. The locals slice is not pooled (the caller owns it) and must
// be at least fn.NumLocals long. allowOSR=false prevents a deopted loop
// from immediately OSR-ing back into the code it just deopted from.
func (vm *VM) ExecFrom(fn *bytecode.Function, locals []value.Value, pc0 int, allowOSR bool) (value.Value, error) {
	return vm.run(fn, locals, pc0, allowOSR)
}

// run is the interpreter loop over an established frame.
func (vm *VM) run(fn *bytecode.Function, locals []value.Value, pc0 int, allowOSR bool) (value.Value, error) {
	stack := vm.getFrame(0)
	defer func() { vm.putFrame(stack) }()

	push := func(v value.Value) { stack = append(stack, v) }
	pop := func() value.Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	code := fn.Code
	for pc := pc0; pc < len(code); pc++ {
		vm.steps++
		if vm.steps > vm.MaxSteps {
			return value.Undef(), fmt.Errorf("%w after %d steps in %s", ErrBudget, vm.steps, fn.Name)
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			push(fn.Consts[in.A])
		case bytecode.OpUndef:
			push(value.Undef())
		case bytecode.OpNull:
			push(value.NullV())
		case bytecode.OpTrue:
			push(value.Bool(true))
		case bytecode.OpFalse:
			push(value.Bool(false))
		case bytecode.OpPop:
			pop()
		case bytecode.OpDup:
			push(stack[len(stack)-1])
		case bytecode.OpDup2:
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			push(a)
			push(b)
		case bytecode.OpLoadLocal:
			push(locals[in.A])
		case bytecode.OpStoreLocal:
			locals[in.A] = pop()
		case bytecode.OpLoadGlobal:
			push(vm.Globals[in.A])
		case bytecode.OpStoreGlobal:
			vm.Globals[in.A] = pop()

		case bytecode.OpAdd:
			y, x := pop(), pop()
			if x.IsString() || y.IsString() {
				push(value.Str(x.ToString() + y.ToString()))
			} else {
				push(value.Num(x.ToNumber() + y.ToNumber()))
			}
		case bytecode.OpSub:
			y, x := pop(), pop()
			push(value.Num(x.ToNumber() - y.ToNumber()))
		case bytecode.OpMul:
			y, x := pop(), pop()
			push(value.Num(x.ToNumber() * y.ToNumber()))
		case bytecode.OpDiv:
			y, x := pop(), pop()
			push(value.Num(x.ToNumber() / y.ToNumber()))
		case bytecode.OpMod:
			y, x := pop(), pop()
			push(value.Num(value.Mod(x.ToNumber(), y.ToNumber())))
		case bytecode.OpPow:
			y, x := pop(), pop()
			push(value.Num(math.Pow(x.ToNumber(), y.ToNumber())))
		case bytecode.OpBitAnd:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToInt32(x.ToNumber()) & value.ToInt32(y.ToNumber()))))
		case bytecode.OpBitOr:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToInt32(x.ToNumber()) | value.ToInt32(y.ToNumber()))))
		case bytecode.OpBitXor:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToInt32(x.ToNumber()) ^ value.ToInt32(y.ToNumber()))))
		case bytecode.OpShl:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToInt32(x.ToNumber()) << (value.ToUint32(y.ToNumber()) & 31))))
		case bytecode.OpShr:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToInt32(x.ToNumber()) >> (value.ToUint32(y.ToNumber()) & 31))))
		case bytecode.OpUshr:
			y, x := pop(), pop()
			push(value.Num(float64(value.ToUint32(x.ToNumber()) >> (value.ToUint32(y.ToNumber()) & 31))))

		case bytecode.OpNeg:
			push(value.Num(-pop().ToNumber()))
		case bytecode.OpNot:
			push(value.Bool(!pop().ToBool()))
		case bytecode.OpBitNot:
			push(value.Num(float64(^value.ToInt32(pop().ToNumber()))))
		case bytecode.OpTypeof:
			v := pop()
			if v.Type() == value.Null {
				push(value.Str("object")) // JS quirk preserved
			} else {
				push(value.Str(v.Type().String()))
			}

		case bytecode.OpEq:
			y, x := pop(), pop()
			push(value.Bool(value.LooseEquals(x, y)))
		case bytecode.OpNe:
			y, x := pop(), pop()
			push(value.Bool(!value.LooseEquals(x, y)))
		case bytecode.OpStrictEq:
			y, x := pop(), pop()
			push(value.Bool(value.StrictEquals(x, y)))
		case bytecode.OpStrictNe:
			y, x := pop(), pop()
			push(value.Bool(!value.StrictEquals(x, y)))
		case bytecode.OpLt:
			y, x := pop(), pop()
			push(compare(x, y, func(a, b float64) bool { return a < b }, func(a, b string) bool { return a < b }))
		case bytecode.OpLe:
			y, x := pop(), pop()
			push(compare(x, y, func(a, b float64) bool { return a <= b }, func(a, b string) bool { return a <= b }))
		case bytecode.OpGt:
			y, x := pop(), pop()
			push(compare(x, y, func(a, b float64) bool { return a > b }, func(a, b string) bool { return a > b }))
		case bytecode.OpGe:
			y, x := pop(), pop()
			push(compare(x, y, func(a, b float64) bool { return a >= b }, func(a, b string) bool { return a >= b }))

		case bytecode.OpJump:
			target := int(in.A)
			if target <= pc && allowOSR && vm.OSR != nil && len(stack) == 0 {
				// Loop back edge at a statement boundary: offer the engine an
				// on-stack replacement into native code.
				res, done, err := vm.OSR(fn, target, locals)
				if err != nil {
					return value.Undef(), err
				}
				if done {
					return res, nil
				}
			}
			pc = target - 1
		case bytecode.OpJumpIfFalse:
			if !pop().ToBool() {
				pc = int(in.A) - 1
			}
		case bytecode.OpJumpIfTrue:
			if pop().ToBool() {
				pc = int(in.A) - 1
			}

		case bytecode.OpCall:
			argc := int(in.B)
			base := len(vm.argStack)
			vm.argStack = append(vm.argStack, stack[len(stack)-argc:]...)
			stack = stack[:len(stack)-argc]
			res, err := vm.Dispatch.CallFunction(int(in.A), vm.argStack[base:base+argc])
			vm.argStack = vm.argStack[:base]
			if err != nil {
				return value.Undef(), err
			}
			push(res)
		case bytecode.OpCallBuiltin:
			argc := int(in.B)
			base := len(vm.argStack)
			vm.argStack = append(vm.argStack, stack[len(stack)-argc:]...)
			stack = stack[:len(stack)-argc]
			res, err := vm.CallBuiltin(bytecode.Builtin(in.A), vm.argStack[base:base+argc])
			vm.argStack = vm.argStack[:base]
			if err != nil {
				return value.Undef(), err
			}
			push(res)

		case bytecode.OpReturn:
			return pop(), nil
		case bytecode.OpReturnUndef:
			return value.Undef(), nil

		case bytecode.OpNewArray:
			n := pop().ToNumber()
			idx, ok := value.ToArrayIndex(n)
			if !ok {
				return value.Undef(), &RuntimeError{Msg: fmt.Sprintf("invalid array length %v", n)}
			}
			h, err := vm.Arena.Alloc(idx)
			if err != nil {
				return value.Undef(), &RuntimeError{Msg: err.Error()}
			}
			push(value.ArrayRef(h))
		case bytecode.OpArrayLit:
			n := int(in.A)
			h, err := vm.Arena.Alloc(n)
			if err != nil {
				return value.Undef(), &RuntimeError{Msg: err.Error()}
			}
			for i := n - 1; i >= 0; i-- {
				if crash := vm.Arena.Set(h, i, pop().ToNumber()); crash != nil {
					return value.Undef(), crash
				}
			}
			push(value.ArrayRef(h))
		case bytecode.OpGetElem:
			idxV, arr := pop(), pop()
			v, err := vm.getElem(arr, idxV)
			if err != nil {
				return value.Undef(), err
			}
			push(v)
		case bytecode.OpSetElem:
			v, idxV, arr := pop(), pop(), pop()
			if !arr.IsArray() {
				return value.Undef(), &RuntimeError{Msg: "cannot index non-array value " + arr.ToString()}
			}
			if idx, ok := value.ToArrayIndex(idxV.ToNumber()); ok {
				if crash := vm.Arena.Set(arr.Handle(), idx, v.ToNumber()); crash != nil {
					return value.Undef(), crash
				}
			}
			push(v)
		case bytecode.OpGetLength:
			arr := pop()
			switch {
			case arr.IsArray():
				n, _ := vm.Arena.Length(arr.Handle())
				push(value.Num(float64(n)))
			case arr.IsString():
				push(value.Num(float64(len(arr.AsString()))))
			default:
				return value.Undef(), &RuntimeError{Msg: "cannot read length of " + arr.ToString()}
			}
		case bytecode.OpSetLength:
			v, arr := pop(), pop()
			if !arr.IsArray() {
				return value.Undef(), &RuntimeError{Msg: "cannot set length of " + arr.ToString()}
			}
			n, ok := value.ToArrayIndex(v.ToNumber())
			if !ok {
				return value.Undef(), &RuntimeError{Msg: fmt.Sprintf("invalid array length %v", v)}
			}
			if err := vm.Arena.SetLength(arr.Handle(), n); err != nil {
				return value.Undef(), &RuntimeError{Msg: err.Error()}
			}
			push(v)

		default:
			return value.Undef(), &RuntimeError{Msg: fmt.Sprintf("unknown opcode %s", in.Op)}
		}
	}
	return value.Undef(), nil
}

func (vm *VM) getElem(arr, idxV value.Value) (value.Value, error) {
	switch {
	case arr.IsArray():
		idx, ok := value.ToArrayIndex(idxV.ToNumber())
		if !ok {
			return value.Undef(), nil
		}
		v, present, crash := vm.Arena.Get(arr.Handle(), idx)
		if crash != nil {
			return value.Undef(), crash
		}
		if !present {
			return value.Undef(), nil
		}
		return value.Num(v), nil
	case arr.IsString():
		idx, ok := value.ToArrayIndex(idxV.ToNumber())
		s := arr.AsString()
		if !ok || idx >= len(s) {
			return value.Undef(), nil
		}
		return value.Str(s[idx : idx+1]), nil
	default:
		return value.Undef(), &RuntimeError{Msg: "cannot index non-array value " + arr.ToString()}
	}
}

func compare(x, y value.Value, numCmp func(a, b float64) bool, strCmp func(a, b string) bool) value.Value {
	if x.IsString() && y.IsString() {
		return value.Bool(strCmp(x.AsString(), y.AsString()))
	}
	a, b := x.ToNumber(), y.ToNumber()
	if math.IsNaN(a) || math.IsNaN(b) {
		return value.Bool(false)
	}
	return value.Bool(numCmp(a, b))
}

// CallBuiltin executes a builtin. It is exported so the native tier can
// reuse the same implementations.
func (vm *VM) CallBuiltin(b bytecode.Builtin, args []value.Value) (value.Value, error) {
	arg := func(i int) value.Value {
		if i < len(args) {
			return args[i]
		}
		return value.Undef()
	}
	num := func(i int) float64 { return arg(i).ToNumber() }
	switch b {
	case bytecode.BPrint:
		if vm.Out != nil {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.ToString()
			}
			fmt.Fprintln(vm.Out, strings.Join(parts, " "))
		}
		return value.Undef(), nil
	case bytecode.BMathAbs:
		return value.Num(math.Abs(num(0))), nil
	case bytecode.BMathFloor:
		return value.Num(math.Floor(num(0))), nil
	case bytecode.BMathCeil:
		return value.Num(math.Ceil(num(0))), nil
	case bytecode.BMathRound:
		return value.Num(math.Floor(num(0) + 0.5)), nil
	case bytecode.BMathSqrt:
		return value.Num(math.Sqrt(num(0))), nil
	case bytecode.BMathMin:
		res := math.Inf(1)
		for i := range args {
			res = math.Min(res, num(i))
		}
		return value.Num(res), nil
	case bytecode.BMathMax:
		res := math.Inf(-1)
		for i := range args {
			res = math.Max(res, num(i))
		}
		return value.Num(res), nil
	case bytecode.BMathPow:
		return value.Num(math.Pow(num(0), num(1))), nil
	case bytecode.BMathSin:
		return value.Num(math.Sin(num(0))), nil
	case bytecode.BMathCos:
		return value.Num(math.Cos(num(0))), nil
	case bytecode.BMathTan:
		return value.Num(math.Tan(num(0))), nil
	case bytecode.BMathAtan:
		return value.Num(math.Atan(num(0))), nil
	case bytecode.BMathAtan2:
		return value.Num(math.Atan2(num(0), num(1))), nil
	case bytecode.BMathExp:
		return value.Num(math.Exp(num(0))), nil
	case bytecode.BMathLog:
		return value.Num(math.Log(num(0))), nil
	case bytecode.BMathRandom:
		return value.Num(vm.Random()), nil
	case bytecode.BArrayPush:
		recv := arg(0)
		if !recv.IsArray() {
			return value.Undef(), &RuntimeError{Msg: "push on non-array"}
		}
		var n int
		for i := 1; i < len(args); i++ {
			var err error
			n, err = vm.Arena.Push(recv.Handle(), num(i))
			if err != nil {
				return value.Undef(), &RuntimeError{Msg: err.Error()}
			}
		}
		return value.Num(float64(n)), nil
	case bytecode.BArrayPop:
		recv := arg(0)
		if !recv.IsArray() {
			return value.Undef(), &RuntimeError{Msg: "pop on non-array"}
		}
		v, ok := vm.Arena.Pop(recv.Handle())
		if !ok {
			return value.Undef(), nil
		}
		return value.Num(v), nil
	case bytecode.BCharCodeAt:
		recv := arg(0)
		if !recv.IsString() {
			return value.Undef(), &RuntimeError{Msg: "charCodeAt on non-string"}
		}
		idx, ok := value.ToArrayIndex(num(1))
		s := recv.AsString()
		if !ok || idx >= len(s) {
			return value.Num(math.NaN()), nil
		}
		return value.Num(float64(s[idx])), nil
	case bytecode.BFromCharCode:
		bs := make([]byte, len(args))
		for i := range args {
			bs[i] = byte(value.ToUint32(num(i)))
		}
		return value.Str(string(bs)), nil
	case bytecode.BAddrOf:
		recv := arg(0)
		if !recv.IsArray() {
			return value.Num(math.NaN()), nil
		}
		elems, ok := vm.Arena.Elems(recv.Handle())
		if !ok {
			return value.Num(math.NaN()), nil
		}
		return value.Num(float64(elems)), nil
	case bytecode.BCodeBase:
		return value.Num(float64(vm.Arena.CodeBase())), nil
	default:
		return value.Undef(), &RuntimeError{Msg: fmt.Sprintf("unknown builtin %d", b)}
	}
}

package interp

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/value"
)

// run compiles and interprets src, returning the value of the global
// variable `result` plus anything printed.
func run(t *testing.T, src string) (value.Value, string) {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	vm := New(prog, heap.New(0), &out)
	if _, err := vm.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, name := range prog.GlobalNames {
		if name == "result" {
			return vm.Globals[i], out.String()
		}
	}
	return value.Undef(), out.String()
}

func runNum(t *testing.T, src string) float64 {
	t.Helper()
	v, _ := run(t, src)
	if !v.IsNumber() {
		t.Fatalf("result is %v (%v), want number", v, v.Type())
	}
	return v.AsNumber()
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := New(prog, heap.New(0), nil)
	_, err = vm.Run()
	if err == nil {
		t.Fatalf("expected runtime error for %q", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	tests := map[string]float64{
		"var result = 1 + 2 * 3;":   7,
		"var result = (1 + 2) * 3;": 9,
		"var result = 10 / 4;":      2.5,
		"var result = 10 % 3;":      1,
		"var result = 2 ** 10;":     1024,
		"var result = 2 ** 3 ** 2;": 512,
		"var result = -5 + 3;":      -2,
		"var result = 7 & 3;":       3,
		"var result = 5 | 2;":       7,
		"var result = 5 ^ 1;":       4,
		"var result = 1 << 10;":     1024,
		"var result = -8 >> 1;":     -4,
		"var result = -1 >>> 28;":   15,
		"var result = ~0;":          -1,
		"var result = 0.1 + 0.2;":   0.30000000000000004,
		"var result = 1 / 0;":       math.Inf(1),
	}
	for src, want := range tests {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	tests := map[string]float64{
		"var result = (3 < 4) ? 1 : 0;":             1,
		"var result = (3 >= 4) ? 1 : 0;":            0,
		"var result = (3 == '3') ? 1 : 0;":          1,
		"var result = (3 === 3) ? 1 : 0;":           1,
		"var result = (0 && 2) + 10;":               10,
		"var result = (0 || 2) + 10;":               12,
		"var result = (!0) ? 5 : 6;":                5,
		"var result = ('abc' < 'abd') ? 1 : 0;":     1,
		"var result = (undefined == null) ? 1 : 0;": 1,
	}
	for src, want := range tests {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestNaNComparisons(t *testing.T) {
	if got := runNum(t, "var nan = 0/0; var result = (nan < 1) || (nan >= 1) || (nan == nan) ? 1 : 0;"); got != 0 {
		t.Errorf("NaN comparisons must all be false, got %v", got)
	}
}

func TestStrings(t *testing.T) {
	v, _ := run(t, `var result = "foo" + "bar" + 3;`)
	if v.AsString() != "foobar3" {
		t.Errorf("concat = %q", v.AsString())
	}
	if got := runNum(t, `var result = "hello".length;`); got != 5 {
		t.Errorf("string length = %v", got)
	}
	if got := runNum(t, `var result = "A".charCodeAt(0);`); got != 65 {
		t.Errorf("charCodeAt = %v", got)
	}
	v, _ = run(t, `var result = String.fromCharCode(72, 105);`)
	if v.AsString() != "Hi" {
		t.Errorf("fromCharCode = %q", v.AsString())
	}
}

func TestControlFlow(t *testing.T) {
	src := `
var result = 0;
for (var i = 0; i < 10; i++) {
  if (i % 2 == 0) { continue; }
  if (i == 9) { break; }
  result += i;
}`
	if got := runNum(t, src); got != 1+3+5+7 {
		t.Errorf("loop sum = %v", got)
	}
}

func TestWhileAndDoWhile(t *testing.T) {
	if got := runNum(t, "var result = 0; var i = 0; while (i < 5) { result += i; i++; }"); got != 10 {
		t.Errorf("while = %v", got)
	}
	if got := runNum(t, "var result = 0; do { result++; } while (false);"); got != 1 {
		t.Errorf("do-while must run once, got %v", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
var result = 0;
for (var i = 0; i < 4; i++) {
  for (var j = 0; j < 4; j++) {
    if (j == 2) { break; }
    result++;
  }
}`
	if got := runNum(t, src); got != 8 {
		t.Errorf("nested break = %v", got)
	}
}

func TestFunctions(t *testing.T) {
	src := `
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
var result = fib(15);`
	if got := runNum(t, src); got != 610 {
		t.Errorf("fib(15) = %v", got)
	}
}

func TestFunctionDefaultsAndVoid(t *testing.T) {
	src := `
function f(a, b) { return b; }
function g() { }
var r1 = f(1);
var r2 = g();
var result = ((r1 === undefined) && (r2 === undefined)) ? 1 : 0;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("missing args / void return = %v", got)
	}
}

func TestForwardFunctionReference(t *testing.T) {
	src := `
var result = later(4);
function later(x) { return x * x; }`
	if got := runNum(t, src); got != 16 {
		t.Errorf("forward ref = %v", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
var a = new Array(4);
a[0] = 10; a[1] = 20; a[3] = 40;
var result = a[0] + a[1] + a[3] + a.length;`
	if got := runNum(t, src); got != 74 {
		t.Errorf("array ops = %v", got)
	}
}

func TestArrayLiteral(t *testing.T) {
	if got := runNum(t, "var a = [1, 2, 3]; var result = a[0] + a[1] * a[2] + a.length;"); got != 10 {
		t.Errorf("array literal = %v", got)
	}
}

func TestArrayHoleReadsUndefined(t *testing.T) {
	// nanojs arrays are dense float64 arrays: growing .length zero-fills
	// new slots instead of leaving holes.
	if got := runNum(t, "var a = new Array(2); a.length = 5; var result = (a[4] === 0) ? 1 : 0;"); got != 1 {
		t.Errorf("grown slot read = %v", got)
	}
	if got := runNum(t, "var a = [1]; var result = (a[99] === undefined) ? 1 : 0;"); got != 1 {
		t.Errorf("OOB read = %v", got)
	}
}

func TestArrayGrowthOnWrite(t *testing.T) {
	src := `
var a = new Array(2);
a[10] = 7;
var result = a.length * 100 + a[10];`
	if got := runNum(t, src); got != 1107 {
		t.Errorf("growth = %v", got)
	}
}

func TestArrayShrinkAndRegrow(t *testing.T) {
	src := `
var a = new Array(10);
a[9] = 99;
a.length = 3;
var gone = a[9];
a.length = 12;
var result = ((gone === undefined) && (a[9] === 0) && a.length == 12) ? 1 : 0;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("shrink/regrow = %v", got)
	}
}

func TestPushPopBuiltins(t *testing.T) {
	src := `
var a = new Array(0);
a.push(1); a.push(2); a.push(3);
var x = a.pop();
var result = a.length * 10 + x;`
	if got := runNum(t, src); got != 23 {
		t.Errorf("push/pop = %v", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	tests := map[string]float64{
		"var result = Math.floor(3.7);":     3,
		"var result = Math.ceil(3.2);":      4,
		"var result = Math.abs(-5);":        5,
		"var result = Math.sqrt(144);":      12,
		"var result = Math.min(3, 1, 2);":   1,
		"var result = Math.max(3, 1, 2);":   3,
		"var result = Math.pow(2, 8);":      256,
		"var result = Math.round(2.5);":     3,
		"var result = Math.floor(Math.PI);": 3,
	}
	for src, want := range tests {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestMathRandomDeterministic(t *testing.T) {
	src := "var result = Math.random();"
	a := runNum(t, src)
	b := runNum(t, src)
	if a != b {
		t.Errorf("Math.random must be deterministic across runs: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Errorf("Math.random out of range: %v", a)
	}
}

func TestPrint(t *testing.T) {
	_, out := run(t, `print("x =", 42); print(1 < 2);`)
	if out != "x = 42\ntrue\n" {
		t.Errorf("print output = %q", out)
	}
}

func TestTypeof(t *testing.T) {
	src := `
var parts = typeof 1 + "," + typeof "s" + "," + typeof true + "," + typeof undefined + "," + typeof [1] + "," + typeof null;
var result = (parts == "number,string,boolean,undefined,object,object") ? 1 : 0;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("typeof = %v", got)
	}
}

func TestUpdateExpressions(t *testing.T) {
	tests := map[string]float64{
		"var i = 5; var result = i++ * 10 + i;":         56,
		"var i = 5; var result = ++i * 10 + i;":         66,
		"var i = 5; var result = i-- * 10 + i;":         54,
		"var a = [7]; var result = a[0]++ * 10 + a[0];": 78,
		"var a = [7]; var result = ++a[0] * 10 + a[0];": 88,
	}
	for src, want := range tests {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestCompoundAssignOnElements(t *testing.T) {
	src := "var a = [10]; a[0] += 5; a[0] *= 2; var result = a[0];"
	if got := runNum(t, src); got != 30 {
		t.Errorf("compound = %v", got)
	}
}

func TestCompoundAssignOnLength(t *testing.T) {
	src := "var a = new Array(10); a.length -= 6; var result = a.length;"
	if got := runNum(t, src); got != 4 {
		t.Errorf("length -= : %v", got)
	}
}

func TestGlobalsAcrossFunctions(t *testing.T) {
	src := `
var counter = 0;
function bump() { counter += 1; }
bump(); bump(); bump();
var result = counter;`
	if got := runNum(t, src); got != 3 {
		t.Errorf("globals = %v", got)
	}
}

func TestAddrOfAndCodeBase(t *testing.T) {
	src := `
var a = new Array(4);
var b = new Array(4);
var result = __addrof(b) - __addrof(a);`
	if got := runNum(t, src); got != 6 {
		t.Errorf("addrof delta = %v, want 6 (header + 4 payload cells)", got)
	}
	if got := runNum(t, "var result = __codebase();"); got <= 0 {
		t.Errorf("codebase = %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	tests := []string{
		"var x = 1; x[0] = 2;",
		"var x = 3; var y = x.length;",
		"var a = [1]; a.length = -1;",
		"var a = new Array(-3);",
		`var s = "abc"; s.push(1);`,
	}
	for _, src := range tests {
		err := runErr(t, src)
		var re *RuntimeError
		if !errors.As(err, &re) {
			t.Errorf("%q: got %v, want RuntimeError", src, err)
		}
	}
}

func TestStepBudget(t *testing.T) {
	prog, err := compiler.Compile("while (true) { }")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog, heap.New(0), nil)
	vm.MaxSteps = 1000
	_, err = vm.Run()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestIndexingWithFloatsAndNegatives(t *testing.T) {
	src := `
var a = [1, 2, 3];
a[-1] = 99;       // ignored (property store in real JS)
var u = a[0.5];   // hole
var result = ((u === undefined) && a.length == 3) ? 1 : 0;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("odd indices = %v", got)
	}
}

func TestDeepRecursionWorks(t *testing.T) {
	src := `
function down(n) { if (n == 0) { return 0; } return down(n - 1); }
var result = down(5000);`
	if got := runNum(t, src); got != 0 {
		t.Errorf("recursion = %v", got)
	}
}

func TestTernaryAndNestedCalls(t *testing.T) {
	src := `
function clamp(x, lo, hi) { return x < lo ? lo : (x > hi ? hi : x); }
var result = clamp(15, 0, 10) + clamp(-5, 0, 10) + clamp(5, 0, 10);`
	if got := runNum(t, src); got != 15 {
		t.Errorf("clamp = %v", got)
	}
}

func TestStringIndexing(t *testing.T) {
	src := `var s = "abc"; var result = (s[1] == "b" && s[9] === undefined) ? 1 : 0;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("string indexing = %v", got)
	}
}

func TestDup2ViaIndexCompound(t *testing.T) {
	src := "var a = [2, 3]; a[0] **= 3; var result = a[0];"
	if got := runNum(t, src); got != 8 {
		t.Errorf("**= on element = %v", got)
	}
}

func TestBitNotAndUnaryChains(t *testing.T) {
	tests := map[string]float64{
		"var result = ~~3.7;":         3,
		"var result = -(-5);":         5,
		"var result = (!!3) ? 1 : 0;": 1,
	}
	for src, want := range tests {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestShiftBeyond31Masks(t *testing.T) {
	if got := runNum(t, "var result = 1 << 33;"); got != 2 {
		t.Errorf("1 << 33 = %v, want 2 (shift count masked mod 32)", got)
	}
}

func TestCallBuiltinDirectly(t *testing.T) {
	vm := New(&bytecode.Program{Funcs: []*bytecode.Function{{Name: "(main)"}}}, heap.New(0), nil)
	v, err := vm.CallBuiltin(bytecode.BMathAtan2, []value.Value{value.Num(1), value.Num(1)})
	if err != nil || math.Abs(v.AsNumber()-math.Pi/4) > 1e-12 {
		t.Fatalf("atan2 = %v, %v", v, err)
	}
	if _, err := vm.CallBuiltin(bytecode.Builtin(999), nil); err == nil {
		t.Fatal("unknown builtin must error")
	}
	// Missing args coerce to undefined -> NaN.
	v, _ = vm.CallBuiltin(bytecode.BMathAbs, nil)
	if !math.IsNaN(v.AsNumber()) {
		t.Fatalf("abs() = %v, want NaN", v)
	}
}

func TestCallFunctionUnknownIndex(t *testing.T) {
	vm := New(&bytecode.Program{Funcs: []*bytecode.Function{{Name: "(main)"}}}, heap.New(0), nil)
	if _, err := vm.CallFunction(42, nil); err == nil {
		t.Fatal("unknown function index must error")
	}
}

func TestNegativeZeroSemantics(t *testing.T) {
	// -0 and +0 compare equal but divide differently — both tiers share
	// IEEE-754 semantics through the same Value representation.
	src := "var nz = -0; var result = (1 / nz == -1 / 0) ? 1 : 0;"
	if got := runNum(t, src); got != 1 {
		t.Errorf("negative zero = %v", got)
	}
}

module github.com/jitbull/jitbull

go 1.22
